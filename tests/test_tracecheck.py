"""Tests for TraceCheck trace export/import."""

import io

import pytest

from repro.proof import (
    ProofError,
    ProofStore,
    check_proof,
    parse_tracecheck,
    read_tracecheck,
    write_tracecheck,
)
from repro.sat import UNSAT, Solver


def refutation_store():
    store = ProofStore()
    c1 = store.add_axiom([1, 2])
    c2 = store.add_axiom([1, -2])
    c3 = store.add_axiom([-1, 2])
    c4 = store.add_axiom([-1, -2])
    u1 = store.add_derived([1], [c1, (2, c2)])
    u2 = store.add_derived([-1], [c3, (2, c4)])
    store.add_derived([], [u1, (1, u2)])
    return store


def solver_refutation(clauses):
    store = ProofStore()
    solver = Solver(proof=store)
    alive = all(solver.add_clause(c) for c in clauses)
    if alive:
        assert solver.solve().status is UNSAT
    return store


class TestWriter:
    def test_format_shape(self):
        buffer = io.StringIO()
        write_tracecheck(refutation_store(), buffer)
        lines = buffer.getvalue().splitlines()
        assert len(lines) == 7
        # Axioms end with a lone terminating zero pair.
        assert lines[0].split() == ["1", "1", "2", "0", "0"]
        # Derived clauses carry antecedents.
        assert lines[4].split() == ["5", "1", "0", "1", "2", "0"]
        assert lines[6].split() == ["7", "0", "5", "6", "0"]

    def test_path_output(self, tmp_path):
        path = tmp_path / "trace.tc"
        write_tracecheck(refutation_store(), str(path))
        assert path.read_text().count("\n") == 7


class TestRoundtrip:
    def test_small(self):
        buffer = io.StringIO()
        write_tracecheck(refutation_store(), buffer)
        buffer.seek(0)
        store, id_map = read_tracecheck(buffer)
        result = check_proof(store)
        assert result.empty_clause_id is not None
        assert len(store) == 7

    def test_solver_proof_roundtrip(self):
        var = lambda p, h: p * 4 + h + 1
        clauses = [[var(p, h) for h in range(4)] for p in range(5)]
        for h in range(4):
            for p1 in range(5):
                for p2 in range(p1 + 1, 5):
                    clauses.append([-var(p1, h), -var(p2, h)])
        original = solver_refutation(clauses)
        buffer = io.StringIO()
        write_tracecheck(original, buffer)
        buffer.seek(0)
        back, _ = read_tracecheck(buffer)
        result = check_proof(back, axioms=clauses)
        assert result.num_derived == sum(
            1 for cid in original.ids() if original.kind(cid) == "derived"
        )

    def test_ids_preserved_through_map(self):
        buffer = io.StringIO()
        store = refutation_store()
        write_tracecheck(store, buffer)
        buffer.seek(0)
        back, id_map = read_tracecheck(buffer)
        for file_id, new_id in id_map.items():
            assert back.clause(new_id) == store.clause(file_id - 1)


class TestParserErrors:
    def test_non_numeric(self):
        with pytest.raises(ProofError, match="not numeric"):
            parse_tracecheck("1 x 0 0\n")

    def test_missing_literal_terminator(self):
        with pytest.raises(ProofError):
            parse_tracecheck("1 5 7\n")

    def test_missing_antecedent_terminator(self):
        with pytest.raises(ProofError, match="antecedent terminator"):
            parse_tracecheck("1 5 0 3\n")

    def test_duplicate_id(self):
        with pytest.raises(ProofError, match="duplicate"):
            parse_tracecheck("1 5 0 0\n1 6 0 0\n")

    def test_forward_antecedent(self):
        with pytest.raises(ProofError, match="not yet defined"):
            parse_tracecheck("1 5 0 2 3 0\n")

    def test_single_antecedent(self):
        with pytest.raises(ProofError, match=">= 2"):
            parse_tracecheck("1 5 0 0\n2 5 0 1 0\n")

    def test_wrong_claimed_clause(self):
        text = "1 1 2 0 0\n2 -1 2 0 0\n3 1 0 1 2 0\n"
        with pytest.raises(ProofError, match="claimed"):
            parse_tracecheck(text)

    def test_comments_and_blanks_skipped(self):
        text = "c a comment\n\n1 1 0 0\n"
        store, _ = parse_tracecheck(text)
        assert len(store) == 1

    def test_nonpositive_id(self):
        with pytest.raises(ProofError, match="non-positive"):
            parse_tracecheck("0 1 0 0\n")


class TestCecTraces:
    def test_engine_proof_exports_and_reimports(self):
        from repro import check_equivalence
        from repro.circuits import comparator, comparator_subtract

        result = check_equivalence(comparator(4), comparator_subtract(4))
        buffer = io.StringIO()
        write_tracecheck(result.proof, buffer)
        buffer.seek(0)
        back, _ = read_tracecheck(buffer)
        check = check_proof(back, axioms=result.cnf.clauses)
        assert check.empty_clause_id is not None
