"""White-box tests of CDCL solver internals."""

import random

from repro.proof import ProofStore, check_proof
from repro.sat import SAT, UNSAT, Solver


class TestVariableManagement:
    def test_new_var_sequential(self):
        solver = Solver()
        assert solver.new_var() == 1
        assert solver.new_var() == 2
        assert solver.num_vars == 2

    def test_ensure_vars_idempotent(self):
        solver = Solver()
        solver.ensure_vars(5)
        solver.ensure_vars(3)
        assert solver.num_vars == 5

    def test_watch_index_distinct(self):
        indices = {Solver._widx(lit) for lit in
                   [1, -1, 2, -2, 3, -3]}
        assert len(indices) == 6

    def test_value_unassigned(self):
        solver = Solver()
        solver.ensure_vars(1)
        assert solver.value(1) == 0
        assert solver.value(-1) == 0


class TestTrailAndBacktracking:
    def test_level0_assignments_persist(self):
        solver = Solver()
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        solver.solve()
        # After solving, level-0 units are still assigned.
        assert solver.value(1) == 1
        assert solver.value(2) == 1

    def test_cancel_until_restores(self):
        solver = Solver()
        solver.ensure_vars(3)
        solver._new_decision_level()
        solver._enqueue(2, None)
        assert solver.value(2) == 1
        solver.cancel_until(0)
        assert solver.value(2) == 0
        assert solver.decision_level() == 0

    def test_phase_saving(self):
        solver = Solver()
        solver.ensure_vars(2)
        solver._new_decision_level()
        solver._enqueue(2, None)
        solver.cancel_until(0)
        assert solver._phase[2] is True
        solver._new_decision_level()
        solver._enqueue(-2, None)
        solver.cancel_until(0)
        assert solver._phase[2] is False


class TestPropagation:
    def test_unit_chain(self):
        solver = Solver()
        for v in range(1, 10):
            solver.add_clause([-v, v + 1])
        solver.add_clause([1])
        assert solver.value(10) == 1  # propagated at level 0 on add

    def test_watched_literal_migration(self):
        """A clause watched on two falsified literals must find a third."""
        solver = Solver()
        solver.add_clause([1, 2, 3])
        solver.add_clause([-1])  # kills one watch at level 0
        solver.add_clause([-2])  # kills the second; 3 must propagate
        assert solver.value(3) == 1

    def test_propagation_counter(self):
        solver = Solver()
        solver.add_clause([1])
        solver.add_clause([-1, 2])
        solver.solve()
        assert solver.stats.propagations >= 2


class TestLearnedClauseDatabase:
    def _hard_instance(self, solver):
        var = lambda p, h: p * 5 + h + 1
        for p in range(6):
            solver.add_clause([var(p, h) for h in range(5)])
        for h in range(5):
            for p1 in range(6):
                for p2 in range(p1 + 1, 6):
                    solver.add_clause([-var(p1, h), -var(p2, h)])

    def test_reduce_db_fires_and_stays_sound(self):
        solver = Solver()
        solver._max_learnts = 0  # immediate pressure
        self._hard_instance(solver)
        assert solver.solve().status is UNSAT
        assert solver.stats.deleted > 0

    def test_binary_learned_clauses_never_deleted(self):
        solver = Solver()
        solver._max_learnts = 0
        self._hard_instance(solver)
        solver.solve()
        for ref in solver._learnts:
            assert solver.clause_size(ref) >= 2

    def test_learned_count_matches_stats(self):
        store = ProofStore()
        solver = Solver(proof=store)
        self._hard_instance(solver)
        solver.solve()
        assert solver.stats.learned > 0


class TestRestarts:
    def test_restarts_happen_with_small_base(self):
        solver = Solver(restart_base=1)
        var = lambda p, h: p * 6 + h + 1
        for p in range(7):
            solver.add_clause([var(p, h) for h in range(6)])
        for h in range(6):
            for p1 in range(7):
                for p2 in range(p1 + 1, 7):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        assert solver.solve().status is UNSAT
        assert solver.stats.restarts > 0

    def test_verdict_stable_across_restart_bases(self):
        rng = random.Random(5)
        clauses = []
        for _ in range(40):
            variables = rng.sample(range(1, 11), 3)
            clauses.append(
                [v if rng.random() < 0.5 else -v for v in variables]
            )
        verdicts = []
        for base in (1, 10, 1000):
            solver = Solver(restart_base=base)
            alive = all(solver.add_clause(c) for c in clauses)
            verdicts.append(solver.solve().status if alive else UNSAT)
        assert len(set(verdicts)) == 1


class TestActivityHeap:
    def test_bump_rescale(self):
        solver = Solver()
        solver.ensure_vars(3)
        solver._var_inc = 1e99
        solver._bump_var(1)
        solver._bump_var(2)
        # Rescale must have fired, keeping activities finite.
        assert all(a < 1e101 for a in solver._activity)

    def test_decision_prefers_active_vars(self):
        solver = Solver()
        solver.ensure_vars(5)
        solver._activity[4] = 10.0
        import heapq

        heapq.heappush(solver._heap, (-10.0, 4))
        assert solver._pick_branch_var() == 4


class TestClauseArena:
    def test_accessors_roundtrip(self):
        solver = Solver()
        assert solver.add_clause([3, -1, 2])
        ref = solver.clause_refs()[0]
        assert solver.clause_size(ref) == 3
        assert solver.clause_is_learnt(ref) is False
        assert sorted(solver.clause_lits(ref)) == [-1, 2, 3]
        assert solver.clause_proof_id(ref) is None
        assert solver.clause_activity(ref) == 0.0

    def test_proof_id_registered(self):
        store = ProofStore()
        solver = Solver(proof=store)
        assert solver.add_clause([1, 2])
        ref = solver.clause_refs()[0]
        assert solver.clause_proof_id(ref) is not None

    def test_watches_are_flat_ref_blocker_pairs(self):
        solver = Solver()
        assert solver.add_clause([1, 2, 3])
        ref = solver.clause_refs()[0]
        w1 = solver._watches[Solver._widx(1)]
        w2 = solver._watches[Solver._widx(2)]
        # Each watch list interleaves (clause_ref, blocker_lit) and the
        # two watches of a clause use each other as blockers.
        assert w1 == [ref, Solver._widx(2)]
        assert w2 == [ref, Solver._widx(1)]

    def test_reason_ref_for_propagated_var(self):
        solver = Solver()
        solver.add_clause([1, 2])
        solver.add_clause([-1])
        ref = solver.reason_ref(2)
        assert ref is not None
        assert sorted(solver.clause_lits(ref)) == [1, 2]
        unit_ref = solver.reason_ref(1)
        assert unit_ref is not None
        assert solver.clause_lits(unit_ref) == [-1]

    def test_arena_compaction_preserves_clauses(self):
        solver = Solver()
        solver._max_learnts = 0  # force clause deletion pressure
        var = lambda p, h: p * 5 + h + 1
        for p in range(6):
            solver.add_clause([var(p, h) for h in range(5)])
        for h in range(5):
            for p1 in range(6):
                for p2 in range(p1 + 1, 6):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        assert solver.solve().status is UNSAT
        assert solver.stats.deleted > 0
        solver._compact_arena()
        for ref in solver.clause_refs():
            lits = solver.clause_lits(ref)
            assert len(lits) == solver.clause_size(ref)
            assert all(lit != 0 for lit in lits)


class TestProofIdsStability:
    def test_deleted_clause_proofs_remain_valid(self):
        store = ProofStore()
        solver = Solver(proof=store)
        solver._max_learnts = 0
        var = lambda p, h: p * 5 + h + 1
        for p in range(6):
            solver.add_clause([var(p, h) for h in range(5)])
        for h in range(5):
            for p1 in range(6):
                for p2 in range(p1 + 1, 6):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        assert solver.solve().status is UNSAT
        assert solver.stats.deleted > 0
        # Every chain in the store must still replay even though many
        # learned clauses were detached from the solver.
        check_proof(store)


class TestModelExtraction:
    def test_model_covers_late_vars(self):
        solver = Solver()
        solver.add_clause([1])
        solver.ensure_vars(10)
        result = solver.solve()
        assert result.status is SAT
        assert result.model_value(10) in (0, 1)

    def test_model_signs(self):
        solver = Solver()
        solver.add_clause([-3])
        result = solver.solve()
        assert result.model_value(3) == 0
        assert result.model_value(-3) == 1
