"""Fleet benchmark: sharded throughput behind the asyncio router.

Runnable standalone (used by the CI fleet-smoke job) or under the
benchmark harness::

    PYTHONPATH=src python benchmarks/bench_fleet.py --out BENCH_fleet.json
    PYTHONPATH=src python benchmarks/bench_fleet.py --small --out /tmp/b.json

An async load generator drives a workload of distinct adder-vs-adder
equivalence checks through two configurations:

* **single** — one in-process ``CecServer`` (one solver worker),
  clients connect directly;
* **fleet** — the same workload through ``repro-router`` fronting two
  identically-sized shards, so the consistent-hash ring spreads the
  solves over twice the worker capacity.

Every configuration is measured with the same concurrency (several
`AsyncServiceClient` connections submitting in parallel), and every
verdict is asserted ``equivalent`` — the fleet must be faster *and*
right. On a multi-core machine the two-shard fleet must reach >= 1.5x
the single-shard throughput. On starved runners (fewer than three
CPUs: two solver workers plus the router/event loop have nothing to
run on in parallel) the document is honestly labelled
``"mode": "fallback"`` with *no* ``speedup`` key instead of
publishing a fake number — the convention BENCH_refinement.json
established for the parallel proof checker.
"""

import argparse
import asyncio
import io
import json
import os
import sys
import tempfile
import time

from repro.aig.aiger import write_aag
from repro.circuits import (
    carry_lookahead_adder,
    kogge_stone_adder,
    ripple_carry_adder,
)
from repro.fleet import AsyncServiceClient, FleetRouter
from repro.service import CecServer

#: Two-shard fleet vs one shard: required gain on real hardware.
SPEEDUP_FLOOR = 1.5


def _aag(aig):
    buffer = io.StringIO()
    write_aag(aig, buffer)
    return buffer.getvalue()


def build_workload(small=False):
    """Distinct (name, aag_a, aag_b) queries: every pair is a cold
    solve (distinct cache keys), so throughput measures solver
    capacity, not cache hits."""
    widths = range(2, 6) if small else range(2, 8)
    queries = []
    for width in widths:
        ripple = _aag(ripple_carry_adder(width))
        queries.append(
            ("rca%d-vs-ks%d" % (width, width), ripple,
             _aag(kogge_stone_adder(width))),
        )
        queries.append(
            ("rca%d-vs-cla%d" % (width, width), ripple,
             _aag(carry_lookahead_adder(width))),
        )
    return queries


async def _drive(address, workload, concurrency):
    """The load generator: *concurrency* client connections pull
    queries from one shared list and submit them concurrently."""
    queue = list(enumerate(workload))
    routed_to = {}

    async def client_worker():
        async with AsyncServiceClient(address, timeout=300.0) as client:
            while queue:
                index, (name, aag_a, aag_b) = queue.pop()
                submitted = await client.submit(aag_a, aag_b)
                job = submitted["job"]
                # Routed ids are "<raw>@<shard>"; direct ids have no @.
                _, _, shard = job.partition("@")
                routed_to[index] = shard or address
                response = await client.result(job, wait=True)
                assert response["verdict"] == "equivalent", (
                    name, response,
                )

    start = time.perf_counter()
    await asyncio.gather(
        *(client_worker() for _ in range(concurrency))
    )
    seconds = time.perf_counter() - start
    return {
        "jobs": len(workload),
        "seconds": round(seconds, 4),
        "jobs_per_second": round(
            len(workload) / max(seconds, 1e-9), 2
        ),
        "shards_used": sorted(set(routed_to.values())),
    }


async def _run_single(scratch, workload, concurrency):
    server = CecServer(
        scratch + "/single.sock", workers=1,
        cache_dir=scratch + "/single-cache",
    )
    server.start()
    try:
        return await _drive(server.address, workload, concurrency)
    finally:
        server.close()


async def _run_fleet(scratch, workload, concurrency):
    shards = []
    for label in ("a", "b"):
        shard = CecServer(
            scratch + "/shard-%s.sock" % label, workers=1,
            cache_dir=scratch + "/cache-%s" % label,
        )
        shard.start()
        shards.append(shard)
    router = FleetRouter(
        scratch + "/router.sock",
        [shard.address for shard in shards],
    )
    await router.start()
    try:
        measured = await _drive(
            scratch + "/router.sock", workload, concurrency
        )
        measured["router_counters"] = {
            name: value
            for name, value in sorted(
                router.stats_report()["counters"].items()
            )
            if name.startswith("fleet/")
        }
        return measured
    finally:
        await router.close()
        for shard in shards:
            shard.close()


async def _run_async(small, concurrency):
    workload = build_workload(small=small)
    with tempfile.TemporaryDirectory() as scratch:
        single = await _run_single(scratch, workload, concurrency)
        fleet = await _run_fleet(scratch, workload, concurrency)
    return workload, single, fleet


def run(small=False, concurrency=4):
    """Measure both configurations; honest fallback when starved."""
    workload, single, fleet = asyncio.run(
        _run_async(small, concurrency)
    )
    assert fleet["router_counters"]["fleet/jobs-routed"] \
        == len(workload), fleet
    cpus = os.cpu_count() or 1
    document = {
        "bench": "fleet",
        "mode": "small" if small else "full",
        "cpus": cpus,
        "concurrency": concurrency,
        "pairs": [name for name, _, _ in workload],
        "single": single,
        "fleet": fleet,
    }
    speedup = fleet["jobs_per_second"] / max(
        single["jobs_per_second"], 1e-9
    )
    if cpus < 3:
        # One core runs one solver at a time no matter how many
        # shards front it; record the observation, claim nothing.
        document["mode"] = "fallback"
        document["fallback"] = "cpus"
    else:
        document["speedup"] = round(speedup, 2)
    return document


def test_fleet_bench_smoke():
    """Harness entry: the small configuration must hold end to end."""
    from conftest import report_table

    document = run(small=True, concurrency=2)
    report_table(
        "Fleet: single shard vs 2-shard router",
        ["config", "jobs", "seconds", "jobs/sec"],
        [
            ["single", document["single"]["jobs"],
             document["single"]["seconds"],
             document["single"]["jobs_per_second"]],
            ["fleet (2 shards)", document["fleet"]["jobs"],
             document["fleet"]["seconds"],
             document["fleet"]["jobs_per_second"]],
        ],
        notes=[
            "speedup: %.2fx" % document["speedup"]
            if "speedup" in document
            else "fallback (%d cpu(s)): no speedup claimed"
            % document["cpus"],
        ],
    )
    # Correctness invariants hold regardless of hardware.
    assert len(document["fleet"]["shards_used"]) == 2, document["fleet"]
    if "speedup" in document:
        assert document["speedup"] >= SPEEDUP_FLOOR, document


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="sharded fleet throughput benchmark "
        "(async load generator, 2-shard router vs one server)"
    )
    parser.add_argument(
        "--small", action="store_true",
        help="CI-sized configuration (8 pairs instead of 12)",
    )
    parser.add_argument(
        "--concurrency", type=int, default=4, metavar="N",
        help="concurrent client connections (default %(default)s)",
    )
    parser.add_argument(
        "--out", metavar="PATH",
        help="write the JSON result document to PATH",
    )
    args = parser.parse_args(argv)
    document = run(small=args.small, concurrency=args.concurrency)
    summary = (
        "%.2fx speedup" % document["speedup"]
        if "speedup" in document
        else "fallback on %d cpu(s), no speedup claimed"
        % document["cpus"]
    )
    print(
        "fleet bench (%s): single %d jobs in %.3fs (%.1f/s), "
        "2-shard fleet %d jobs in %.3fs (%.1f/s), %s"
        % (
            document["mode"],
            document["single"]["jobs"], document["single"]["seconds"],
            document["single"]["jobs_per_second"],
            document["fleet"]["jobs"], document["fleet"]["seconds"],
            document["fleet"]["jobs_per_second"],
            summary,
        )
    )
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("results written to %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
