"""Shared process exit codes for the repro CLIs.

Every command-line tool in the package reports its outcome through one
documented convention, so scripts and CI jobs can distinguish *what the
tool decided* from *whether it could run at all*:

=====  ==============================================================
code   meaning
=====  ==============================================================
0      definite positive result — circuits equivalent, proof valid,
       lint clean (``repro-sat`` uses the SAT-competition codes 10/20
       for its SAT/UNSAT verdicts instead).
1      definite negative result — circuits differ, proof invalid,
       error-severity lint findings.
2      **undecided** — the run ended without a verdict because a
       resource budget (``--time-limit`` / ``--conflict-limit``) was
       exhausted or the engine cannot decide the instance.
3      **invalid input** — unreadable files, malformed AIGER / DIMACS /
       trace data, incompatible interfaces, or bad usage. The tool
       never started deciding anything.
=====  ==============================================================

Undecided (2) and invalid-input (3) are deliberately distinct: a
retry-with-a-larger-budget policy is correct for 2 and pointless for 3.

``repro-sat`` keeps the SAT-competition convention for its verdicts
(10 = SAT, 20 = UNSAT, 0 = unknown/limit-exhausted) but uses
:data:`EXIT_INVALID_INPUT` for unreadable or malformed formulas, which
previously collided with the "unknown" code 0.
"""

from __future__ import annotations

#: Definite positive verdict (equivalent / valid / clean).
EXIT_OK = 0

#: Definite negative verdict (not equivalent / invalid proof / lint errors).
EXIT_NEGATIVE = 1

#: No verdict: resource budget exhausted or instance undecidable here.
EXIT_UNDECIDED = 2

#: The inputs could not be read or parsed; nothing was decided.
EXIT_INVALID_INPUT = 3

#: SAT-competition verdict codes used by ``repro-sat``.
EXIT_SAT = 10
EXIT_UNSAT = 20
#: ``repro-sat``'s unknown/limit code (SAT-competition convention).
EXIT_SAT_UNKNOWN = 0
