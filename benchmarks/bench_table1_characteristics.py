"""Table 1 — benchmark characteristics.

For every suite pair: inputs/outputs, AND counts of both circuits, miter
AND count, and miter CNF size. This is the static-circuit table every CEC
evaluation opens with.
"""

import pytest

from repro.aig.miter import build_miter
from repro.cnf.tseitin import tseitin_encode
from repro.circuits import SUITE

from conftest import report_table

_ROWS = {}


@pytest.mark.parametrize("pair", SUITE, ids=lambda p: p.name)
def test_characteristics(benchmark, pair):
    def build():
        aig_a, aig_b = pair.build()
        miter = build_miter(aig_a, aig_b)
        enc = tseitin_encode(miter.aig)
        return aig_a, aig_b, miter, enc

    aig_a, aig_b, miter, enc = benchmark.pedantic(
        build, rounds=1, iterations=1
    )
    _ROWS[pair.name] = [
        pair.name,
        pair.category,
        aig_a.num_inputs,
        aig_a.num_outputs,
        aig_a.num_ands,
        aig_b.num_ands,
        miter.aig.num_ands,
        enc.cnf.num_vars,
        len(enc.cnf),
    ]
    assert miter.aig.num_outputs == 1
    report_table(
        "Table 1: benchmark characteristics",
        ["pair", "cat", "PI", "PO", "ands(A)", "ands(B)", "ands(miter)",
         "cnf vars", "cnf clauses"],
        [_ROWS[name] for name in sorted(_ROWS)],
        notes=["miter CNF excludes the output unit clause added at solve time"],
    )
