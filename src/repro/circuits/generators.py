"""Benchmark circuit generators.

Each generator builds a self-contained :class:`~repro.aig.AIG` for a
word-level function. Several functions come in multiple *structurally
different* implementations of the *same* word-level specification (e.g.
ripple-carry vs. carry-lookahead vs. carry-select adders): pairing two
implementations yields exactly the kind of structurally-similar-but-not-
identical miter that equivalence-checking papers evaluate on.

Words are little-endian lists of literals (index 0 = LSB).
"""

import random

from ..aig.aig import AIG
from ..aig.literal import FALSE, TRUE, lit_not


def _two_operand_inputs(aig, width):
    a = [aig.add_input("a%d" % k) for k in range(width)]
    b = [aig.add_input("b%d" % k) for k in range(width)]
    return a, b


def full_adder(aig, a, b, cin):
    """One-bit full adder; returns ``(sum, carry)`` literals."""
    axb = aig.add_xor(a, b)
    total = aig.add_xor(axb, cin)
    carry = aig.add_or(aig.add_and(a, b), aig.add_and(axb, cin))
    return total, carry


def ripple_carry_adder(width, carry_in=False, name=None):
    """N-bit ripple-carry adder: outputs ``s0..s{n-1}, cout``."""
    aig = AIG(name or "rca%d" % width)
    a, b = _two_operand_inputs(aig, width)
    cin = aig.add_input("cin") if carry_in else FALSE
    carry = cin
    for k in range(width):
        s, carry = full_adder(aig, a[k], b[k], carry)
        aig.add_output(s, "s%d" % k)
    aig.add_output(carry, "cout")
    return aig


def carry_lookahead_adder(width, carry_in=False, name=None):
    """N-bit carry-lookahead adder (flat lookahead per bit position).

    Computes generate/propagate signals and expands every carry as
    ``c[i+1] = g[i] + p[i]g[i-1] + ... + p[i]..p[0]c0`` — a structure very
    different from the ripple chain, with the same function.
    """
    aig = AIG(name or "cla%d" % width)
    a, b = _two_operand_inputs(aig, width)
    cin = aig.add_input("cin") if carry_in else FALSE
    gen = [aig.add_and(a[k], b[k]) for k in range(width)]
    prop = [aig.add_xor(a[k], b[k]) for k in range(width)]
    carries = [cin]
    for k in range(width):
        # c[k+1] = g[k] | p[k] g[k-1] | ... | p[k]..p[1] g[0] | p[k]..p[0] c0
        terms = []
        for j in range(k, -1, -1):
            prefix = aig.add_and_multi(prop[j + 1 : k + 1] + [gen[j]])
            terms.append(prefix)
        terms.append(aig.add_and_multi(prop[0 : k + 1] + [cin]))
        carries.append(aig.add_or_multi(terms))
    for k in range(width):
        aig.add_output(aig.add_xor(prop[k], carries[k]), "s%d" % k)
    aig.add_output(carries[width], "cout")
    return aig


def carry_select_adder(width, block=4, name=None):
    """N-bit carry-select adder: per-block dual ripple chains plus muxes."""
    aig = AIG(name or "csel%d" % width)
    a, b = _two_operand_inputs(aig, width)
    carry = FALSE
    sums = []
    for start in range(0, width, block):
        end = min(start + block, width)
        # Two speculative chains: carry-in 0 and carry-in 1.
        sums0, carry0 = _ripple_block(aig, a[start:end], b[start:end], FALSE)
        sums1, carry1 = _ripple_block(aig, a[start:end], b[start:end], TRUE)
        for s0, s1 in zip(sums0, sums1):
            sums.append(aig.add_mux(carry, s1, s0))
        carry = aig.add_mux(carry, carry1, carry0)
    for k, s in enumerate(sums):
        aig.add_output(s, "s%d" % k)
    aig.add_output(carry, "cout")
    return aig


def _ripple_block(aig, a_bits, b_bits, cin):
    sums = []
    carry = cin
    for a_bit, b_bit in zip(a_bits, b_bits):
        s, carry = full_adder(aig, a_bit, b_bit, carry)
        sums.append(s)
    return sums, carry


def kogge_stone_adder(width, name=None):
    """N-bit Kogge-Stone parallel-prefix adder."""
    aig = AIG(name or "ks%d" % width)
    a, b = _two_operand_inputs(aig, width)
    gen = [aig.add_and(a[k], b[k]) for k in range(width)]
    prop = [aig.add_xor(a[k], b[k]) for k in range(width)]
    g, p = list(gen), list(prop)
    dist = 1
    while dist < width:
        new_g, new_p = list(g), list(p)
        for k in range(dist, width):
            new_g[k] = aig.add_or(g[k], aig.add_and(p[k], g[k - dist]))
            new_p[k] = aig.add_and(p[k], p[k - dist])
        g, p = new_g, new_p
        dist <<= 1
    carries = [FALSE] + g
    for k in range(width):
        aig.add_output(aig.add_xor(prop[k], carries[k]), "s%d" % k)
    aig.add_output(carries[width], "cout")
    return aig


def subtractor(width, name=None):
    """N-bit subtractor ``a - b`` via two's complement; outputs diff + borrow."""
    aig = AIG(name or "sub%d" % width)
    a, b = _two_operand_inputs(aig, width)
    carry = TRUE
    for k in range(width):
        s, carry = full_adder(aig, a[k], lit_not(b[k]), carry)
        aig.add_output(s, "d%d" % k)
    aig.add_output(lit_not(carry), "borrow")
    return aig


def array_multiplier(width, name=None):
    """N×N array multiplier producing a 2N-bit product.

    Partial products are reduced row by row with ripple-carry adders,
    mirroring a classic combinational array.
    """
    aig = AIG(name or "mul%d" % width)
    a, b = _two_operand_inputs(aig, width)
    acc = [FALSE] * (2 * width)
    for i in range(width):
        row = [aig.add_and(a[j], b[i]) for j in range(width)]
        carry = FALSE
        for j in range(width):
            pos = i + j
            s, c1 = full_adder(aig, acc[pos], row[j], carry)
            acc[pos] = s
            carry = c1
        pos = i + width
        while carry != FALSE and pos < 2 * width:
            s, carry = full_adder(aig, acc[pos], carry, FALSE)
            acc[pos] = s
            pos += 1
    for k in range(2 * width):
        aig.add_output(acc[k], "p%d" % k)
    return aig


def shift_add_multiplier(width, name=None):
    """N×N multiplier structured as a chain of conditional wide additions.

    Functionally identical to :func:`array_multiplier` but reduces each
    shifted operand with one full-width adder per multiplier bit, so the
    internal structure differs substantially.
    """
    aig = AIG(name or "mulsa%d" % width)
    a, b = _two_operand_inputs(aig, width)
    acc = [FALSE] * (2 * width)
    for i in range(width):
        addend = [FALSE] * i
        addend += [aig.add_and(a[j], b[i]) for j in range(width)]
        addend += [FALSE] * (2 * width - len(addend))
        carry = FALSE
        new_acc = []
        for pos in range(2 * width):
            s, carry = full_adder(aig, acc[pos], addend[pos], carry)
            new_acc.append(s)
        acc = new_acc
    for k in range(2 * width):
        aig.add_output(acc[k], "p%d" % k)
    return aig


def wallace_multiplier(width, name=None):
    """N×N multiplier with a Wallace-style carry-save reduction tree.

    Partial-product bits are grouped per column and reduced three at a
    time with full adders (and pairs with half adders) until every column
    holds at most two bits; a final ripple-carry adder merges the two
    remaining rows. The carry-save structure is very different from the
    row-by-row array of :func:`array_multiplier` while computing the same
    product.
    """
    aig = AIG(name or "mulw%d" % width)
    a, b = _two_operand_inputs(aig, width)
    columns = [[] for _ in range(2 * width)]
    for i in range(width):
        for j in range(width):
            columns[i + j].append(aig.add_and(a[j], b[i]))
    reduced = True
    while reduced:
        reduced = False
        next_columns = [[] for _ in range(2 * width)]
        for pos, col in enumerate(columns):
            k = 0
            while len(col) - k >= 3:
                s, c = full_adder(aig, col[k], col[k + 1], col[k + 2])
                next_columns[pos].append(s)
                if pos + 1 < 2 * width:
                    next_columns[pos + 1].append(c)
                k += 3
                reduced = True
            if len(col) - k == 2 and len(col) > 2:
                s, c = full_adder(aig, col[k], col[k + 1], FALSE)
                next_columns[pos].append(s)
                if pos + 1 < 2 * width:
                    next_columns[pos + 1].append(c)
                k += 2
                reduced = True
            next_columns[pos].extend(col[k:])
        columns = next_columns
    carry = FALSE
    for pos in range(2 * width):
        col = columns[pos] + [FALSE] * (2 - len(columns[pos]))
        s, carry_next = full_adder(aig, col[0], col[1], carry)
        aig.add_output(s, "p%d" % pos)
        carry = carry_next
    return aig


def comparator(width, name=None):
    """N-bit unsigned comparator: outputs ``lt``, ``eq``, ``gt``."""
    aig = AIG(name or "cmp%d" % width)
    a, b = _two_operand_inputs(aig, width)
    lt = FALSE
    gt = FALSE
    for k in range(width - 1, -1, -1):
        bit_lt = aig.add_and(lit_not(a[k]), b[k])
        bit_gt = aig.add_and(a[k], lit_not(b[k]))
        lt = aig.add_or(lt, aig.add_and_multi([lit_not(gt), lit_not(lt), bit_lt]))
        gt = aig.add_or(gt, aig.add_and_multi([lit_not(gt), lit_not(lt), bit_gt]))
    eq = aig.add_and(lit_not(lt), lit_not(gt))
    aig.add_output(lt, "lt")
    aig.add_output(eq, "eq")
    aig.add_output(gt, "gt")
    return aig


def comparator_subtract(width, name=None):
    """N-bit comparator implemented via a subtractor (different structure)."""
    aig = AIG(name or "cmpsub%d" % width)
    a, b = _two_operand_inputs(aig, width)
    carry = TRUE
    diff = []
    for k in range(width):
        s, carry = full_adder(aig, a[k], lit_not(b[k]), carry)
        diff.append(s)
    lt = lit_not(carry)
    eq = lit_not(aig.add_or_multi(diff))
    gt = aig.add_and(carry, lit_not(eq))
    aig.add_output(lt, "lt")
    aig.add_output(eq, "eq")
    aig.add_output(gt, "gt")
    return aig


def alu(width, name=None):
    """N-bit four-function ALU: op ∈ {ADD, AND, OR, XOR} via 2-bit opcode."""
    aig = AIG(name or "alu%d" % width)
    a, b = _two_operand_inputs(aig, width)
    op0 = aig.add_input("op0")
    op1 = aig.add_input("op1")
    carry = FALSE
    add_bits = []
    for k in range(width):
        s, carry = full_adder(aig, a[k], b[k], carry)
        add_bits.append(s)
    for k in range(width):
        and_bit = aig.add_and(a[k], b[k])
        or_bit = aig.add_or(a[k], b[k])
        xor_bit = aig.add_xor(a[k], b[k])
        low = aig.add_mux(op0, and_bit, add_bits[k])
        high = aig.add_mux(op0, xor_bit, or_bit)
        aig.add_output(aig.add_mux(op1, high, low), "r%d" % k)
    return aig


def alu_mux_first(width, name=None):
    """The same four-function ALU with operand-level muxing.

    Selects per-bit operand transforms before a shared adder-like skeleton,
    yielding a structurally different network with the same function.
    """
    aig = AIG(name or "alu_mf%d" % width)
    a, b = _two_operand_inputs(aig, width)
    op0 = aig.add_input("op0")
    op1 = aig.add_input("op1")
    is_add = aig.add_and(lit_not(op0), lit_not(op1))
    carry = FALSE
    for k in range(width):
        axb = aig.add_xor(a[k], b[k])
        anb = aig.add_and(a[k], b[k])
        sum_bit = aig.add_xor(axb, aig.add_and(is_add, carry))
        carry = aig.add_or(anb, aig.add_and(axb, carry))
        logic = aig.add_mux(op1, aig.add_mux(op0, axb, aig.add_or(a[k], b[k])),
                            aig.add_mux(op0, anb, sum_bit))
        aig.add_output(logic, "r%d" % k)
    return aig


def parity_tree(width, name=None):
    """Parity of N inputs as a balanced XOR tree."""
    aig = AIG(name or "parity%d" % width)
    bits = [aig.add_input("x%d" % k) for k in range(width)]
    aig.add_output(aig.add_xor_multi(bits), "parity")
    return aig


def parity_chain(width, name=None):
    """Parity of N inputs as a linear XOR chain (same function, deep)."""
    aig = AIG(name or "paritychain%d" % width)
    bits = [aig.add_input("x%d" % k) for k in range(width)]
    acc = FALSE
    for bit in bits:
        acc = aig.add_xor(acc, bit)
    aig.add_output(acc, "parity")
    return aig


def majority(width, name=None):
    """Majority-of-N (N odd) via a popcount-and-compare construction."""
    if width % 2 == 0:
        raise ValueError("majority needs an odd width")
    aig = AIG(name or "maj%d" % width)
    bits = [aig.add_input("x%d" % k) for k in range(width)]
    count = _popcount(aig, bits)
    threshold = width // 2 + 1
    aig.add_output(_geq_const(aig, count, threshold), "maj")
    return aig


def _popcount(aig, bits):
    """Popcount of literals as a little-endian sum word."""
    words = [[bit] for bit in bits]
    while len(words) > 1:
        merged = []
        for k in range(0, len(words) - 1, 2):
            merged.append(_add_words(aig, words[k], words[k + 1]))
        if len(words) % 2:
            merged.append(words[-1])
        words = merged
    return words[0]


def _add_words(aig, wa, wb):
    width = max(len(wa), len(wb))
    wa = wa + [FALSE] * (width - len(wa))
    wb = wb + [FALSE] * (width - len(wb))
    out = []
    carry = FALSE
    for a_bit, b_bit in zip(wa, wb):
        s, carry = full_adder(aig, a_bit, b_bit, carry)
        out.append(s)
    out.append(carry)
    return out


def _geq_const(aig, word, threshold):
    """Literal for ``word >= threshold`` (unsigned).

    Folds LSB to MSB with the invariant that ``ge`` compares the suffix
    processed so far: at a constant 1-bit, staying >= requires the word bit
    set *and* the lower part >=; at a constant 0-bit, a set word bit wins
    outright.
    """
    if threshold >> len(word):
        return FALSE
    ge = TRUE
    for k in range(len(word)):
        if (threshold >> k) & 1:
            ge = aig.add_and(word[k], ge)
        else:
            ge = aig.add_or(word[k], ge)
    return ge


def barrel_shifter(width_log, name=None):
    """Left barrel shifter of a ``2**width_log``-bit word, zero filling."""
    width = 1 << width_log
    aig = AIG(name or "bshift%d" % width)
    data = [aig.add_input("d%d" % k) for k in range(width)]
    shamt = [aig.add_input("s%d" % k) for k in range(width_log)]
    for stage in range(width_log):
        offset = 1 << stage
        sel = shamt[stage]
        data = [
            aig.add_mux(sel, data[k - offset] if k >= offset else FALSE, data[k])
            for k in range(width)
        ]
    for k, bit in enumerate(data):
        aig.add_output(bit, "q%d" % k)
    return aig


def mux_tree(select_bits, name=None):
    """2**k-to-1 multiplexer tree."""
    count = 1 << select_bits
    aig = AIG(name or "mux%d" % count)
    data = [aig.add_input("d%d" % k) for k in range(count)]
    sels = [aig.add_input("s%d" % k) for k in range(select_bits)]
    layer = data
    for sel in sels:
        layer = [
            aig.add_mux(sel, layer[2 * k + 1], layer[2 * k])
            for k in range(len(layer) // 2)
        ]
    aig.add_output(layer[0], "q")
    return aig


def carry_skip_adder(width, block=4, name=None):
    """N-bit carry-skip adder: ripple blocks with propagate bypass muxes."""
    aig = AIG(name or "cskip%d" % width)
    a, b = _two_operand_inputs(aig, width)
    carry = FALSE
    sums = []
    for start in range(0, width, block):
        end = min(start + block, width)
        block_in = carry
        props = []
        for k in range(start, end):
            s, carry = full_adder(aig, a[k], b[k], carry)
            sums.append(s)
            props.append(aig.add_xor(a[k], b[k]))
        bypass = aig.add_and_multi(props)
        carry = aig.add_mux(bypass, block_in, carry)
    for k, s in enumerate(sums):
        aig.add_output(s, "s%d" % k)
    aig.add_output(carry, "cout")
    return aig


def conditional_sum_adder(width, name=None):
    """N-bit conditional-sum adder (recursive halving with dual chains)."""
    aig = AIG(name or "csum%d" % width)
    a, b = _two_operand_inputs(aig, width)

    def build(lo, hi):
        """Return (sums0, carry0, sums1, carry1) for slice [lo, hi)."""
        if hi - lo == 1:
            s0 = aig.add_xor(a[lo], b[lo])
            c0 = aig.add_and(a[lo], b[lo])
            s1 = lit_not(s0)
            c1 = aig.add_or(a[lo], b[lo])
            return [s0], c0, [s1], c1
        mid = (lo + hi) // 2
        low0, lc0, low1, lc1 = build(lo, mid)
        high0, hc0, high1, hc1 = build(mid, hi)
        sums0 = low0 + [aig.add_mux(lc0, s1, s0) for s0, s1 in zip(high0, high1)]
        carry0 = aig.add_mux(lc0, hc1, hc0)
        sums1 = low1 + [aig.add_mux(lc1, s1, s0) for s0, s1 in zip(high0, high1)]
        carry1 = aig.add_mux(lc1, hc1, hc0)
        return sums0, carry0, sums1, carry1

    sums, carry, _, _ = build(0, width)
    for k, s in enumerate(sums):
        aig.add_output(s, "s%d" % k)
    aig.add_output(carry, "cout")
    return aig


def dadda_multiplier(width, name=None):
    """N×N multiplier with a Dadda-style staged reduction.

    Like Wallace, a carry-save tree — but columns are only reduced down
    to the Dadda height sequence (2, 3, 4, 6, 9, ...) at each stage,
    using as few adders as possible. Yet another structurally distinct
    implementation of the same product.
    """
    aig = AIG(name or "muld%d" % width)
    a, b = _two_operand_inputs(aig, width)
    columns = [[] for _ in range(2 * width)]
    for i in range(width):
        for j in range(width):
            columns[i + j].append(aig.add_and(a[j], b[i]))
    heights = [2]
    while heights[-1] < width:
        heights.append(int(heights[-1] * 3 / 2))
    for target in reversed(heights):
        next_columns = [[] for _ in range(2 * width)]
        carry_in = [[] for _ in range(2 * width + 1)]
        for pos in range(2 * width):
            col = columns[pos] + carry_in[pos]
            while len(col) > target:
                if len(col) == target + 1:
                    s, c = full_adder(aig, col.pop(), col.pop(), FALSE)
                else:
                    s, c = full_adder(aig, col.pop(), col.pop(), col.pop())
                col.append(s)
                if pos + 1 <= 2 * width:
                    carry_in[pos + 1].append(c)
            next_columns[pos] = col
        columns = next_columns
    carry = FALSE
    for pos in range(2 * width):
        col = columns[pos] + [FALSE] * (2 - len(columns[pos]))
        s, carry = full_adder(aig, col[0], col[1], carry)
        aig.add_output(s, "p%d" % pos)
    return aig


def priority_encoder(width, name=None):
    """Priority encoder: index of the highest set input bit, plus valid.

    Outputs ``ceil(log2(width))`` index bits and a ``valid`` flag (0 when
    no input is set; the index is 0 in that case).
    """
    aig = AIG(name or "prienc%d" % width)
    bits = [aig.add_input("x%d" % k) for k in range(width)]
    index_bits = max(1, (width - 1).bit_length())
    valid = FALSE
    index = [FALSE] * index_bits
    # Scan from LSB to MSB; later (higher) bits override.
    for position, bit in enumerate(bits):
        for j in range(index_bits):
            const = TRUE if (position >> j) & 1 else FALSE
            index[j] = aig.add_mux(bit, const, index[j])
        valid = aig.add_or(valid, bit)
    for j in range(index_bits):
        aig.add_output(index[j], "y%d" % j)
    aig.add_output(valid, "valid")
    return aig


def decoder(select_bits, enable=False, name=None):
    """Binary decoder: 2**k one-hot outputs from a k-bit select."""
    count = 1 << select_bits
    aig = AIG(name or "dec%d" % count)
    sels = [aig.add_input("s%d" % k) for k in range(select_bits)]
    en = aig.add_input("en") if enable else TRUE
    for value in range(count):
        terms = [
            sels[k] if (value >> k) & 1 else lit_not(sels[k])
            for k in range(select_bits)
        ]
        aig.add_output(aig.add_and_multi(terms + [en]), "d%d" % value)
    return aig


def binary_to_gray(width, name=None):
    """Binary-to-Gray converter: ``g[k] = b[k] ^ b[k+1]``."""
    aig = AIG(name or "b2g%d" % width)
    bits = [aig.add_input("b%d" % k) for k in range(width)]
    for k in range(width):
        if k + 1 < width:
            aig.add_output(aig.add_xor(bits[k], bits[k + 1]), "g%d" % k)
        else:
            aig.add_output(bits[k], "g%d" % k)
    return aig


def gray_to_binary(width, name=None):
    """Gray-to-binary converter: suffix XOR chain from the MSB down."""
    aig = AIG(name or "g2b%d" % width)
    bits = [aig.add_input("g%d" % k) for k in range(width)]
    acc = FALSE
    outputs = [None] * width
    for k in range(width - 1, -1, -1):
        acc = aig.add_xor(acc, bits[k])
        outputs[k] = acc
    for k in range(width):
        aig.add_output(outputs[k], "b%d" % k)
    return aig


def popcount(width, name=None):
    """Population count of N inputs as a little-endian sum word."""
    aig = AIG(name or "popcount%d" % width)
    bits = [aig.add_input("x%d" % k) for k in range(width)]
    word = _popcount(aig, bits)
    for k, lit in enumerate(word):
        aig.add_output(lit, "c%d" % k)
    return aig


def random_aig(num_inputs, num_ands, num_outputs=1, seed=0, name=None):
    """A random, fully reproducible AIG (for fuzzing and stress tests)."""
    rng = random.Random(seed)
    aig = AIG(name or "rand_i%d_a%d_s%d" % (num_inputs, num_ands, seed))
    lits = [aig.add_input("x%d" % k) for k in range(num_inputs)]
    attempts = 0
    while aig.num_ands < num_ands and attempts < 20 * num_ands + 100:
        attempts += 1
        a = rng.choice(lits) ^ rng.randint(0, 1)
        b = rng.choice(lits) ^ rng.randint(0, 1)
        lit = aig.add_and(a, b)
        if lit not in lits:
            lits.append(lit)
    for k in range(num_outputs):
        aig.add_output(lits[-1 - k] if k < len(lits) else FALSE, "y%d" % k)
    return aig
