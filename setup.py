"""Setuptools shim for environments without PEP 517 wheel support."""

from setuptools import setup

setup()
