"""Literal arithmetic for And-Inverter Graphs.

Literals follow the AIGER convention: a literal is ``2 * var + sign`` where
``sign`` is 1 for a complemented reference. Variable 0 is the constant, so
literal 0 is FALSE and literal 1 is TRUE.
"""

FALSE = 0
TRUE = 1


def make_lit(var, sign=False):
    """Build the literal for *var*, complemented when *sign* is true."""
    if var < 0:
        raise ValueError("variable index must be non-negative, got %d" % var)
    return 2 * var + (1 if sign else 0)


def lit_var(lit):
    """Variable index of *lit*."""
    return lit >> 1


def lit_sign(lit):
    """True when *lit* is a complemented reference."""
    return bool(lit & 1)


def lit_not(lit):
    """Complement of *lit*."""
    return lit ^ 1


def lit_not_cond(lit, cond):
    """Complement of *lit* when *cond* is true, else *lit* unchanged."""
    return lit ^ 1 if cond else lit


def lit_regular(lit):
    """The non-complemented literal of *lit*'s variable."""
    return lit & ~1


def is_const(lit):
    """True for the constant literals 0 (FALSE) and 1 (TRUE)."""
    return lit <= 1


def lit_to_str(lit):
    """Human-readable rendering, e.g. ``~7`` for literal 15."""
    if lit == FALSE:
        return "0"
    if lit == TRUE:
        return "1"
    prefix = "~" if lit_sign(lit) else ""
    return "%sn%d" % (prefix, lit_var(lit))
