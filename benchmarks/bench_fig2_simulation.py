"""Figure 2 — effect of simulation effort on SAT work.

Sweep one representative pair with growing initial pattern budgets and
report SAT calls, refuting (SAT) answers, and refinements. The shape:
more upfront simulation cleans the candidate classes, converting refuted
SAT calls into never-asked questions, with diminishing returns.
"""

import pytest

from repro.circuits import by_name
from repro.core.cec import check_equivalence
from repro.core.fraig import SweepOptions

from conftest import report_table

WORD_BUDGETS = [0, 1, 2, 4, 8, 16]
_ROWS = {}


@pytest.mark.parametrize("words", WORD_BUDGETS)
def test_simulation_budget(benchmark, words):
    pair = by_name("add16")
    aig_a, aig_b = pair.build()
    result = benchmark.pedantic(
        lambda: check_equivalence(
            aig_a, aig_b, SweepOptions(sim_words=words)
        ),
        rounds=1,
        iterations=1,
    )
    assert result.equivalent is True
    stats = result.engine.stats
    _ROWS[words] = [
        words * 64,
        stats.sat_calls,
        stats.sat_calls_sat,
        stats.sat_calls_unsat,
        stats.refinements,
        "%.3f" % result.elapsed_seconds,
    ]
    report_table(
        "Figure 2 (series data): simulation effort vs SAT work (pair add16)",
        ["patterns", "sat calls", "refuted", "proved", "refinements",
         "time(s)"],
        [_ROWS[w] for w in sorted(_ROWS)],
        notes=[
            "0 patterns = candidates only from counterexample refinement",
            "refuted calls = wasted work that more simulation avoids",
        ],
    )
