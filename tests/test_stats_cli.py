"""The repro-stats CLI: show, diff, aggregate, flamegraph, chrome."""

import json

import pytest

from repro.exit_codes import EXIT_INVALID_INPUT, EXIT_OK
from repro.instrument import Recorder
from repro.instrument.recorder import validate_report
from repro.instrument.stats_cli import main, stats_collapsed_stacks
from repro.instrument.tracing import make_trace_document, new_span_id


def _stats_file(tmp_path, name, phases, counters=None):
    recorder = Recorder()
    for phase_name, seconds in phases.items():
        recorder.add_time(phase_name, seconds)
    for counter_name, value in (counters or {}).items():
        recorder.count(counter_name, value)
    path = tmp_path / name
    recorder.write_json(str(path))
    return str(path)


def _trace_file(tmp_path, name="trace.json"):
    root_id = new_span_id()
    spans = [
        {
            "trace_id": "a" * 32, "span_id": root_id,
            "parent_id": None, "name": "service/job",
            "ts": 0.0, "dur": 1.0, "pid": 1, "process": "repro-serve",
            "thread": "MainThread",
        },
        {
            "trace_id": "a" * 32, "span_id": new_span_id(),
            "parent_id": root_id, "name": "service/check",
            "ts": 0.2, "dur": 0.5, "pid": 2, "process": "worker",
            "thread": "MainThread",
        },
    ]
    path = tmp_path / name
    path.write_text(
        json.dumps(make_trace_document("a" * 32, spans))
    )
    return str(path)


class TestShow:
    def test_prints_phases_and_counters(self, tmp_path, capsys):
        path = _stats_file(
            tmp_path, "s.json",
            {"cec/sweep": 1.5, "cec/sweep/sweep/sat": 1.0},
            counters={"solver/conflicts": 42},
        )
        assert main(["show", path]) == EXIT_OK
        out = capsys.readouterr().out
        assert "cec/sweep" in out
        assert "solver/conflicts = 42" in out

    def test_top_limits_rows(self, tmp_path, capsys):
        path = _stats_file(
            tmp_path, "s.json", {"a": 3.0, "b": 2.0, "c": 1.0},
        )
        assert main(["show", path, "--top", "1"]) == EXIT_OK
        out = capsys.readouterr().out
        assert "a" in out and "  c  " not in out

    def test_rejects_malformed_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "nope"}')
        assert main(["show", str(path)]) == EXIT_INVALID_INPUT
        assert "not a valid" in capsys.readouterr().err

    def test_rejects_missing_file(self, tmp_path):
        assert main(["show", str(tmp_path / "absent.json")]) == \
            EXIT_INVALID_INPUT


class TestDiff:
    def test_reports_deltas(self, tmp_path, capsys):
        old = _stats_file(tmp_path, "old.json", {"cec/sweep": 1.0},
                          counters={"solver/conflicts": 10})
        new = _stats_file(tmp_path, "new.json", {"cec/sweep": 2.0},
                          counters={"solver/conflicts": 15})
        assert main(["diff", old, new]) == EXIT_OK
        out = capsys.readouterr().out
        assert "+100.0%" in out
        assert "10 -> 15" in out

    def test_threshold_hides_noise(self, tmp_path, capsys):
        old = _stats_file(tmp_path, "old.json", {"cec/sweep": 1.0})
        new = _stats_file(tmp_path, "new.json", {"cec/sweep": 1.001})
        assert main(["diff", old, new, "--threshold", "0.1"]) == EXIT_OK
        assert "no differences" in capsys.readouterr().out


class TestAggregate:
    def test_sums_phases_and_counters(self, tmp_path, capsys):
        a = _stats_file(tmp_path, "a.json", {"cec/sweep": 1.0},
                        counters={"solver/conflicts": 10})
        b = _stats_file(tmp_path, "b.json", {"cec/sweep": 2.0},
                        counters={"solver/conflicts": 5})
        out_path = tmp_path / "merged.json"
        assert main(["aggregate", a, b, "-o", str(out_path)]) == EXIT_OK
        merged = json.loads(out_path.read_text())
        validate_report(merged)
        assert merged["phases"]["cec/sweep"]["seconds"] == \
            pytest.approx(3.0)
        assert merged["phases"]["cec/sweep"]["count"] == 2
        assert merged["counters"]["solver/conflicts"] == 15
        assert merged["meta"]["aggregated_from"] == [a, b]


class TestFlamegraph:
    def test_from_trace_document(self, tmp_path, capsys):
        path = _trace_file(tmp_path)
        assert main(["flamegraph", path]) == EXIT_OK
        out = capsys.readouterr().out
        assert "service/job;service/check 500000" in out
        assert "service/job 500000" in out

    def test_from_stats_report_uses_self_seconds(self, tmp_path):
        path = _stats_file(
            tmp_path, "s.json",
            {"cec/sweep": 1.5, "cec/sweep/sweep/sat": 1.0},
        )
        report = json.loads(open(path).read())
        lines = stats_collapsed_stacks(report)
        weights = dict(
            (line.rsplit(" ", 1)[0], int(line.rsplit(" ", 1)[1]))
            for line in lines
        )
        # Parent weighted by self time only: 1.5 - 1.0 nested.
        assert weights["cec;sweep"] == 500000
        assert weights["cec;sweep;sweep;sat"] == 1000000

    def test_output_file(self, tmp_path):
        path = _trace_file(tmp_path)
        out_path = tmp_path / "stacks.txt"
        assert main(["flamegraph", path, "-o", str(out_path)]) == EXIT_OK
        assert "service/job" in out_path.read_text()

    def test_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"schema": "mystery/9"}')
        assert main(["flamegraph", str(path)]) == EXIT_INVALID_INPUT


class TestChrome:
    def test_emits_trace_events(self, tmp_path):
        path = _trace_file(tmp_path)
        out_path = tmp_path / "chrome.json"
        assert main(["chrome", path, "-o", str(out_path)]) == EXIT_OK
        chrome = json.loads(out_path.read_text())
        assert any(e["ph"] == "X" for e in chrome["traceEvents"])

    def test_rejects_stats_file(self, tmp_path):
        path = _stats_file(tmp_path, "s.json", {"cec/sweep": 1.0})
        assert main(["chrome", path]) == EXIT_INVALID_INPUT
