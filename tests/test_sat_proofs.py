"""Tests focused on the solver's proof logging."""

import itertools
import random

import pytest

from repro.proof import (
    AXIOM,
    ProofStore,
    check_proof,
    check_rup_proof,
    proof_stats,
    trim,
)
from repro.sat import UNSAT, Solver


def random_unsat_instances(count, seed):
    """Yield (clauses, num_vars) pairs that are UNSAT by brute force."""
    rng = random.Random(seed)
    produced = 0
    while produced < count:
        num_vars = rng.randint(3, 7)
        clauses = []
        for _ in range(rng.randint(8, 30)):
            width = rng.randint(1, 3)
            variables = rng.sample(range(1, num_vars + 1), width)
            clauses.append(
                [v if rng.random() < 0.5 else -v for v in variables]
            )
        if not _brute_sat(num_vars, clauses):
            produced += 1
            yield clauses


def _brute_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(
            any(bits[abs(l) - 1] == (l > 0) for l in clause)
            for clause in clauses
        ):
            return True
    return False


class TestRefutationProofs:
    @pytest.mark.parametrize("seed", range(5))
    def test_resolution_checker_accepts(self, seed):
        for clauses in random_unsat_instances(10, seed):
            store = ProofStore(validate=True)
            solver = Solver(proof=store)
            alive = all(solver.add_clause(c) for c in clauses)
            if alive:
                assert solver.solve().status is UNSAT
            result = check_proof(store, axioms=clauses)
            assert result.empty_clause_id is not None

    @pytest.mark.parametrize("seed", range(3))
    def test_rup_checker_accepts(self, seed):
        for clauses in random_unsat_instances(8, 50 + seed):
            store = ProofStore()
            solver = Solver(proof=store)
            alive = all(solver.add_clause(c) for c in clauses)
            if alive:
                assert solver.solve().status is UNSAT
            check_rup_proof(store, axioms=clauses)

    @pytest.mark.parametrize("seed", range(3))
    def test_trimmed_proofs_still_check(self, seed):
        for clauses in random_unsat_instances(6, 90 + seed):
            store = ProofStore()
            solver = Solver(proof=store)
            alive = all(solver.add_clause(c) for c in clauses)
            if alive:
                solver.solve()
            trimmed, _ = trim(store)
            result = check_proof(trimmed, axioms=clauses)
            assert result.empty_clause_id is not None


class TestAxiomRegistration:
    def test_every_original_clause_is_axiom(self):
        store = ProofStore()
        solver = Solver(proof=store)
        clauses = [[1, 2], [-1, 2], [1, -2], [-1, -2]]
        for clause in clauses:
            solver.add_clause(clause)
        axioms = {
            store.clause(cid)
            for cid in store.ids()
            if store.kind(cid) == AXIOM
        }
        assert axioms == {tuple(sorted(c)) for c in clauses}

    def test_learned_clauses_are_derived(self):
        store = ProofStore()
        solver = Solver(proof=store)
        for clause in [[1, 2], [-1, 2], [1, -2], [-1, -2]]:
            solver.add_clause(clause)
        solver.solve()
        stats = proof_stats(store)
        assert stats.num_derived >= 1
        assert stats.num_axioms == 4


class TestProofWithClauseDeletion:
    def test_deleted_learned_clauses_stay_in_proof(self):
        """Aggressive DB reduction must not invalidate the final proof."""
        store = ProofStore()
        solver = Solver(proof=store, restart_base=10)
        solver._max_learnts = 1  # force constant reduction pressure
        clauses = []
        var = lambda p, h: p * 6 + h + 1
        for p in range(7):
            clauses.append([var(p, h) for h in range(6)])
        for h in range(6):
            for p1 in range(7):
                for p2 in range(p1 + 1, 7):
                    clauses.append([-var(p1, h), -var(p2, h)])
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve().status is UNSAT
        assert solver.stats.deleted > 0, "reduction never fired"
        result = check_proof(store, axioms=clauses)
        assert result.empty_clause_id is not None


class TestMinimizationProofs:
    def test_minimized_learned_clauses_replay(self):
        """Clause minimization removes literals; chains must stay exact."""
        store = ProofStore(validate=True)  # validate catches bad chains
        solver = Solver(proof=store)
        rng = random.Random(7)
        clauses = []
        for _ in range(60):
            variables = rng.sample(range(1, 12), 3)
            clauses.append(
                [v if rng.random() < 0.5 else -v for v in variables]
            )
        alive = all(solver.add_clause(c) for c in clauses)
        if alive:
            solver.solve()
        # Either verdict is fine; validation already ran on every chain.
        check_proof(store, require_empty=False)

    def test_minimization_counter_moves_eventually(self):
        total = 0
        for seed in range(30):
            store = ProofStore(validate=True)
            solver = Solver(proof=store)
            rng = random.Random(seed)
            for _ in range(80):
                variables = rng.sample(range(1, 14), 3)
                if not solver.add_clause(
                    [v if rng.random() < 0.5 else -v for v in variables]
                ):
                    break
            else:
                solver.solve()
            total += solver.stats.minimized_literals
        assert total > 0
