"""Command-line interface: ``repro-lint``.

Run the static analysis passes over proofs, netlists, or the codebase::

    repro-lint proof trace.tc --cnf formula.cnf
    repro-lint proof refutation.drup --format drup
    repro-lint aig a.aag b.aag
    repro-lint miter a.aag b.aag
    repro-lint code
    repro-lint concurrency src/repro
    repro-lint schema src/repro

Every run prints its findings (one line each, ``[rule] severity:
message``), a summary, and optionally writes the full ``repro-lint/1``
JSON report with ``--json``. ``code`` runs every codebase pass (AST
rules, concurrency hazards, schema drift); ``concurrency`` and
``schema`` run one pass alone.

Exit codes follow :mod:`repro.exit_codes`: 0 = no error-severity
findings, 1 = error findings, 3 = invalid input (I/O or usage error,
including unparseable command lines).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from .. import __version__
from ..cnf.clause import CNF
from ..cnf.dimacs import DimacsError, read_dimacs
from ..exit_codes import EXIT_INVALID_INPUT, EXIT_NEGATIVE, EXIT_OK
from ..cnf.tseitin import tseitin_encode
from .aig_lint import lint_aig, lint_encoding, lint_miter
from .ast_rules import lint_package
from .findings import Finding, LintReport
from .proof_lint import (
    DEFAULT_FINDING_LIMIT,
    lint_drup_file,
    lint_tracecheck_file,
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--json", metavar="PATH",
        help="write the repro-lint/1 JSON report to PATH",
    )
    common.add_argument(
        "--quiet", action="store_true",
        help="print only error-severity findings",
    )
    common.add_argument(
        "--max-findings", type=int, default=DEFAULT_FINDING_LIMIT,
        metavar="N",
        help="cap error/warning findings per pass (default %d)"
        % DEFAULT_FINDING_LIMIT,
    )
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static proof, netlist, and codebase linting",
    )
    parser.add_argument(
        "--version", action="version", version="%(prog)s " + __version__,
    )
    sub = parser.add_subparsers(dest="command", required=True)
    proof = sub.add_parser(
        "proof", parents=[common],
        help="lint a resolution proof without replaying it",
    )
    proof.add_argument("trace", help="proof file (TraceCheck or DRUP)")
    proof.add_argument(
        "--cnf", metavar="FILE",
        help="DIMACS formula the proof claims to refute (enables axiom "
        "membership and variable-bound checks)",
    )
    proof.add_argument(
        "--format", choices=("tracecheck", "drup"), default="tracecheck",
        help="proof file format (default: tracecheck)",
    )
    proof.add_argument(
        "--allow-no-refutation", action="store_true",
        help="do not require the proof to derive the empty clause",
    )
    aig = sub.add_parser(
        "aig", parents=[common], help="lint AIGER netlists",
    )
    aig.add_argument("files", nargs="+", help="AIGER files (.aag/.aig)")
    miter = sub.add_parser(
        "miter", parents=[common],
        help="build the miter of two circuits and lint it plus its "
        "Tseitin encoding",
    )
    miter.add_argument("file_a", help="first circuit (AIGER)")
    miter.add_argument("file_b", help="second circuit (AIGER)")
    miter.add_argument(
        "--match-names", action="store_true",
        help="match interfaces by port names instead of position",
    )
    code = sub.add_parser(
        "code", parents=[common],
        help="run every codebase pass (AST rules, concurrency hazards, "
        "schema drift) over Python sources",
    )
    code.add_argument(
        "path", nargs="?", default=None,
        help="package directory (default: the installed repro package)",
    )
    concurrency = sub.add_parser(
        "concurrency", parents=[common],
        help="run the concurrency-hazard rules over Python sources",
    )
    concurrency.add_argument(
        "path", nargs="?", default=None,
        help="package directory (default: the installed repro package)",
    )
    schema = sub.add_parser(
        "schema", parents=[common],
        help="run the schema-drift rules against the declarative "
        "registry (repro.analyze.schemas)",
    )
    schema.add_argument(
        "path", nargs="?", default=None,
        help="package directory (default: the installed repro package)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point. Returns the process exit code."""
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors and 0 on --help/--version;
        # fold the former onto the repo-wide invalid-input code.
        return EXIT_OK if not exc.code else EXIT_INVALID_INPUT
    report = LintReport()
    report.meta["tool"] = "repro-lint"
    report.meta["command"] = args.command
    try:
        if args.command == "proof":
            _run_proof(args, report)
        elif args.command == "aig":
            _run_aig(args, report)
        elif args.command == "miter":
            _run_miter(args, report)
        elif args.command == "concurrency":
            _run_concurrency(args, report)
        elif args.command == "schema":
            _run_schema(args, report)
        else:
            _run_code(args, report)
    except (OSError, DimacsError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return EXIT_INVALID_INPUT
    for finding in report.findings:
        if args.quiet and finding.severity != "error":
            continue
        print(finding.render())
    summary = report.summary()
    print(
        "repro-lint: %d errors, %d warnings, %d info"
        % (summary["error"], summary["warning"], summary["info"])
    )
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.report(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return EXIT_OK if report.ok() else EXIT_NEGATIVE


def _run_proof(args: argparse.Namespace, report: LintReport) -> None:
    cnf: Optional[CNF] = None
    start = time.perf_counter()
    if args.cnf:
        cnf = read_dimacs(args.cnf)
        report.meta["cnf"] = args.cnf
    report.meta["proof"] = args.trace
    report.meta["format"] = args.format
    if args.format == "drup":
        findings = lint_drup_file(
            args.trace, cnf=cnf, limit=args.max_findings,
        )
    else:
        findings = lint_tracecheck_file(
            args.trace, cnf=cnf,
            require_empty=not args.allow_no_refutation,
            limit=args.max_findings,
        )
    report.extend("proof", findings, time.perf_counter() - start)


def _run_aig(args: argparse.Namespace, report: LintReport) -> None:
    from ..aig.aiger import read_auto

    report.meta["files"] = list(args.files)
    start = time.perf_counter()
    findings: List[Finding] = []
    for path in args.files:
        findings.extend(lint_aig(read_auto(path), name=path))
    report.extend("aig", findings, time.perf_counter() - start)


def _run_miter(args: argparse.Namespace, report: LintReport) -> None:
    from ..aig.aiger import read_auto
    from ..aig.miter import build_miter

    report.meta["files"] = [args.file_a, args.file_b]
    start = time.perf_counter()
    miter = build_miter(
        read_auto(args.file_a), read_auto(args.file_b),
        match_names=args.match_names,
    )
    report.extend("aig", lint_miter(miter), time.perf_counter() - start)
    start = time.perf_counter()
    encoding = tseitin_encode(miter.aig)
    report.extend(
        "cnf", lint_encoding(miter.aig, encoding),
        time.perf_counter() - start,
    )


def _run_code(args: argparse.Namespace, report: LintReport) -> None:
    start = time.perf_counter()
    report.meta["path"] = args.path or "repro"
    report.extend(
        "code", lint_package(args.path), time.perf_counter() - start,
    )
    _run_concurrency(args, report)
    _run_schema(args, report)


def _run_concurrency(args: argparse.Namespace, report: LintReport) -> None:
    from .concurrency import lint_package as lint_concurrency

    start = time.perf_counter()
    report.meta["path"] = args.path or "repro"
    report.extend(
        "concurrency", lint_concurrency(args.path),
        time.perf_counter() - start,
    )


def _run_schema(args: argparse.Namespace, report: LintReport) -> None:
    from .schema_drift import lint_package as lint_schema

    start = time.perf_counter()
    report.meta["path"] = args.path or "repro"
    report.extend(
        "schema", lint_schema(args.path), time.perf_counter() - start,
    )


if __name__ == "__main__":
    sys.exit(main())
