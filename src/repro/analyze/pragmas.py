"""Inline waiver pragmas for codebase lint rules.

A finding anchored to a source line can be waived in place::

    self._cursor = None  # repro-lint: ignore[concurrency.unguarded-mutation]

The bracket takes a comma-separated list of rule ids; a bare
``# repro-lint: ignore`` waives every rule on that line. Waivers are
deliberately line-scoped and rule-explicit — a pragma is a reviewed
claim that one specific hazard is a false positive (or is mitigated in
a way the analysis cannot see), not a file-wide mute. Waived findings
are dropped from the report; passes may record how many they dropped
so a clean run still discloses its waivers.

Only the *codebase* passes (:mod:`repro.analyze.ast_rules`,
:mod:`repro.analyze.concurrency`, :mod:`repro.analyze.schema_drift`)
honor pragmas; proof and netlist findings describe artifacts, not
lines, and cannot be waived.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Set, Tuple

from .findings import Finding

#: Matches one pragma comment; group 1 is the bracket body (absent for
#: the bare form).
_PRAGMA = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[([A-Za-z0-9_.,\s-]*)\])?"
)

#: Waiver entry meaning "every rule".
ALL_RULES = "*"


def parse_waivers(source: str) -> Dict[int, Set[str]]:
    """Map 1-based line numbers to the rule ids waived on them.

    The bare form maps to ``{"*"}``. Pragmas inside string literals are
    matched too — the scan is textual — which is harmless: a waiver
    only ever *removes* findings, and only on its own line.
    """
    waivers: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if match is None:
            continue
        body = match.group(1)
        if body is None:
            waivers[lineno] = {ALL_RULES}
        else:
            rules = {part.strip() for part in body.split(",") if part.strip()}
            waivers[lineno] = rules or {ALL_RULES}
    return waivers


def is_waived(finding: Finding, waivers: Dict[int, Set[str]]) -> bool:
    """True when *finding* is covered by a pragma on its line."""
    if finding.line is None:
        return False
    rules = waivers.get(finding.line)
    if rules is None:
        return False
    return ALL_RULES in rules or finding.rule_id in rules


def apply_waivers(
    findings: Iterable[Finding], source: str,
) -> Tuple[List[Finding], List[Finding]]:
    """Split *findings* into ``(kept, waived)`` under *source*'s pragmas."""
    waivers = parse_waivers(source)
    kept: List[Finding] = []
    waived: List[Finding] = []
    for finding in findings:
        (waived if is_waived(finding, waivers) else kept).append(finding)
    return kept, waived
