"""Semantic tests for the extended generator set."""

import random

import pytest

from repro.circuits import (
    binary_to_gray,
    carry_skip_adder,
    conditional_sum_adder,
    dadda_multiplier,
    decoder,
    gray_to_binary,
    popcount,
    priority_encoder,
    ripple_carry_adder,
    wallace_multiplier,
)

from conftest import bits_of, word_of


class TestMoreAdders:
    @pytest.mark.parametrize(
        "make", [carry_skip_adder, conditional_sum_adder],
        ids=lambda f: f.__name__,
    )
    @pytest.mark.parametrize("width", [1, 2, 3, 5, 8])
    def test_exhaustive_small_random_large(self, make, width):
        aig = make(width)
        rng = random.Random(width)
        cases = (
            [(a, b) for a in range(1 << width) for b in range(1 << width)]
            if width <= 3
            else [
                (rng.randrange(1 << width), rng.randrange(1 << width))
                for _ in range(150)
            ]
        )
        for a, b in cases:
            got = word_of(
                aig.evaluate(bits_of(a, width) + bits_of(b, width))
            )
            assert got == a + b

    def test_carry_skip_blocks(self):
        for block in (1, 2, 3, 5):
            aig = carry_skip_adder(6, block=block)
            rng = random.Random(block)
            for _ in range(60):
                a, b = rng.randrange(64), rng.randrange(64)
                got = word_of(aig.evaluate(bits_of(a, 6) + bits_of(b, 6)))
                assert got == a + b

    def test_structures_differ(self):
        from repro.aig import build_miter

        rc = ripple_carry_adder(8)
        cs = carry_skip_adder(8)
        miter = build_miter(rc, cs)
        assert miter.aig.num_ands > max(rc.num_ands, cs.num_ands)


class TestDadda:
    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_exhaustive(self, width):
        aig = dadda_multiplier(width)
        for a in range(1 << width):
            for b in range(1 << width):
                got = word_of(
                    aig.evaluate(bits_of(a, width) + bits_of(b, width))
                )
                assert got == a * b

    def test_differs_from_wallace(self):
        from repro.aig import build_miter

        dadda = dadda_multiplier(4)
        wallace = wallace_multiplier(4)
        miter = build_miter(dadda, wallace)
        assert miter.aig.num_ands > max(dadda.num_ands, wallace.num_ands)


class TestPriorityEncoder:
    @pytest.mark.parametrize("width", [1, 2, 3, 5, 9])
    def test_semantics(self, width):
        aig = priority_encoder(width)
        space = range(1 << width) if width <= 9 else []
        for value in space:
            outputs = aig.evaluate(bits_of(value, width))
            valid = outputs[-1]
            index = word_of(outputs[:-1])
            if value == 0:
                assert (valid, index) == (0, 0)
            else:
                expected = max(k for k in range(width) if (value >> k) & 1)
                assert (valid, index) == (1, expected)


class TestDecoder:
    @pytest.mark.parametrize("select_bits", [1, 2, 3])
    def test_one_hot(self, select_bits):
        aig = decoder(select_bits)
        for value in range(1 << select_bits):
            outputs = aig.evaluate(bits_of(value, select_bits))
            assert outputs == [
                1 if k == value else 0 for k in range(1 << select_bits)
            ]

    def test_enable_gates_everything(self):
        aig = decoder(2, enable=True)
        for value in range(4):
            assert aig.evaluate(bits_of(value, 2) + [0]) == [0, 0, 0, 0]
            hot = aig.evaluate(bits_of(value, 2) + [1])
            assert hot[value] == 1


class TestGrayCodes:
    @pytest.mark.parametrize("width", [1, 2, 4, 6])
    def test_binary_to_gray(self, width):
        aig = binary_to_gray(width)
        for value in range(1 << width):
            got = word_of(aig.evaluate(bits_of(value, width)))
            assert got == value ^ (value >> 1)

    @pytest.mark.parametrize("width", [1, 2, 4, 6])
    def test_roundtrip(self, width):
        b2g = binary_to_gray(width)
        g2b = gray_to_binary(width)
        for value in range(1 << width):
            gray = b2g.evaluate(bits_of(value, width))
            assert word_of(g2b.evaluate(gray)) == value

    def test_gray_neighbors_differ_by_one_bit(self):
        aig = binary_to_gray(5)
        previous = None
        for value in range(32):
            gray = word_of(aig.evaluate(bits_of(value, 5)))
            if previous is not None:
                assert bin(gray ^ previous).count("1") == 1
            previous = gray


class TestPopcount:
    @pytest.mark.parametrize("width", [1, 2, 5, 9])
    def test_counts(self, width):
        aig = popcount(width)
        for value in range(1 << width):
            got = word_of(aig.evaluate(bits_of(value, width)))
            assert got == bin(value).count("1")

    def test_output_width(self):
        assert popcount(7).num_outputs == 3 + 1  # word grows by carries


class TestNewPairsCheck:
    """The new architecture pairs must actually be equivalent."""

    def test_carry_skip_vs_ripple(self):
        from repro import check_equivalence

        result = check_equivalence(
            ripple_carry_adder(8), carry_skip_adder(8)
        )
        assert result.equivalent is True

    def test_conditional_sum_vs_ripple(self):
        from repro import check_equivalence

        result = check_equivalence(
            ripple_carry_adder(8), conditional_sum_adder(8)
        )
        assert result.equivalent is True

    def test_dadda_vs_wallace(self):
        from repro import certify, check_equivalence

        result = check_equivalence(
            dadda_multiplier(4), wallace_multiplier(4)
        )
        assert result.equivalent is True
        certify(result)
