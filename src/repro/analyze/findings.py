"""Structured lint findings and the ``repro-lint/1`` report schema.

Every analysis pass in :mod:`repro.analyze` emits :class:`Finding`
objects — never free-form strings — so results are machine-consumable:
the ``repro-lint`` CLI serializes them into a stable JSON document
(schema tag ``repro-lint/1``, following the same conventions as the
``repro-stats/1`` schema in :mod:`repro.instrument.recorder`), and the
certify pipeline's fast-reject path filters them by severity.

Severity policy (documented in ``docs/static-analysis.md``):

* ``error`` — the artifact is structurally invalid; full replay is
  guaranteed (proof rules) or overwhelmingly likely (netlist rules) to
  fail. Error findings make ``repro-lint`` exit nonzero and make
  ``certify(lint=True)`` reject without replaying.
* ``warning`` — suspicious but not invalidating (duplicate clauses,
  strashing misses). Reported, never fatal.
* ``info`` — accounting (dead-clause counts, structure reports).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from .schemas import LINT_SCHEMA as LINT_SCHEMA  # re-export (registry)

ERROR = "error"
WARNING = "warning"
INFO = "info"

SEVERITIES = (ERROR, WARNING, INFO)


class Finding:
    """One lint finding.

    Attributes:
        rule_id: stable machine-readable rule identifier (e.g.
            ``"proof.forward-ref"``; the full catalogue is in
            ``docs/static-analysis.md``).
        severity: ``"error"``, ``"warning"`` or ``"info"``.
        message: human-readable description.
        clause_id: offending proof clause id, when attributable.
        file: source file for codebase rules (repo-relative path).
        line: 1-based source line for codebase rules.
        data: optional extra machine-readable context (JSON-serializable).
    """

    __slots__ = ("rule_id", "severity", "message", "clause_id", "file",
                 "line", "data")

    def __init__(
        self,
        rule_id: str,
        severity: str,
        message: str,
        clause_id: Optional[int] = None,
        file: Optional[str] = None,
        line: Optional[int] = None,
        data: Optional[Dict[str, Any]] = None,
    ) -> None:
        if severity not in SEVERITIES:
            raise ValueError("unknown severity %r" % (severity,))
        self.rule_id = rule_id
        self.severity = severity
        self.message = message
        self.clause_id = clause_id
        self.file = file
        self.line = line
        self.data = data

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready dict; optional fields are omitted when unset."""
        record: Dict[str, Any] = {
            "rule_id": self.rule_id,
            "severity": self.severity,
            "message": self.message,
        }
        if self.clause_id is not None:
            record["clause_id"] = self.clause_id
        if self.file is not None:
            record["file"] = self.file
        if self.line is not None:
            record["line"] = self.line
        if self.data is not None:
            record["data"] = self.data
        return record

    def render(self) -> str:
        """One-line rendering matching ``ProofError.render``'s shape."""
        location = ""
        if self.file is not None:
            location = " %s:%s" % (self.file, self.line or 0)
        elif self.clause_id is not None:
            location = " (clause %d)" % self.clause_id
        return "[%s] %s: %s%s" % (
            self.rule_id, self.severity, self.message, location,
        )

    def __repr__(self) -> str:
        return "Finding(%r, %r, %r)" % (
            self.rule_id, self.severity, self.message,
        )


class LintReport:
    """Aggregate outcome of one or more lint passes.

    Attributes:
        findings: all findings in emission order.
        passes: names of the analysis passes that ran (``"proof"``,
            ``"aig"``, ``"cnf"``, ``"code"``).
        meta: free-form context (target paths, tool name), mirroring the
            ``meta`` block of ``repro-stats/1``.
    """

    def __init__(self) -> None:
        self.findings: List[Finding] = []
        self.passes: List[str] = []
        self.meta: Dict[str, Any] = {}
        self._elapsed = 0.0

    def extend(self, pass_name: str, findings: Iterable[Finding],
               seconds: float = 0.0) -> None:
        """Record the findings of one completed pass."""
        if pass_name not in self.passes:
            self.passes.append(pass_name)
        self.findings.extend(findings)
        self._elapsed += seconds

    def by_severity(self, severity: str) -> List[Finding]:
        """Findings filtered to one severity."""
        return [f for f in self.findings if f.severity == severity]

    @property
    def num_errors(self) -> int:
        """Number of error-severity findings."""
        return sum(1 for f in self.findings if f.severity == ERROR)

    def ok(self) -> bool:
        """True when no error-severity finding was recorded."""
        return self.num_errors == 0

    def summary(self) -> Dict[str, Any]:
        """Severity and per-rule counts."""
        by_rule: Dict[str, int] = {}
        by_severity = {ERROR: 0, WARNING: 0, INFO: 0}
        for finding in self.findings:
            by_severity[finding.severity] += 1
            by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
        return {
            "error": by_severity[ERROR],
            "warning": by_severity[WARNING],
            "info": by_severity[INFO],
            "rules": dict(sorted(by_rule.items())),
        }

    def report(self) -> Dict[str, Any]:
        """Serialize to the stable ``repro-lint/1`` dict schema."""
        return {
            "schema": LINT_SCHEMA,
            "elapsed_seconds": self._elapsed,
            "passes": list(self.passes),
            "findings": [finding.as_dict() for finding in self.findings],
            "summary": self.summary(),
            "meta": dict(self.meta),
        }


def validate_lint_report(report: Any) -> Dict[str, Any]:
    """Check *report* against the ``repro-lint/1`` schema.

    Raises ``ValueError`` with the first problem found; returns the
    report unchanged when valid. The counterpart of
    :func:`repro.instrument.recorder.validate_report`.
    """
    if not isinstance(report, dict):
        raise ValueError("report must be a dict")
    if report.get("schema") != LINT_SCHEMA:
        raise ValueError("bad schema tag %r" % (report.get("schema"),))
    for key in ("elapsed_seconds", "passes", "findings", "summary", "meta"):
        if key not in report:
            raise ValueError("missing top-level key %r" % key)
    if not isinstance(report["elapsed_seconds"], (int, float)):
        raise ValueError("elapsed_seconds must be a number")
    if not isinstance(report["passes"], list):
        raise ValueError("passes must be a list")
    counted = {ERROR: 0, WARNING: 0, INFO: 0}
    for entry in report["findings"]:
        for key in ("rule_id", "severity", "message"):
            if key not in entry:
                raise ValueError("finding missing key %r: %r" % (key, entry))
        if entry["severity"] not in SEVERITIES:
            raise ValueError("bad severity %r" % (entry["severity"],))
        counted[entry["severity"]] += 1
    summary = report["summary"]
    for severity in SEVERITIES:
        if summary.get(severity) != counted[severity]:
            raise ValueError(
                "summary count for %r is %r, findings say %d"
                % (severity, summary.get(severity), counted[severity])
            )
    if sum(summary["rules"].values()) != len(report["findings"]):
        raise ValueError("per-rule counts do not sum to the finding count")
    return report
