"""Resolution proof store.

A proof is a DAG of clauses. Leaves are *axioms* (clauses of the original
CNF). Internal nodes are *derived* clauses, each annotated with a linear
(trivial) resolution chain: a first antecedent followed by a sequence of
``(pivot variable, antecedent)`` steps. Trivial chains are exactly what
CDCL conflict analysis produces, and chaining them composes into general
resolution, so this representation loses no generality while keeping
checking simple and linear.

The store assigns dense integer ids. Ids are stable: deleting a clause from
a SAT solver's working set never removes it from the proof (the proof may
still reference it).

Example:
    >>> store = ProofStore()
    >>> a = store.add_axiom((1, 2))
    >>> b = store.add_axiom((-1, 2))
    >>> c = store.add_derived((2,), [a, (1, b)])
    >>> store.clause(c)
    (2,)
"""

from ..cnf.clause import normalize_clause

AXIOM = "axiom"
DERIVED = "derived"


class ProofError(Exception):
    """Raised when a proof object or derivation is invalid.

    Attributes:
        clause_id: id of the offending clause when the failure is
            attributable to one (``None`` otherwise). The parallel
            checker uses it to report the *smallest* failing id, making
            its error deterministic and identical to the sequential
            checker's.
    """

    def __init__(self, message, clause_id=None):
        Exception.__init__(self, message)
        self.clause_id = clause_id


def resolve(clause_a, clause_b, pivot_var):
    """Resolve two clauses on *pivot_var*.

    One clause must contain ``pivot_var`` positively and the other
    negatively; the resolvent is the union minus the pivot literals.

    Raises:
        ProofError: when the pivot does not occur with opposite phases, or
            the resolvent is tautological (a sign of a malformed chain).
    """
    if pivot_var in clause_a and -pivot_var in clause_b:
        pos, neg = clause_a, clause_b
    elif pivot_var in clause_b and -pivot_var in clause_a:
        pos, neg = clause_b, clause_a
    else:
        raise ProofError(
            "pivot %d does not occur with opposite phases in %r and %r"
            % (pivot_var, clause_a, clause_b)
        )
    merged = set(pos)
    merged.discard(pivot_var)
    for lit in neg:
        if lit != -pivot_var:
            merged.add(lit)
    for lit in merged:
        if -lit in merged:
            raise ProofError(
                "tautological resolvent on pivot %d from %r and %r"
                % (pivot_var, clause_a, clause_b)
            )
    return tuple(sorted(merged))


class ProofStore:
    """Container for one resolution proof under construction.

    Args:
        validate: when true, every :meth:`add_derived` replays its chain
            immediately and rejects mismatches. Slower; intended for tests
            and debugging. The independent checker in
            :mod:`repro.proof.checker` performs the same replay after the
            fact regardless of this flag.
        recorder: optional :class:`~repro.instrument.recorder.Recorder`;
            the store counts every appended clause (axiom/derived split
            and resolution-step totals) into the ``proof/*`` counter
            namespace as it grows.
    """

    def __init__(self, validate=False, recorder=None):
        self.validate = validate
        self.recorder = recorder
        self._clauses = []
        self._kinds = []
        self._chains = []
        self._axiom_ids = {}
        # O(1) growth counters; stores reach 1e5-1e6 clauses on the
        # larger benchmarks, so nothing here may rescan the clause list.
        self._num_axioms = 0
        self._num_derived = 0
        self._num_resolutions = 0
        self._empty_id = None

    def __len__(self):
        return len(self._clauses)

    @property
    def num_axioms(self):
        """Number of axiom clauses."""
        return self._num_axioms

    @property
    def num_derived(self):
        """Number of derived clauses."""
        return self._num_derived

    @property
    def num_resolutions(self):
        """Total resolution steps across all derivation chains."""
        return self._num_resolutions

    def clause(self, clause_id):
        """The clause tuple stored under *clause_id*."""
        return self._clauses[clause_id]

    def kind(self, clause_id):
        """``'axiom'`` or ``'derived'``."""
        return self._kinds[clause_id]

    def chain(self, clause_id):
        """The derivation chain of a derived clause (``None`` for axioms).

        A chain is ``[first_id, (pivot1, id1), (pivot2, id2), ...]``.
        """
        return self._chains[clause_id]

    def ids(self):
        """Iterate all clause ids in insertion (derivation) order."""
        return range(len(self._clauses))

    def add_axiom(self, lits):
        """Register an axiom clause and return its id.

        Re-registering an identical axiom returns the existing id, so the
        CNF-loading code can be called idempotently.
        """
        clause = normalize_clause(lits)
        existing = self._axiom_ids.get(clause)
        if existing is not None:
            return existing
        clause_id = self._append(clause, AXIOM, None)
        self._axiom_ids[clause] = clause_id
        return clause_id

    def add_derived(self, lits, chain):
        """Register a derived clause with its resolution chain.

        Args:
            lits: the clause literals.
            chain: ``[first_id, (pivot, id), ...]`` — at least one
                resolution step.

        Returns:
            The new clause id.
        """
        clause = tuple(sorted(set(lits)))
        chain = list(chain)
        if len(chain) < 2:
            raise ProofError("derivation chain needs at least two antecedents")
        first = chain[0]
        if not isinstance(first, int):
            raise ProofError("chain must start with a clause id")
        for step in chain[1:]:
            if not (isinstance(step, tuple) and len(step) == 2):
                raise ProofError("chain steps must be (pivot, id) pairs")
        next_id = len(self._clauses)
        for ref in self._chain_refs(chain):
            if not 0 <= ref < next_id:
                raise ProofError(
                    "chain references clause %d not yet derived" % ref
                )
        if self.validate:
            replayed = self.replay_chain(chain)
            if replayed != clause:
                raise ProofError(
                    "chain replays to %r, not the claimed %r" % (replayed, clause)
                )
        return self._append(clause, DERIVED, chain)

    def replay_chain(self, chain):
        """Replay a chain and return the resulting clause."""
        current = self._clauses[chain[0]]
        for pivot, clause_id in chain[1:]:
            current = resolve(current, self._clauses[clause_id], pivot)
        return current

    def _append(self, clause, kind, chain):
        clause_id = len(self._clauses)
        if chain is not None:
            for ref in self._chain_refs(chain):
                if not 0 <= ref < clause_id:
                    raise ProofError(
                        "chain references clause %d not yet derived" % ref
                    )
        self._clauses.append(clause)
        self._kinds.append(kind)
        self._chains.append(chain)
        if kind == AXIOM:
            self._num_axioms += 1
        else:
            self._num_derived += 1
            self._num_resolutions += len(chain) - 1
        if not clause and self._empty_id is None:
            self._empty_id = clause_id
        recorder = self.recorder
        if recorder is not None and recorder.enabled:
            recorder.count("proof/clauses")
            if kind == AXIOM:
                recorder.count("proof/axioms")
            else:
                recorder.count("proof/derived")
                recorder.count("proof/resolutions", len(chain) - 1)
        return clause_id

    @staticmethod
    def _chain_refs(chain):
        yield chain[0]
        for _, clause_id in chain[1:]:
            yield clause_id

    def antecedents(self, clause_id):
        """Ids referenced by the derivation of *clause_id* (empty for axioms)."""
        chain = self._chains[clause_id]
        if chain is None:
            return ()
        return tuple(self._chain_refs(chain))

    def find_empty_clause(self):
        """Id of the first empty clause, or ``None``.

        O(1): the id is cached at :meth:`_append` time rather than
        rescanning the clause list (which reaches 10^5-10^6 entries on
        the larger benchmarks) on every call.
        """
        return self._empty_id

    def derive_resolvent(self, id_a, id_b, pivot_var):
        """Resolve two stored clauses and record the result. Returns the id."""
        clause = resolve(self._clauses[id_a], self._clauses[id_b], pivot_var)
        return self._append(clause, DERIVED, [id_a, (pivot_var, id_b)])
