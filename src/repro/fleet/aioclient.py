"""Asyncio client for ``repro-service/1`` / ``repro-fleet/1`` sockets.

The router talks to its backend shards with this client: same line-
JSON protocol as :class:`repro.service.client.ServiceClient`, but
non-blocking, so one event loop multiplexes health pings, cache
probes, and forwarded jobs across the whole fleet. The benchmark load
generator reuses it as a many-clients driver.

One connection carries one request pipeline at a time (responses have
no request ids, so interleaving two requests on a socket would
scramble their replies). The router therefore opens a connection per
forwarded request; this client keeps that cheap by connecting lazily
and exposing an async context manager.

Failures keep the :class:`~repro.service.client.ServiceError` /
``OSError`` split of the synchronous client: protocol-level ``ok:
false`` responses raise ``ServiceError`` (they are answers), transport
problems raise ``OSError`` subclasses (the caller decides whether
re-sending is replay-safe).
"""

import asyncio

from ..service import protocol
from ..service.client import ServiceError

DEFAULT_TIMEOUT = 60.0


class AsyncServiceClient:
    """One asyncio connection to a shard (or to the router itself).

    Args:
        address: ``host:port`` or Unix socket path.
        timeout: seconds allowed for the connect and for each response
            line. Heartbeats during a blocking ``result`` wait reset
            the clock, so the timeout bounds silence, not job runtime.
    """

    def __init__(self, address, timeout=DEFAULT_TIMEOUT):
        self.address = address
        self.family, self.target = protocol.parse_address(address)
        self.timeout = timeout
        self._reader = None
        self._writer = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    async def connect(self):
        """Open the connection (idempotent); returns self."""
        if self._writer is not None:
            return self
        # The stream limit must admit a whole protocol line: requests
        # embed AIGER texts and responses whole proofs, far beyond the
        # 64 KiB asyncio default.
        if self.family == "unix":
            opening = asyncio.open_unix_connection(
                self.target, limit=protocol.MAX_LINE_BYTES + 1,
            )
        else:
            host, port = self.target
            opening = asyncio.open_connection(
                host, port, limit=protocol.MAX_LINE_BYTES + 1,
            )
        self._reader, self._writer = await asyncio.wait_for(
            opening, self.timeout,
        )
        return self

    async def close(self):
        """Drop the connection (idempotent)."""
        writer = self._writer
        self._reader = None
        self._writer = None
        if writer is None:
            return
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, asyncio.TimeoutError):
            pass

    async def __aenter__(self):
        await self.connect()
        return self

    async def __aexit__(self, *exc_info):
        await self.close()

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    async def request(self, message, on_update=None, raise_on_error=True):
        """Send one request; return the final response object.

        Non-final (heartbeat) responses go to *on_update* (which may
        be a coroutine function) and are never returned. With
        *raise_on_error* (the default) an ``ok: false`` final response
        raises :class:`ServiceError`; the router disables that and
        relays failure envelopes verbatim instead.
        """
        await self.connect()
        self._writer.write(protocol.encode(message))
        await asyncio.wait_for(self._writer.drain(), self.timeout)
        while True:
            line = await asyncio.wait_for(
                self._reader.readline(), self.timeout,
            )
            if not line:
                raise ConnectionError(
                    "%s closed the connection mid-request" % self.address
                )
            response = protocol.decode(line)
            if not response.get("final", True):
                if on_update is not None:
                    outcome = on_update(response)
                    if asyncio.iscoroutine(outcome):
                        await outcome
                continue
            if raise_on_error and not response.get("ok"):
                raise ServiceError(response)
            return response

    # ------------------------------------------------------------------
    # Verb helpers (the subset the router and the bench driver need)
    # ------------------------------------------------------------------

    async def ping(self):
        """Server identity block (liveness probe)."""
        return await self.request({"verb": "ping"})

    async def submit(self, aag_a, aag_b, **fields):
        """Submit one check; extra *fields* ride the request as-is."""
        message = {"verb": "submit", "aag_a": aag_a, "aag_b": aag_b}
        message.update(fields)
        return await self.request(message)

    async def result(self, job_id, wait=False, timeout=None,
                     on_update=None):
        """Result of a job, optionally blocking until terminal."""
        message = {"verb": "result", "job": job_id, "wait": wait}
        if timeout is not None:
            message["timeout"] = timeout
        return await self.request(message, on_update=on_update)

    async def cache_probe(self, key):
        """Metadata probe: ``(found, meta)`` without the document."""
        response = await self.request({"verb": "cache", "key": key})
        return bool(response.get("found")), response.get("meta")

    async def cache_get(self, key):
        """Fetch the stored result document: ``(result, meta)``."""
        response = await self.request({"verb": "cache-get", "key": key})
        if not response.get("found"):
            return None, None
        return response.get("result"), response.get("meta")

    async def cache_put(self, key, result, meta=None):
        """Install a result document under *key*; True when written."""
        message = {"verb": "cache-put", "key": key, "result": result}
        if meta is not None:
            message["meta"] = meta
        response = await self.request(message)
        return bool(response.get("stored"))
