"""Resolution proofs: store, checkers, trimming, statistics, DRUP."""

from .compress import lower_units
from .checker import CheckResult, check_clause, check_proof, \
    check_refutation_of
from .drup import check_rup_proof, write_drup
from .parallel import check_proof_parallel
from .interpolant import Interpolant, InterpolationError, interpolate, \
    partition_vars
from .stats import ProofStats, proof_stats
from .store import AXIOM, DERIVED, ProofError, ProofStore, resolve
from .tracecheck import dumps_tracecheck, parse_tracecheck, \
    read_tracecheck, write_tracecheck
from .trim import levelize, needed_ids, trim, trim_ratio

__all__ = [
    "AXIOM",
    "CheckResult",
    "DERIVED",
    "Interpolant",
    "InterpolationError",
    "ProofError",
    "ProofStats",
    "ProofStore",
    "check_clause",
    "check_proof",
    "check_proof_parallel",
    "check_refutation_of",
    "check_rup_proof",
    "dumps_tracecheck",
    "levelize",
    "lower_units",
    "interpolate",
    "needed_ids",
    "parse_tracecheck",
    "partition_vars",
    "proof_stats",
    "read_tracecheck",
    "resolve",
    "trim",
    "trim_ratio",
    "write_drup",
    "write_tracecheck",
]
