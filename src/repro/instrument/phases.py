"""Registry of instrumentation phase names.

Every literal phase name passed to
:meth:`~repro.instrument.recorder.Recorder.phase` or
:meth:`~repro.instrument.recorder.Recorder.add_time` anywhere in
``src/repro`` must be registered here. The custom AST lint rule
``code.phase-registry`` (see :mod:`repro.analyze.ast_rules`) enforces
this, which keeps the ``repro-stats/1`` phase namespace a closed,
documented set: dashboards and the benchmark harness can rely on phase
names without grepping the codebase.

Registering a name is a one-line addition below; the lint failure
message points here.
"""

from __future__ import annotations

from typing import FrozenSet

#: Closed set of phase-timer names appearing in ``repro-stats/1``
#: reports. Grouped by producing subsystem.
PHASE_REGISTRY: FrozenSet[str] = frozenset({
    # sat/solver.py
    "solver/solve",
    "solver/propagate",
    "solver/analyze",
    "solver/restart",
    # baselines/monolithic.py
    "monolithic/encode",
    "monolithic/load",
    "monolithic/solve",
    # proof/checker.py + proof/parallel.py + check_cli.py
    "check/read",
    "check/replay",
    "check/parallel-replay",
    # proof/trim.py
    "trim/cone",
    "trim/rebuild",
    # core/cec.py
    "cec/miter",
    "cec/sweep",
    "cec/conclude",
    # core/fraig.py
    "sweep/encode",
    "sweep/load",
    "sweep/sim",
    "sweep/strash",
    "sweep/sat",
    "sweep/total",
    "sweep/refine-batch",
    # analyze/* (static lint passes)
    "lint/read",
    "lint/proof",
    "lint/aig",
    "lint/cnf",
    "lint/code",
    # service/* (persistent CEC server, worker pool, proof cache)
    "service/job",
    "service/check",
    "service/certify",
    "service/trim",
    "service/queue-wait",
    "cache/lookup",
    "cache/store",
    # service client (one span/timer around a submitted request)
    "client/request",
    # fleet/router.py (front-door hop and cross-shard cache transfer)
    "fleet/route",
    "fleet/cache-transfer",
})


def is_registered(name: str) -> bool:
    """True when *name* is a registered phase name."""
    return name in PHASE_REGISTRY
