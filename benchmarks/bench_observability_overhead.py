"""Observability overhead benchmark: disabled instrumentation is free.

Runnable standalone (used by the CI service-smoke job) or under the
benchmark harness::

    PYTHONPATH=src python benchmarks/bench_observability_overhead.py \
        --out BENCH_observability.json
    PYTHONPATH=src python benchmarks/bench_observability_overhead.py \
        --small --out /tmp/b.json

Every hot path in the engine and the service takes a recorder and is
instrumented unconditionally; the opt-out is :data:`NULL_RECORDER`,
whose hooks are no-ops. The claim this benchmark defends: with
instrumentation *disabled* the hooks cost **under 3%** of a check's
runtime.

A bare, uninstrumented build does not exist to diff against, so the
disabled overhead is established two ways:

* **measured hook budget** — a counting proxy recorder tallies every
  hook invocation (``phase``/``count``/``gauge``/``add_time``/…) a
  full check makes; a microbenchmark prices one no-op hook call.
  ``calls x price / check_seconds`` bounds the disabled overhead.
  This is the asserted number: it is deterministic up to the
  microbenchmark, so it will not flake on a noisy CI box.
* **wall clock A/B** — the same workload is timed under
  ``NULL_RECORDER``, a default :class:`Recorder` (stats on), a
  tracing recorder (stats + spans), and a recorder with a
  default-cadence :class:`ProgressTracker` attached (stats + live
  heartbeats), interleaved round-robin with the minimum over rounds
  taken per configuration. Reported alongside so the *enabled* cost
  stays visible in the committed document.
"""

import argparse
import io
import json
import sys
import time
from contextlib import contextmanager

from repro.aig.aiger import write_aag
from repro.circuits import kogge_stone_adder, ripple_carry_adder
from repro.core.cec import check_equivalence
from repro.instrument import NULL_RECORDER, Recorder
from repro.instrument.progress import ProgressTracker

MAX_DISABLED_OVERHEAD = 0.03

# One no-op phase() round-trip priced over this many iterations.
MICROBENCH_CALLS = 50_000


class CountingNullRecorder:
    """Duck-typed recorder: behaves like NULL_RECORDER, counts hooks.

    Every hook invocation the engine makes on the disabled path is
    tallied in :attr:`calls`, so the benchmark knows exactly how many
    no-op calls a check performs.
    """

    enabled = False

    def __init__(self):
        self.calls = 0

    @contextmanager
    def phase(self, name):
        self.calls += 1
        yield

    def count(self, name, value=1):
        self.calls += 1

    def gauge(self, name, value):
        self.calls += 1

    def add_time(self, name, seconds, count=1):
        self.calls += 1

    def add_span(self, name, seconds, **fields):
        self.calls += 1

    def start_trace(self, context=None):
        self.calls += 1
        return None

    def report(self, budget=None):
        self.calls += 1
        return {}

    def __getattr__(self, name):
        # Any other hook (event, …): count the call, do nothing.
        def hook(*args, **kwargs):
            self.calls += 1
        return hook


def _aag(aig):
    buffer = io.StringIO()
    write_aag(aig, buffer)
    return buffer.getvalue()


def build_workload(small=False):
    """(aig_a, aig_b) pairs; parsed once, checked many times."""
    widths = (3, 4) if small else (4, 5, 6)
    return [
        (ripple_carry_adder(width), kogge_stone_adder(width))
        for width in widths
    ]


def _run_workload(workload, make_recorder):
    """One full pass: check every pair, return (seconds, recorders)."""
    recorders = []
    start = time.perf_counter()
    for aig_a, aig_b in workload:
        recorder = make_recorder()
        recorders.append(recorder)
        result = check_equivalence(aig_a, aig_b, recorder=recorder)
        assert result.equivalent is True
    return time.perf_counter() - start, recorders


def _tracing_recorder():
    recorder = Recorder()
    recorder.start_trace()
    return recorder


def _progress_recorder():
    """Stats plus a default-cadence heartbeat tracker.

    The sink discards documents so the benchmark prices the tracker's
    tick/emit machinery itself, not JSON serialization of a consumer.
    """
    recorder = Recorder()
    recorder.progress = ProgressTracker(lambda document: None)
    return recorder


CONFIGS = [
    ("disabled", lambda: NULL_RECORDER),
    ("stats", Recorder),
    ("tracing", _tracing_recorder),
    ("progress", _progress_recorder),
]


def measure_wall_clock(workload, rounds):
    """Interleaved A/B/C timing; min over rounds per configuration."""
    best = {name: float("inf") for name, _ in CONFIGS}
    for _ in range(rounds):
        for name, make_recorder in CONFIGS:
            seconds, _ = _run_workload(workload, make_recorder)
            best[name] = min(best[name], seconds)
    return best


def count_hook_calls(workload):
    """Hook invocations one pass makes on the disabled path."""
    counter = CountingNullRecorder()
    _, _ = _run_workload(workload, lambda: counter)
    return counter.calls


def price_null_hook():
    """Seconds per no-op phase() round-trip on NULL_RECORDER."""
    start = time.perf_counter()
    for _ in range(MICROBENCH_CALLS):
        with NULL_RECORDER.phase("bench/noop"):
            pass
    return (time.perf_counter() - start) / MICROBENCH_CALLS


def run(small=False, rounds=5):
    workload = build_workload(small=small)
    wall = measure_wall_clock(workload, rounds)
    hook_calls = count_hook_calls(workload)
    hook_price = price_null_hook()
    hook_seconds = hook_calls * hook_price
    disabled_overhead = hook_seconds / max(wall["disabled"], 1e-9)
    assert disabled_overhead < MAX_DISABLED_OVERHEAD, (
        "disabled instrumentation costs %.2f%% (budget %d calls x "
        "%.1f ns against %.4fs of work)" % (
            100 * disabled_overhead, hook_calls, 1e9 * hook_price,
            wall["disabled"],
        )
    )
    return {
        "bench": "observability-overhead",
        "mode": "small" if small else "full",
        "rounds": rounds,
        "checks_per_pass": len(workload),
        "wall_seconds": {k: round(v, 4) for k, v in wall.items()},
        "overhead_vs_disabled": {
            "stats": round(wall["stats"] / wall["disabled"] - 1.0, 4),
            "tracing": round(
                wall["tracing"] / wall["disabled"] - 1.0, 4
            ),
            "progress": round(
                wall["progress"] / wall["disabled"] - 1.0, 4
            ),
        },
        "hook_calls_per_pass": hook_calls,
        "null_hook_ns": round(1e9 * hook_price, 1),
        "disabled_overhead_fraction": round(disabled_overhead, 6),
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
    }


def test_observability_overhead_smoke():
    """Harness entry: the small configuration must hold end to end."""
    from conftest import report_table

    document = run(small=True, rounds=3)
    wall = document["wall_seconds"]
    report_table(
        "Observability: instrumentation overhead",
        ["configuration", "seconds", "vs disabled"],
        [
            ["disabled (NULL_RECORDER)", wall["disabled"], "1.00x"],
            ["stats (Recorder)", wall["stats"],
             "%.2fx" % (wall["stats"] / wall["disabled"])],
            ["tracing (stats + spans)", wall["tracing"],
             "%.2fx" % (wall["tracing"] / wall["disabled"])],
            ["progress (stats + heartbeats)", wall["progress"],
             "%.2fx" % (wall["progress"] / wall["disabled"])],
        ],
        notes=[
            "disabled hook budget: %d calls x %.0f ns = %.4f%% of "
            "runtime (asserted < %.0f%%)" % (
                document["hook_calls_per_pass"],
                document["null_hook_ns"],
                100 * document["disabled_overhead_fraction"],
                100 * document["max_disabled_overhead"],
            ),
        ],
    )


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="instrumentation overhead benchmark "
        "(disabled hooks must cost < 3%)"
    )
    parser.add_argument(
        "--small", action="store_true",
        help="CI-sized configuration (2 adder pairs instead of 3)",
    )
    parser.add_argument(
        "--rounds", type=int, default=5, metavar="N",
        help="interleaved timing rounds per configuration "
        "(default: 5)",
    )
    parser.add_argument(
        "--out", metavar="PATH",
        help="write the JSON result document to PATH",
    )
    args = parser.parse_args(argv)
    document = run(small=args.small, rounds=args.rounds)
    wall = document["wall_seconds"]
    print(
        "observability overhead (%s): disabled %.4fs, stats %.4fs "
        "(+%.1f%%), tracing %.4fs (+%.1f%%), progress %.4fs "
        "(+%.1f%%); disabled hook budget %.4f%% of runtime "
        "(< %.0f%% required)"
        % (
            document["mode"], wall["disabled"], wall["stats"],
            100 * document["overhead_vs_disabled"]["stats"],
            wall["tracing"],
            100 * document["overhead_vs_disabled"]["tracing"],
            wall["progress"],
            100 * document["overhead_vs_disabled"]["progress"],
            100 * document["disabled_overhead_fraction"],
            100 * document["max_disabled_overhead"],
        )
    )
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("results written to %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
