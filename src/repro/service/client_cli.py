"""``repro-client``: command-line client for a running ``repro-serve``.

Verbs mirror the wire protocol::

    repro-client --server 127.0.0.1:7711 ping
    repro-client --server ADDR submit a.aag b.aag --wait --certify
    repro-client --server ADDR status j000001
    repro-client --server ADDR result j000001 --wait --stats-json job.json
    repro-client --server ADDR cancel j000001
    repro-client --server ADDR stats
    repro-client --server ADDR shutdown

``submit --wait`` prints the verdict like ``repro-cec`` and exits with
the same codes: 0 equivalent, 1 not equivalent, 2 undecided,
3 invalid input. ``--certify-local`` replays the returned proof on the
client before trusting the verdict.
"""

import argparse
import json
import sys
import time

from .. import __version__
from ..core.certify import CertificationError, certify
from ..core.serialize import result_from_dict
from ..exit_codes import (
    EXIT_INVALID_INPUT,
    EXIT_NEGATIVE,
    EXIT_OK,
    EXIT_UNDECIDED,
)
from ..instrument import Recorder, to_chrome_trace
from ..instrument.progress import format_heartbeat
from .client import ServiceClient, ServiceError


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-client",
        description="Client for the repro-serve equivalence-checking "
        "service.",
    )
    parser.add_argument(
        "--version", action="version", version="%(prog)s " + __version__,
    )
    parser.add_argument(
        "--server", required=True, metavar="ADDR",
        help="host:port or Unix socket path of a running repro-serve",
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="socket read timeout (default %(default)s)",
    )
    parser.add_argument(
        "--retries", type=int, default=3, metavar="N",
        help="connection retries with backoff (default %(default)s)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("ping", help="check liveness and server version")

    submit = sub.add_parser("submit", help="submit an equivalence check")
    submit.add_argument("aag_a", help="first circuit (.aag)")
    submit.add_argument("aag_b", help="second circuit (.aag)")
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes and print the verdict",
    )
    submit.add_argument(
        "--certify", action="store_true",
        help="ask the server to replay the proof before answering",
    )
    submit.add_argument(
        "--certify-local", action="store_true",
        help="with --wait: replay the returned certificate client-side",
    )
    submit.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="with --certify: worker-side proof replay processes "
        "(0 = one per CPU; the worker clamps to its CPUs and falls "
        "back to sequential replay on a single-CPU host)",
    )
    submit.add_argument(
        "--time-limit", type=float, default=None, metavar="SECONDS",
        help="per-job wall-clock budget",
    )
    submit.add_argument(
        "--conflict-limit", type=int, default=None, metavar="N",
        help="per-job solver conflict budget",
    )
    submit.add_argument(
        "--option", action="append", default=[], metavar="NAME=VALUE",
        help="engine option (SweepOptions field), repeatable",
    )
    submit.add_argument(
        "--stats-json", metavar="PATH", default=None,
        help="with --wait: write the job's stats blocks here",
    )
    submit.add_argument(
        "--trace-json", metavar="PATH", default=None,
        help="with --wait: write the job's stitched repro-trace/1 "
        "document here",
    )
    submit.add_argument(
        "--trace-chrome", metavar="PATH", default=None,
        help="with --wait: write the trace as Chrome trace-event JSON "
        "(loadable in Perfetto / chrome://tracing)",
    )

    status = sub.add_parser("status", help="query a job's state")
    status.add_argument("job", help="job id from submit")
    status.add_argument(
        "--follow", action="store_true",
        help="stream live repro-progress/1 heartbeats until the job "
        "is terminal (needs a server started with progress enabled)",
    )
    status.add_argument(
        "--interval", type=float, default=0.5, metavar="SECONDS",
        help="with --follow: poll cadence (default %(default)s)",
    )

    result = sub.add_parser("result", help="fetch a job's result")
    result.add_argument("job", help="job id from submit")
    result.add_argument(
        "--wait", action="store_true", help="block until terminal",
    )
    result.add_argument(
        "--wait-timeout", type=float, default=None, metavar="SECONDS",
        help="give up waiting after this long (job keeps running)",
    )
    result.add_argument(
        "--stats-json", metavar="PATH", default=None,
        help="write the job's stats blocks here",
    )
    result.add_argument(
        "--trace-json", metavar="PATH", default=None,
        help="write the job's repro-trace/1 document here",
    )
    result.add_argument(
        "--trace-chrome", metavar="PATH", default=None,
        help="write the trace as Chrome trace-event JSON",
    )

    cancel = sub.add_parser("cancel", help="cancel a queued job")
    cancel.add_argument("job", help="job id from submit")

    cache = sub.add_parser(
        "cache",
        help="proof-cache statistics, or a direct key probe/fetch",
    )
    cache.add_argument(
        "key", nargs="?", default=None,
        help="cache key (pair_key hex) to probe; omit for statistics",
    )
    cache.add_argument(
        "--get", metavar="PATH", default=None,
        help="with KEY: fetch the stored result document to PATH",
    )
    cache.add_argument(
        "--json", action="store_true", dest="cache_json",
        help="print the raw response as JSON",
    )

    sub.add_parser("stats", help="print the server's stats report")
    metrics = sub.add_parser(
        "metrics", help="print the server's metrics (Prometheus text)",
    )
    metrics.add_argument(
        "--json", action="store_true", dest="metrics_json",
        help="print the repro-metrics/1 document instead",
    )
    sub.add_parser("shutdown", help="stop the server")
    return parser


def _parse_options(pairs):
    options = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep:
            raise ValueError("--option needs NAME=VALUE, got %r" % pair)
        options[name] = json.loads(value)
    return options


def _print_heartbeat(update):
    progress = update.get("progress")
    if isinstance(progress, dict):
        print("... %s" % format_heartbeat(progress), file=sys.stderr)
        return
    print("... job %s %s (%.1fs)" % (
        update.get("job"), update.get("state"),
        update.get("elapsed_seconds", 0.0),
    ), file=sys.stderr)


def _follow_status(client, job_id, interval):
    """``status --follow``: stream each new heartbeat until terminal.

    Deduplicates on the heartbeat sequence number so a poll cadence
    faster than the server's progress interval never repeats lines.
    """
    last_seq = None
    while True:
        response = client.progress(job_id)
        progress = response.get("progress")
        if isinstance(progress, dict) and progress.get("seq") != last_seq:
            last_seq = progress.get("seq")
            print(format_heartbeat(progress), file=sys.stderr)
        if response.get("state") in ("done", "failed", "cancelled"):
            print(json.dumps(
                {key: response.get(key) for key in (
                    "job", "state", "cached", "verdict", "error",
                    "elapsed_seconds",
                )},
                indent=2, sort_keys=True,
            ))
            return EXIT_OK
        time.sleep(interval)


def _write_stats(path, response):
    with open(path, "w") as handle:
        json.dump(
            {
                "job": response.get("job"),
                "cached": response.get("cached"),
                "job_stats": response.get("job_stats"),
                "worker_stats": response.get("worker_stats"),
            },
            handle, indent=2, sort_keys=True,
        )
        handle.write("\n")


def _write_trace_outputs(trace_json, trace_chrome, response):
    trace = response.get("trace")
    if trace is None:
        if trace_json or trace_chrome:
            print("repro-client: no trace on this result",
                  file=sys.stderr)
        return
    if trace_json:
        with open(trace_json, "w") as handle:
            json.dump(trace, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if trace_chrome:
        with open(trace_chrome, "w") as handle:
            json.dump(to_chrome_trace(trace), handle, sort_keys=True)
            handle.write("\n")


def _finish(response, certify_local, stats_json, jobs=None):
    """Common tail of submit --wait / result: print verdict, exit code."""
    if stats_json:
        _write_stats(stats_json, response)
    verdict = response.get("verdict")
    cached = " (cached)" if response.get("cached") else ""
    if certify_local:
        result = result_from_dict(response["result"])
        if result.equivalent is not None:
            try:
                certify(result, jobs=jobs)
            except CertificationError as exc:
                print("certificate INVALID: %s" % exc, file=sys.stderr)
                return EXIT_INVALID_INPUT
            print("certificate OK%s" % cached)
    if verdict == "equivalent":
        print("EQUIVALENT%s" % cached)
        return EXIT_OK
    if verdict == "not_equivalent":
        result_doc = response.get("result") or {}
        cex = result_doc.get("counterexample")
        print("NOT EQUIVALENT%s" % cached)
        if cex is not None:
            print("counterexample: %s" % "".join(str(b) for b in cex))
        return EXIT_NEGATIVE
    print("UNDECIDED%s" % cached)
    return EXIT_UNDECIDED


def _run_cache(client, args):
    """The ``cache`` subcommand: stats, key probe, or document fetch.

    Speaks the same ``repro-fleet/1`` verbs the router's cross-shard
    fetch uses, so what an operator sees here is exactly what a peer
    shard would be served.
    """
    if args.key is None:
        response = client.cache_stats()
        if args.cache_json:
            print(json.dumps(response, indent=2, sort_keys=True))
        else:
            print("entries=%d hits=%d misses=%d stores=%d" % (
                response.get("entries", 0), response.get("hits", 0),
                response.get("misses", 0), response.get("stores", 0),
            ))
        return EXIT_OK
    if args.get:
        result, meta = client.cache_get(args.key)
        if result is None:
            print("cache miss: %s" % args.key, file=sys.stderr)
            return EXIT_NEGATIVE
        with open(args.get, "w") as handle:
            json.dump(result, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("cache hit: %s (verdict %s) written to %s" % (
            args.key, (meta or {}).get("verdict"), args.get,
        ))
        return EXIT_OK
    found, meta = client.cache_probe(args.key)
    if args.cache_json:
        print(json.dumps(
            {"key": args.key, "found": found, "meta": meta},
            indent=2, sort_keys=True,
        ))
    elif found:
        print("cache hit: %s (verdict %s)" % (
            args.key, (meta or {}).get("verdict"),
        ))
    else:
        print("cache miss: %s" % args.key)
    return EXIT_OK if found else EXIT_NEGATIVE


def main(argv=None):
    args = build_parser().parse_args(argv)
    try:
        client = ServiceClient(
            args.server, timeout=args.timeout, retries=args.retries,
        )
    except ValueError as exc:
        print("repro-client: %s" % exc, file=sys.stderr)
        return EXIT_INVALID_INPUT
    try:
        with client:
            return _run(client, args)
    except ServiceError as exc:
        print("repro-client: server error: %s" % exc, file=sys.stderr)
        if exc.code == "bad-input":
            return EXIT_INVALID_INPUT
        return EXIT_INVALID_INPUT if exc.code in (
            "invalid-request", "unknown-job",
        ) else EXIT_UNDECIDED
    except OSError as exc:
        print("repro-client: cannot reach %s: %s"
              % (args.server, exc), file=sys.stderr)
        return EXIT_INVALID_INPUT


def _run(client, args):
    if args.command == "ping":
        started = time.perf_counter()
        response = client.ping()
        rtt_ms = (time.perf_counter() - started) * 1000.0
        print("repro-serve %s (%s) rtt=%.2fms" % (
            response.get("version"), response.get("protocol"), rtt_ms,
        ))
        return EXIT_OK
    if args.command == "submit":
        try:
            with open(args.aag_a) as handle:
                aag_a = handle.read()
            with open(args.aag_b) as handle:
                aag_b = handle.read()
            options = _parse_options(args.option)
        except (OSError, ValueError) as exc:
            print("repro-client: %s" % exc, file=sys.stderr)
            return EXIT_INVALID_INPUT
        traced = bool(args.trace_json or args.trace_chrome)
        if traced and not args.wait:
            print("repro-client: --trace-json/--trace-chrome require "
                  "--wait", file=sys.stderr)
            return EXIT_INVALID_INPUT
        if traced:
            # check() opens a client-side trace, threads it through the
            # server, and merges the stitched trace into the response.
            _, response = client.check(
                aag_a, aag_b, on_update=_print_heartbeat,
                recorder=Recorder(), options=options,
                time_limit=args.time_limit,
                conflict_limit=args.conflict_limit,
                certify=args.certify,
                jobs=args.jobs,
            )
            _write_trace_outputs(
                args.trace_json, args.trace_chrome, response
            )
            return _finish(
                response, args.certify_local, args.stats_json,
                jobs=args.jobs,
            )
        submitted = client.submit(
            aag_a, aag_b, options=options,
            time_limit=args.time_limit,
            conflict_limit=args.conflict_limit,
            certify=args.certify,
            jobs=args.jobs,
        )
        if not args.wait:
            print(submitted["job"])
            return EXIT_OK
        response = client.result(
            submitted["job"], wait=True, on_update=_print_heartbeat,
        )
        return _finish(
            response, args.certify_local, args.stats_json, jobs=args.jobs,
        )
    if args.command == "status":
        if args.follow:
            return _follow_status(client, args.job, args.interval)
        response = client.status(args.job)
        print(json.dumps(
            {key: response.get(key) for key in (
                "job", "state", "cached", "verdict", "error",
                "elapsed_seconds",
            )},
            indent=2, sort_keys=True,
        ))
        return EXIT_OK
    if args.command == "result":
        response = client.result(
            args.job, wait=args.wait, timeout=args.wait_timeout,
            on_update=_print_heartbeat,
        )
        _write_trace_outputs(
            args.trace_json, args.trace_chrome, response
        )
        if response.get("state") not in ("done",):
            print(json.dumps(
                {key: response.get(key) for key in (
                    "job", "state", "verdict", "error",
                )},
                indent=2, sort_keys=True,
            ))
            return EXIT_UNDECIDED
        return _finish(response, False, args.stats_json)
    if args.command == "cancel":
        response = client.cancel(args.job)
        print("cancelled" if response.get("cancelled")
              else "not cancelled (state: %s)" % response.get("state"))
        return EXIT_OK if response.get("cancelled") else EXIT_NEGATIVE
    if args.command == "cache":
        return _run_cache(client, args)
    if args.command == "stats":
        print(json.dumps(client.stats(), indent=2, sort_keys=True))
        return EXIT_OK
    if args.command == "metrics":
        document, prometheus = client.metrics()
        if args.metrics_json:
            print(json.dumps(document, indent=2, sort_keys=True))
        else:
            sys.stdout.write(prometheus)
        return EXIT_OK
    # shutdown
    client.shutdown()
    print("server shutting down")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
