"""Tests for clause containers and Tseitin encoding."""

import itertools

import pytest

from repro.cnf import CNF, is_tautology, normalize_clause, tseitin_encode
from repro.circuits import comparator, parity_tree, ripple_carry_adder


class TestNormalizeClause:
    def test_sorts_and_dedups(self):
        assert normalize_clause([3, -1, 3, 2]) == (-1, 2, 3)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            normalize_clause([1, 0])

    def test_rejects_tautology(self):
        with pytest.raises(ValueError):
            normalize_clause([1, -1])

    def test_is_tautology(self):
        assert is_tautology([1, -1, 2])
        assert not is_tautology([1, 2, -3])


class TestCNF:
    def test_add_clause_grows_vars(self):
        cnf = CNF()
        cnf.add_clause([1, -7])
        assert cnf.num_vars == 7
        assert len(cnf) == 1

    def test_new_var(self):
        cnf = CNF(3)
        assert cnf.new_var() == 4
        assert cnf.num_vars == 4

    def test_evaluate(self):
        cnf = CNF(clauses=[[1, 2], [-1, 2]])
        assert cnf.evaluate({1: 1, 2: 1})
        assert not cnf.evaluate({1: 1, 2: 0})

    def test_copy_isolated(self):
        cnf = CNF(clauses=[[1]])
        dup = cnf.copy()
        dup.add_clause([2])
        assert len(cnf) == 1
        assert len(dup) == 2

    def test_iteration_order(self):
        cnf = CNF(clauses=[[1], [2], [3]])
        assert list(cnf) == [(1,), (2,), (3,)]


class TestTseitin:
    def _roundtrip_models(self, aig):
        """Every circuit evaluation must extend to a CNF model and the CNF
        projected to inputs must agree with the circuit."""
        enc = tseitin_encode(aig)
        for bits in itertools.product([0, 1], repeat=aig.num_inputs):
            values = aig.evaluate_all(list(bits))
            assignment = [0] * (enc.cnf.num_vars + 1)
            for aig_var in range(aig.num_vars):
                assignment[enc.var_of[aig_var]] = values[aig_var]
            assert enc.cnf.evaluate(assignment), (
                "circuit evaluation is not a CNF model for %r" % (bits,)
            )

    def test_models_match_circuit(self, tiny_aig):
        self._roundtrip_models(tiny_aig)

    def test_models_match_adder(self):
        self._roundtrip_models(ripple_carry_adder(2))

    def test_models_match_parity(self):
        self._roundtrip_models(parity_tree(4))

    def test_clause_count(self):
        aig = comparator(3)
        enc = tseitin_encode(aig)
        assert len(enc.cnf) == 3 * aig.num_ands + 1

    def test_const_clause_is_unit(self):
        aig = ripple_carry_adder(2)
        enc = tseitin_encode(aig)
        clause = enc.cnf.clauses[enc.const_clause_index]
        assert clause == (-enc.var_of[0],)

    def test_defining_clauses_shapes(self):
        aig = ripple_carry_adder(2)
        enc = tseitin_encode(aig)
        for and_var, (c_a, c_b, c_o) in enc.defining_clauses.items():
            n = enc.var_of[and_var]
            assert -n in enc.cnf.clauses[c_a]
            assert -n in enc.cnf.clauses[c_b]
            assert n in enc.cnf.clauses[c_o]
            assert len(enc.cnf.clauses[c_o]) == 3

    def test_lit_to_cnf_signs(self, tiny_aig):
        enc = tseitin_encode(tiny_aig)
        lit = tiny_aig.outputs[0]
        assert enc.lit_to_cnf(lit) == -enc.lit_to_cnf(lit ^ 1)

    def test_only_circuit_consistent_models(self, tiny_aig):
        """CNF models restricted to node vars must match circuit evaluation."""
        enc = tseitin_encode(tiny_aig)
        num_vars = enc.cnf.num_vars
        for model_bits in itertools.product([0, 1], repeat=num_vars):
            assignment = [0] + list(model_bits)
            if not enc.cnf.evaluate(assignment):
                continue
            input_bits = [assignment[enc.var_of[v]] for v in tiny_aig.inputs]
            values = tiny_aig.evaluate_all(input_bits)
            for aig_var in range(tiny_aig.num_vars):
                assert assignment[enc.var_of[aig_var]] == values[aig_var]
