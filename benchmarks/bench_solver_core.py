"""Solver-core benchmark: flat-arena solver vs. the reference solver.

Runs the rewritten cache-conscious core (``repro.sat.solver.Solver``)
and the retained pre-rewrite implementation
(``repro.sat.reference.ReferenceSolver``) over deterministic workloads
and records honest wall-clock ratios plus the trajectory-invariant
solver statistics::

    PYTHONPATH=src python benchmarks/bench_solver_core.py --out BENCH_solver.json
    PYTHONPATH=src python benchmarks/bench_solver_core.py --small --out /tmp/b.json
    PYTHONPATH=src python benchmarks/bench_solver_core.py --profile /tmp/solver.pstats

Workloads (all seeded/committed, no randomness):

* ``load_add24`` — ``add_clause`` throughput over the committed
  ``examples/data/add24_miter.cnf`` (1880 clauses).
* ``solve_add24`` — the committed adder-miter UNSAT solve without proof
  logging; the per-run ``SolverStats`` are deterministic and asserted
  identical between the two solvers *and* against the committed
  baseline (any trajectory break shows up as a count change here).
* ``solve_add24_proof`` — the same solve with resolution logging and
  trimming; the trimmed tracecheck text must be byte-identical between
  the two solvers.
* ``scan_migration`` — synthetic long-clause watch-migration cascade
  (overlapping 60-literal windows falsified by an implication chain),
  stressing the clause-body scan.
* ``cec_rca16_ks16`` — end-to-end ``check_equivalence`` on the
  committed rca-vs-ks adder pair, with the sweep's solver class swapped
  for the reference implementation on the baseline run.

Every workload asserts identical verdicts and identical ``SolverStats``
between the two solvers. The JSON document records per-workload wall
times, speedups, and core throughput (propagations/sec,
conflicts/sec). CI replays the small configuration and checks the
deterministic counts exactly and the throughput within a loose band
(runner speeds differ; trajectory counts do not).

``--profile`` is the cProfile harness the hot-path work is driven by:
it runs the ``solve_add24`` workload under ``cProfile`` and dumps a
``pstats`` file for ``python -m pstats`` / ``snakeviz``-style digging.
"""

import argparse
import cProfile
import json
import os
import platform
import sys
import time

from repro.circuits import kogge_stone_adder, ripple_carry_adder
from repro.cnf.dimacs import read_dimacs
from repro.core.cec import check_equivalence
import repro.core.fraig as _fraig
from repro.proof import ProofStore
from repro.proof.tracecheck import dumps_tracecheck
from repro.proof.trim import trim
from repro.sat.reference import ReferenceSolver
from repro.sat.solver import SAT, UNSAT, Solver

ADD24_CNF = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples", "data", "add24_miter.cnf",
)

# Committed trajectory fingerprint of the add24 solve: both solver
# implementations must reproduce these exact counts on every machine.
ADD24_STATS = {
    "decisions": 3889,
    "propagations": 130770,
    "conflicts": 1581,
    "restarts": 9,
    "learned": 1580,
    "deleted": 783,
}


def _best(fn, repeats):
    """Best-of-N wall time; returns (seconds, last_result)."""
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _stats_dict(stats):
    return {
        "decisions": stats.decisions,
        "propagations": stats.propagations,
        "conflicts": stats.conflicts,
        "restarts": stats.restarts,
        "learned": stats.learned,
        "deleted": stats.deleted,
    }


def _load_clauses(cls, clauses):
    solver = cls()
    for clause in clauses:
        solver.add_clause(clause)
    return solver


def load_benchmark(cnf, repeats):
    new_s, _ = _best(lambda: _load_clauses(Solver, cnf.clauses), repeats)
    ref_s, _ = _best(
        lambda: _load_clauses(ReferenceSolver, cnf.clauses), repeats
    )
    return {
        "clauses": len(cnf.clauses),
        "new_seconds": round(new_s, 4),
        "ref_seconds": round(ref_s, 4),
        "speedup": round(ref_s / new_s, 3),
        "clauses_per_second": round(len(cnf.clauses) / new_s),
    }


def _solve_add24(cls, cnf):
    solver = _load_clauses(cls, cnf.clauses)
    start = time.perf_counter()
    result = solver.solve()
    elapsed = time.perf_counter() - start
    assert result.status is UNSAT
    return elapsed, solver.stats


def solve_benchmark(cnf, repeats):
    def run(cls):
        best = None
        stats = None
        for _ in range(repeats):
            elapsed, st = _solve_add24(cls, cnf)
            if best is None or elapsed < best:
                best, stats = elapsed, st
        return best, stats

    new_s, new_stats = run(Solver)
    ref_s, ref_stats = run(ReferenceSolver)
    new_d, ref_d = _stats_dict(new_stats), _stats_dict(ref_stats)
    assert new_d == ref_d, "trajectory diverged: %r vs %r" % (new_d, ref_d)
    assert new_d == ADD24_STATS, \
        "trajectory drifted from committed baseline: %r" % (new_d,)
    return {
        "stats": new_d,
        "new_seconds": round(new_s, 4),
        "ref_seconds": round(ref_s, 4),
        "speedup": round(ref_s / new_s, 3),
        "propagations_per_second": round(new_d["propagations"] / new_s),
        "conflicts_per_second": round(new_d["conflicts"] / new_s),
    }


def _solve_with_proof(cls, cnf):
    store = ProofStore()
    solver = cls(proof=store)
    solver.ensure_vars(cnf.num_vars)
    alive = True
    for clause in cnf.clauses:
        if not solver.add_clause(clause):
            alive = False
            break
    if alive:
        result = solver.solve()
        assert result.status is UNSAT
    trimmed, _ = trim(store)
    return dumps_tracecheck(trimmed), solver.stats


def proof_benchmark(cnf, repeats):
    new_s, (new_text, new_stats) = _best(
        lambda: _solve_with_proof(Solver, cnf), repeats
    )
    ref_s, (ref_text, ref_stats) = _best(
        lambda: _solve_with_proof(ReferenceSolver, cnf), repeats
    )
    assert new_text == ref_text, "trimmed proofs are not byte-identical"
    assert _stats_dict(new_stats) == _stats_dict(ref_stats)
    return {
        "proof_bytes": len(new_text),
        "proof_identical": True,
        "new_seconds": round(new_s, 4),
        "ref_seconds": round(ref_s, 4),
        "speedup": round(ref_s / new_s, 3),
    }


def _scan_instance(cls, n, window):
    solver = cls()
    for i in range(1, n):
        solver.add_clause([i, -(i + 1)])
    extra = n + 1
    for j in range(1, n - window):
        solver.add_clause(list(range(j, j + window)) + [extra, extra + 1])
        extra += 2
    return solver


def _scan_solve(cls, n, window):
    solver = _scan_instance(cls, n, window)
    start = time.perf_counter()
    result = solver.solve(assumptions=[-1])
    elapsed = time.perf_counter() - start
    assert result.status is SAT
    return elapsed, solver.stats


def scan_benchmark(repeats, small):
    n, window = (1200, 40) if small else (2400, 60)

    def run(cls):
        best = None
        stats = None
        for _ in range(repeats):
            elapsed, st = _scan_solve(cls, n, window)
            if best is None or elapsed < best:
                best, stats = elapsed, st
        return best, stats

    new_s, new_stats = run(Solver)
    ref_s, ref_stats = run(ReferenceSolver)
    assert _stats_dict(new_stats) == _stats_dict(ref_stats)
    return {
        "vars": n,
        "window": window,
        "stats": _stats_dict(new_stats),
        "new_seconds": round(new_s, 4),
        "ref_seconds": round(ref_s, 4),
        "speedup": round(ref_s / new_s, 3),
    }


def cec_benchmark(repeats, small):
    width = 8 if small else 16
    aig_a = ripple_carry_adder(width)
    aig_b = kogge_stone_adder(width)

    def run():
        result = check_equivalence(aig_a, aig_b)
        assert result.equivalent is True
        return result

    new_s, _ = _best(run, repeats)
    original = _fraig.Solver
    _fraig.Solver = ReferenceSolver
    try:
        ref_s, _ = _best(run, repeats)
    finally:
        _fraig.Solver = original
    return {
        "pair": "rca%d-vs-ks%d" % (width, width),
        "new_seconds": round(new_s, 4),
        "ref_seconds": round(ref_s, 4),
        "speedup": round(ref_s / new_s, 3),
    }


def run_benchmark(small=False, repeats=None):
    if repeats is None:
        repeats = 3 if small else 5
    cnf = read_dimacs(ADD24_CNF)
    workloads = {
        "load_add24": load_benchmark(cnf, repeats),
        "solve_add24": solve_benchmark(cnf, repeats),
        "solve_add24_proof": proof_benchmark(cnf, max(2, repeats - 2)),
        "scan_migration": scan_benchmark(repeats, small),
        "cec_rca16_ks16": cec_benchmark(repeats, small),
    }
    # Honest floor: the rewrite must never be slower than the reference
    # core on any workload (beyond timer noise), and the structured
    # workloads must show a real win. 2x wall-clock is *not* asserted:
    # the reference solver already used __slots__ records and
    # per-literal watch lists, so both cores sit near the CPython
    # bytecode-dispatch floor (see docs/performance.md).
    for name, data in workloads.items():
        assert data["speedup"] >= 0.90, (name, data)
    assert workloads["load_add24"]["speedup"] >= 1.10, workloads
    # 0.95 not 1.0: best-of-N on a noisy shared runner can jitter a few
    # percent; a real regression lands far below this.
    assert workloads["solve_add24"]["speedup"] >= 0.95, workloads
    return {
        "bench": "solver_core",
        "mode": "small" if small else "full",
        "python": platform.python_version(),
        "repeats": repeats,
        "workloads": workloads,
    }


def run_profile(path):
    """cProfile harness over the add24 solve (the committed hot path)."""
    cnf = read_dimacs(ADD24_CNF)
    profiler = cProfile.Profile()
    profiler.enable()
    _solve_add24(Solver, cnf)
    profiler.disable()
    profiler.dump_stats(path)
    import pstats

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative").print_stats(12)
    print("profile written to %s" % path)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--small", action="store_true",
                        help="CI configuration: fewer repeats, smaller "
                             "synthetic workloads")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--out", help="write the JSON document here")
    parser.add_argument("--profile", metavar="PATH",
                        help="run the cProfile harness instead of the "
                             "benchmark and dump pstats to PATH")
    args = parser.parse_args(argv)
    if args.profile:
        run_profile(args.profile)
        return 0
    document = run_benchmark(small=args.small, repeats=args.repeats)
    text = json.dumps(document, indent=1, sort_keys=True)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
    print(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
