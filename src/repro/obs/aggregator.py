"""The fleet telemetry aggregator behind ``repro-obs``/``repro-top``.

One :class:`ObsAggregator` owns a set of poll targets — a router and
its shards — and on every :meth:`~ObsAggregator.poll_once`:

* asks each target for ``stats`` (counters/gauges), ``metrics``
  (histograms) and ``progress`` (live jobs with heartbeats) over a
  fresh :class:`~repro.service.client.ServiceClient` connection;
* appends every numeric counter and gauge to a fixed-capacity
  :class:`~repro.instrument.timeseries.RingSeries`, so rates and
  short-horizon history survive without unbounded growth;
* feeds three :class:`~repro.instrument.timeseries.SLOTracker`
  objectives — **availability** (completed vs failed jobs),
  **latency** (jobs under the latency objective, from the merged
  ``service/job-seconds`` histogram) and **polls** (scrape health);
* tail-samples terminal jobs: failed and slow ones are retained (with
  their stitched trace when fetchable), fast successes are counted
  and dropped;
* merges every shard's ``repro-metrics/1`` histograms into one
  registry, re-exported by :meth:`~ObsAggregator.prometheus_text`
  together with obs-level gauges and a ``repro-obs`` build-info line.

A sick target never stalls a poll round: transport and protocol
failures mark the target down for the round and the loop moves on.
Everything here is observation — the aggregator speaks only read
verbs and cannot perturb a job.
"""

import bisect
import collections
import time

from .. import __version__
from ..analyze.schemas import OBS_SCHEMA
from ..instrument import MetricsRegistry, get_logger
from ..instrument.metrics import to_prometheus_text
from ..instrument.timeseries import (
    DEFAULT_CAPACITY,
    SLOTracker,
    TailSampler,
    TimeSeriesStore,
)
from ..service.client import ServiceClient, ServiceError

log = get_logger("obs")

#: Seconds between poll rounds (CLI default).
DEFAULT_POLL_INTERVAL = 2.0
#: Jobs at or under this latency count as "good" for the latency SLO.
DEFAULT_LATENCY_SLO_SECONDS = 5.0
DEFAULT_AVAILABILITY_OBJECTIVE = 0.99
DEFAULT_LATENCY_OBJECTIVE = 0.95
#: Poll-health objective: how many target scrapes may fail.
DEFAULT_POLL_OBJECTIVE = 0.99
#: Terminal jobs at or over this duration are tail-sampled as "slow".
DEFAULT_SLOW_SAMPLE_SECONDS = 1.0
#: Socket timeout for one poll request; a hung shard costs one round.
DEFAULT_CLIENT_TIMEOUT = 10.0
#: Terminal job ids remembered so a job is sampled exactly once.
SEEN_TERMINAL_LIMIT = 4096

#: Anything a poll round survives: transport failures, protocol
#: refusals, and malformed payloads from a mid-upgrade shard.
_POLL_ERRORS = (OSError, ServiceError, ValueError, KeyError, TypeError)


class ObsTarget:
    """One polled endpoint (a router or a shard) and its last readings."""

    def __init__(self, name, address, role="shard"):
        self.name = name
        self.address = address
        self.role = role
        self.up = False
        self.polls = 0
        self.failures = 0
        self.last_error = None
        self.last_stats = None
        self.last_metrics = None
        self.last_jobs = []
        self.last_queue_depth = 0
        self.last_poll_seconds = None

    def counters(self):
        """The target's last-seen cumulative counters (may be stale
        while the target is down — cumulative sums must not dip just
        because a scrape failed)."""
        if not isinstance(self.last_stats, dict):
            return {}
        counters = self.last_stats.get("counters")
        return counters if isinstance(counters, dict) else {}

    def gauges(self):
        if not isinstance(self.last_stats, dict):
            return {}
        gauges = self.last_stats.get("gauges")
        return gauges if isinstance(gauges, dict) else {}

    def snapshot(self):
        """JSON block for the ``repro-obs/1`` document."""
        return {
            "name": self.name,
            "address": self.address,
            "role": self.role,
            "up": self.up,
            "polls": self.polls,
            "failures": self.failures,
            "last_error": self.last_error,
            "queue_depth": self.last_queue_depth,
            "active_jobs": sum(
                1 for entry in self.last_jobs
                if entry.get("state") in ("queued", "running")
            ),
            "poll_seconds": self.last_poll_seconds,
        }


class ObsAggregator:
    """Poll a fleet's endpoints; keep bounded series, SLOs, samples.

    Args:
        shards: ``(name, address)`` pairs for the backend shards.
        routers: ``(name, address)`` pairs for routers (polled for
            stats/metrics/queue depth; their job listings are *not*
            tail-sampled — the owning shard's listing already is, and
            sampling both would double-count every job).
        interval_seconds: nominal poll cadence (recorded in snapshots;
            the caller owns the actual sleep).
        capacity: ring capacity per time series.
        latency_slo_seconds: "good job" latency bound.
        availability_objective / latency_objective / poll_objective:
            SLO targets in (0, 1).
        slow_sample_seconds: tail-sampler slow threshold.
        fetch_traces: fetch the stitched trace of each *kept* finished
            job (one extra read per retained sample).
        client_timeout: socket timeout per poll request.
        clock: time source (tests inject a fake one).
    """

    def __init__(
        self,
        shards,
        routers=(),
        interval_seconds=DEFAULT_POLL_INTERVAL,
        capacity=DEFAULT_CAPACITY,
        latency_slo_seconds=DEFAULT_LATENCY_SLO_SECONDS,
        availability_objective=DEFAULT_AVAILABILITY_OBJECTIVE,
        latency_objective=DEFAULT_LATENCY_OBJECTIVE,
        poll_objective=DEFAULT_POLL_OBJECTIVE,
        slow_sample_seconds=DEFAULT_SLOW_SAMPLE_SECONDS,
        fetch_traces=True,
        client_timeout=DEFAULT_CLIENT_TIMEOUT,
        clock=time.time,
    ):
        self.targets = [
            ObsTarget(name, address, role="router")
            for name, address in routers
        ] + [
            ObsTarget(name, address, role="shard")
            for name, address in shards
        ]
        if not self.targets:
            raise ValueError("the aggregator needs at least one target")
        names = [target.name for target in self.targets]
        if len(set(names)) != len(names):
            raise ValueError("target names must be unique: %r" % names)
        self.interval_seconds = interval_seconds
        self.latency_slo_seconds = latency_slo_seconds
        self.fetch_traces = fetch_traces
        self.client_timeout = client_timeout
        self.series = TimeSeriesStore(capacity)
        self.slos = {
            "availability": SLOTracker(
                "availability", objective=availability_objective,
                capacity=capacity,
            ),
            "latency": SLOTracker(
                "latency", objective=latency_objective, capacity=capacity,
            ),
            "polls": SLOTracker(
                "polls", objective=poll_objective, capacity=capacity,
            ),
        }
        self.sampler = TailSampler(slow_seconds=slow_sample_seconds)
        self.polls = 0
        self.poll_failures = 0
        self._poll_good_total = 0
        self._poll_total = 0
        self._clock = clock
        self._merged_doc = MetricsRegistry().report()
        self._seen_terminal = set()
        self._seen_order = collections.deque()

    # ------------------------------------------------------------------
    # Polling
    # ------------------------------------------------------------------

    def poll_once(self, now=None):
        """One poll round over every target; returns the number of
        targets that answered."""
        now = self._clock() if now is None else now
        self.polls += 1
        merged = MetricsRegistry()
        answered = 0
        for target in self.targets:
            target.polls += 1
            started = time.monotonic()
            try:
                self._poll_target(target, merged, now)
            except _POLL_ERRORS as exc:
                target.up = False
                target.failures += 1
                target.last_error = "%s: %s" % (type(exc).__name__, exc)
                self.poll_failures += 1
                log.warning("poll of %s (%s) failed: %s",
                            target.name, target.address, exc)
                continue
            finally:
                target.last_poll_seconds = time.monotonic() - started
            target.up = True
            target.last_error = None
            answered += 1
        self._merged_doc = merged.report()
        self._poll_good_total += answered
        self._poll_total += len(self.targets)
        self._feed_slos(now)
        return answered

    def _poll_target(self, target, merged, now):
        with ServiceClient(
            target.address, timeout=self.client_timeout, retries=0,
        ) as client:
            stats = client.stats()
            target.last_stats = stats
            metrics_doc, _ = client.metrics()
            target.last_metrics = metrics_doc
            try:
                merged.merge_report(metrics_doc)
            except ValueError as exc:
                # Mismatched bucket layouts (a mid-upgrade shard) cost
                # that shard's histograms this round, never the poll.
                log.warning("metrics from %s not mergeable: %s",
                            target.name, exc)
            listing = client.progress()
            target.last_jobs = list(listing.get("jobs") or [])
            depth = listing.get("queue_depth")
            target.last_queue_depth = (
                int(depth) if isinstance(depth, (int, float)) else 0
            )
            self._record_target_series(target, now)
            if target.role == "shard":
                self._sample_terminal(target, client)

    def _record_target_series(self, target, now):
        prefix = target.name
        self.series.record(
            "%s/queue-depth" % prefix, now, float(target.last_queue_depth)
        )
        for name, value in target.counters().items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self.series.record("%s/%s" % (prefix, name), now, float(value))
        for name, value in target.gauges().items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self.series.record("%s/%s" % (prefix, name), now, float(value))

    def _sample_terminal(self, target, client):
        """Offer newly finished jobs to the tail sampler (errors and
        slow jobs survive; fast successes are counted and dropped)."""
        for entry in target.last_jobs:
            state = entry.get("state")
            if state not in ("done", "failed", "cancelled"):
                continue
            key = (target.name, entry.get("job"))
            if key in self._seen_terminal:
                continue
            self._remember_terminal(key)
            elapsed = entry.get("elapsed_seconds")
            if not isinstance(elapsed, (int, float)):
                elapsed = 0.0
            is_error = state != "done" or entry.get("error") is not None
            entry = dict(entry)
            entry["target"] = target.name
            kept = self.sampler.offer(
                entry, float(elapsed), error=is_error,
            )
            if kept and self.fetch_traces and state == "done":
                try:
                    response = client.result(entry["job"])
                except _POLL_ERRORS:
                    continue
                trace = response.get("trace")
                if trace is not None:
                    entry["trace"] = trace

    def _remember_terminal(self, key):
        self._seen_terminal.add(key)
        self._seen_order.append(key)
        while len(self._seen_order) > SEEN_TERMINAL_LIMIT:
            self._seen_terminal.discard(self._seen_order.popleft())

    def _feed_slos(self, now):
        completed = 0
        failed = 0
        for target in self.targets:
            if target.role != "shard":
                continue
            counters = target.counters()
            completed += int(counters.get("service/jobs-completed", 0))
            failed += int(counters.get("service/jobs-failed", 0))
        self.slos["availability"].record(
            now, float(completed), float(completed + failed)
        )
        good, total = self._latency_counts()
        self.slos["latency"].record(now, good, total)
        self.slos["polls"].record(
            now, float(self._poll_good_total), float(self._poll_total)
        )

    def _latency_counts(self):
        """Cumulative ``(good, total)`` jobs from the merged
        ``service/job-seconds`` histogram: good means at or under the
        latency objective bound."""
        block = self._merged_doc.get("histograms", {}).get(
            "service/job-seconds"
        )
        if not block:
            return 0.0, 0.0
        buckets = block["buckets"]
        counts = block["counts"]
        index = bisect.bisect_right(buckets, self.latency_slo_seconds)
        return float(sum(counts[:index])), float(block["count"])

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def fleet_jobs(self):
        """Every shard's last job listing, newest poll first, each
        entry annotated with its ``target`` (for the dashboard)."""
        jobs = []
        for target in self.targets:
            if target.role != "shard":
                continue
            for entry in target.last_jobs:
                entry = dict(entry)
                entry["target"] = target.name
                jobs.append(entry)
        return jobs

    def queue_depth(self):
        """Summed queue depth across shard targets."""
        return sum(
            target.last_queue_depth for target in self.targets
            if target.role == "shard"
        )

    def cache_hit_rate(self):
        """Fleet-wide cache hit rate from summed shard counters, or
        ``None`` before any lookup happened."""
        hits = 0
        misses = 0
        for target in self.targets:
            if target.role != "shard":
                continue
            counters = target.counters()
            hits += int(counters.get("service/cache-hits", 0))
            misses += int(counters.get("service/cache-misses", 0))
        if hits + misses == 0:
            return None
        return hits / float(hits + misses)

    def stats_like_report(self, now=None):
        """Obs-level counters and gauges in ``repro-stats/1`` shape,
        rendered into the merged exposition next to the shard data."""
        now = self._clock() if now is None else now
        gauges = {
            "obs/targets-up": sum(1 for t in self.targets if t.up),
            "obs/targets-configured": len(self.targets),
            "obs/queue-depth": self.queue_depth(),
            "obs/jobs-active": sum(
                1 for entry in self.fleet_jobs()
                if entry.get("state") in ("queued", "running")
            ),
            "obs/samples-kept": self.sampler.kept,
            "obs/samples-dropped": self.sampler.dropped,
        }
        hit_rate = self.cache_hit_rate()
        if hit_rate is not None:
            gauges["obs/cache-hit-rate"] = hit_rate
        for name, tracker in sorted(self.slos.items()):
            status = tracker.status(now)
            for window in ("fast", "slow"):
                burn = status["burn_rate_%s" % window]
                if burn is not None:
                    gauges["obs/slo-%s-burn-%s" % (name, window)] = burn
            gauges["obs/slo-%s-alerting" % name] = (
                1 if status["alerting"] else 0
            )
        return {
            "counters": {
                "obs/polls": self.polls,
                "obs/poll-failures": self.poll_failures,
            },
            "gauges": gauges,
        }

    def prometheus_text(self, now=None):
        """The merged exposition: every shard's histograms folded
        together, obs-level counters/gauges, and a ``repro-obs``
        build-info line."""
        return to_prometheus_text(
            self._merged_doc, stats_report=self.stats_like_report(now),
            build_info={"component": "repro-obs", "version": __version__},
        )

    def snapshot(self, now=None):
        """The ``repro-obs/1`` document."""
        now = self._clock() if now is None else now
        samples = dict(self.sampler.stats())
        samples["records"] = self.sampler.samples()
        return {
            "schema": OBS_SCHEMA,
            "polls": self.polls,
            "interval_seconds": self.interval_seconds,
            "targets": [target.snapshot() for target in self.targets],
            "slos": {
                name: tracker.status(now)
                for name, tracker in sorted(self.slos.items())
            },
            "samples": samples,
            "series": self.series.summaries(),
            "meta": {"tool": "repro-obs", "version": __version__},
        }


def validate_obs_snapshot(document):
    """Check *document* against the ``repro-obs/1`` schema; raises
    ``ValueError`` with the first problem, returns it when valid."""
    if not isinstance(document, dict):
        raise ValueError("obs snapshot must be a dict")
    if document.get("schema") != OBS_SCHEMA:
        raise ValueError("bad schema tag %r" % (document.get("schema"),))
    for key, kind in (
        ("polls", int), ("targets", list), ("slos", dict),
        ("samples", dict),
    ):
        if not isinstance(document.get(key), kind):
            raise ValueError(
                "snapshot key %r must be %s" % (key, kind.__name__)
            )
    for entry in document["targets"]:
        if not isinstance(entry, dict) or "name" not in entry:
            raise ValueError("each target block needs a 'name'")
    for name, status in document["slos"].items():
        if not isinstance(status, dict) or "alerting" not in status:
            raise ValueError("SLO block %r needs an 'alerting' flag" % name)
    samples = document["samples"]
    for key in ("offered", "kept", "dropped"):
        if not isinstance(samples.get(key), int):
            raise ValueError("samples block needs integer %r" % key)
    return document
