"""Tests for counterexample minimization."""

import itertools

import pytest

from repro import check_equivalence
from repro.aig import AIG, lit_not
from repro.circuits import comparator, comparator_subtract, parity_tree, \
    ripple_carry_adder
from repro.core import minimize_counterexample


class TestMinimize:
    def _verify_witness(self, aig_a, aig_b, witness):
        """Every completion of the freed inputs must still differ."""
        free = [
            k for k, value in enumerate(witness.assignment)
            if value is None
        ]
        for completion in itertools.product([0, 1], repeat=len(free)):
            bits = list(witness.assignment)
            for position, value in zip(free, completion):
                bits[position] = value
            assert aig_a.evaluate(bits) != aig_b.evaluate(bits)

    def test_single_output_fault(self):
        good = parity_tree(6)
        bad = parity_tree(6).copy()
        bad.set_output(0, lit_not(bad.outputs[0]))
        result = check_equivalence(good, bad)
        witness = minimize_counterexample(good, bad, result.counterexample)
        # Parity flipped everywhere: no input bit is essential.
        assert witness.essential_bits == 0
        self._verify_witness(good, bad, witness)

    def test_localized_fault_keeps_few_bits(self):
        """A fault visible only when a=b=1 on one bit keeps those bits."""
        aig = AIG()
        a, b, c = aig.add_inputs(3)
        aig.add_output(aig.add_and(a, b))
        bad = AIG()
        a2, b2, c2 = bad.add_inputs(3)
        bad.add_output(bad.add_and(bad.add_and(a2, b2), lit_not(c2)))
        result = check_equivalence(aig, bad)
        assert result.equivalent is False
        witness = minimize_counterexample(aig, bad, result.counterexample)
        # The difference needs a=1, b=1, c=1: all three are essential.
        assert witness.essential_bits == 3
        self._verify_witness(aig, bad, witness)

    def test_comparator_fault(self):
        good = comparator(4)
        bad = comparator_subtract(4).copy()
        bad.set_output(1, lit_not(bad.outputs[1]))
        result = check_equivalence(good, bad)
        witness = minimize_counterexample(good, bad, result.counterexample)
        assert witness.essential_bits <= 8
        self._verify_witness(good, bad, witness)

    def test_complete_fills_dont_cares(self):
        good = parity_tree(4)
        bad = parity_tree(4).copy()
        bad.set_output(0, lit_not(bad.outputs[0]))
        result = check_equivalence(good, bad)
        witness = minimize_counterexample(good, bad, result.counterexample)
        full = witness.complete(fill=1)
        assert good.evaluate(full) != bad.evaluate(full)

    def test_rejects_non_witness(self):
        good = ripple_carry_adder(3)
        with pytest.raises(ValueError):
            minimize_counterexample(good, good.copy(), [0] * 6)

    def test_repr_shows_pattern(self):
        good = parity_tree(4)
        bad = parity_tree(4).copy()
        bad.set_output(0, lit_not(bad.outputs[0]))
        result = check_equivalence(good, bad)
        witness = minimize_counterexample(good, bad, result.counterexample)
        assert "----" in repr(witness)


class TestCexNeighbors:
    def test_option_accepted_and_correct(self):
        from repro.circuits import kogge_stone_adder
        from repro.core import SweepOptions

        result = check_equivalence(
            ripple_carry_adder(8),
            kogge_stone_adder(8),
            SweepOptions(cex_neighbors=4, validate_proof=True),
        )
        assert result.equivalent is True

    def test_neighbors_reduce_refinements(self):
        from repro.circuits import kogge_stone_adder
        from repro.core import SweepOptions

        plain = check_equivalence(
            ripple_carry_adder(16),
            kogge_stone_adder(16),
            SweepOptions(sim_words=1, cex_neighbors=0),
        )
        boosted = check_equivalence(
            ripple_carry_adder(16),
            kogge_stone_adder(16),
            SweepOptions(sim_words=1, cex_neighbors=8),
        )
        assert plain.equivalent and boosted.equivalent
        assert (
            boosted.engine.stats.refinements
            <= plain.engine.stats.refinements
        )
