#!/usr/bin/env python
"""Quickstart: check two adders for equivalence and certify the proof.

Run:
    python examples/quickstart.py
"""

from repro import certify, check_equivalence
from repro.circuits import carry_lookahead_adder, ripple_carry_adder
from repro.proof.stats import proof_stats


def main():
    # Two structurally different 8-bit adders.
    ripple = ripple_carry_adder(8)
    lookahead = carry_lookahead_adder(8)
    print("circuit A: %s" % ripple)
    print("circuit B: %s" % lookahead)

    # The proof-producing equivalence check.
    result = check_equivalence(ripple, lookahead)
    print("equivalent:", result.equivalent)

    # The run left behind a single resolution proof that the miter CNF
    # (plus its output unit clause) is unsatisfiable.
    stats = proof_stats(result.proof)
    print(
        "proof: %d axioms, %d derived clauses, %d resolutions"
        % (stats.num_axioms, stats.num_derived, stats.num_resolutions)
    )

    # Replay it with the independent checker (and the RUP cross-checker).
    check = certify(result, rup=True)
    print("certified: empty clause id %d" % check.empty_clause_id)

    # Engine work summary.
    engine = result.engine.stats
    print(
        "engine: %d nodes swept, %d structural merges, %d SAT merges, "
        "%d SAT calls, %d refinements"
        % (
            engine.nodes_processed,
            engine.structural_merges,
            engine.sat_merges,
            engine.sat_calls,
            engine.refinements,
        )
    )


if __name__ == "__main__":
    main()
