"""The persistent CEC service: protocol, cache, jobs, server, client."""

import io
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.aig.aiger import read_aag, write_aag
from repro.circuits import kogge_stone_adder, ripple_carry_adder
from repro.core.certify import certify
from repro.core.serialize import result_from_dict, result_to_dict
from repro.instrument import Recorder
from repro.instrument.recorder import validate_report
from repro.service import (
    CecServer,
    JobTable,
    ProofCache,
    QueueFullError,
    ServiceClient,
    ServiceError,
    cache_key,
    canonical_options,
    execute_job,
)
from repro.service import protocol


def aag_text(aig):
    buffer = io.StringIO()
    write_aag(aig, buffer)
    return buffer.getvalue()


@pytest.fixture(scope="module")
def adder_pair():
    return (
        aag_text(ripple_carry_adder(4)), aag_text(kogge_stone_adder(4))
    )


@pytest.fixture(scope="module")
def big_pair():
    return (
        aag_text(ripple_carry_adder(16)), aag_text(kogge_stone_adder(16))
    )


@pytest.fixture()
def server(tmp_path):
    """In-process server on a Unix socket with a fresh cache dir."""
    instance = CecServer(
        str(tmp_path / "cec.sock"), workers=0,
        cache_dir=str(tmp_path / "cache"),
    )
    instance.start()
    yield instance
    instance.close()


class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = {"verb": "ping", "x": [1, 2]}
        assert protocol.decode(protocol.encode(message)) == message

    def test_decode_rejects_bad_json(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"{not json}\n")

    def test_decode_rejects_non_object(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode(b"[1, 2]\n")

    def test_parse_address_tcp(self):
        assert protocol.parse_address("localhost:7711") == (
            "tcp", ("localhost", 7711),
        )

    def test_parse_address_unix(self):
        assert protocol.parse_address("/tmp/x.sock") == (
            "unix", "/tmp/x.sock",
        )
        assert protocol.parse_address("./x.sock") == ("unix", "./x.sock")

    def test_parse_address_rejects_garbage(self):
        with pytest.raises(ValueError):
            protocol.parse_address("no-port-here")
        with pytest.raises(ValueError):
            protocol.parse_address("host:notaport")


class TestJobTable:
    def test_bounded_admission(self):
        table = JobTable(queue_limit=2)
        table.admit()
        table.admit()
        with pytest.raises(QueueFullError):
            table.admit()

    def test_release_frees_capacity(self):
        table = JobTable(queue_limit=1)
        job = table.admit()
        table.release(job)
        table.admit()  # does not raise

    def test_terminal_jobs_bypass_capacity(self):
        table = JobTable(queue_limit=1)
        table.admit()
        table.add_terminal()  # cache hits never count against the queue

    def test_job_ids_unique(self):
        table = JobTable(queue_limit=10)
        ids = {table.admit().id for _ in range(5)}
        assert len(ids) == 5

    def test_terminal_eviction_bounds_table(self):
        table = JobTable(queue_limit=10, retain_terminal=2)
        jobs = [table.admit() for _ in range(4)]
        for job in jobs:
            table.release(job)
            job.finish("equivalent", {"equivalent": True})
            table.note_terminal(job)
        assert len(table) == 2
        assert table.get(jobs[0].id) is None
        assert table.get(jobs[1].id) is None
        assert table.get(jobs[3].id) is jobs[3]

    def test_non_terminal_jobs_survive_eviction_pressure(self):
        table = JobTable(queue_limit=10, retain_terminal=1)
        live = table.admit()
        for _ in range(3):
            job = table.admit()
            table.release(job)
            job.finish("equivalent", {"equivalent": True})
            table.note_terminal(job)
        assert table.get(live.id) is live


class TestCanonicalOptions:
    def test_defaults_match_explicit(self):
        from repro.core import SweepOptions

        assert canonical_options(None) == canonical_options({})
        assert canonical_options(None) == canonical_options(SweepOptions())

    def test_option_changes_key(self, adder_pair):
        from repro.aig.aiger import read_aag

        a = read_aag(io.StringIO(adder_pair[0]))
        b = read_aag(io.StringIO(adder_pair[1]))
        assert cache_key(a, b) != cache_key(a, b, {"sim_words": 9})
        assert cache_key(a, b) == cache_key(b, a)


class TestProofCache:
    def _decided_doc(self, adder_pair):
        response = execute_job({
            "aag_a": adder_pair[0], "aag_b": adder_pair[1],
        })
        assert response["ok"]
        return response["result"]

    def test_store_and_lookup(self, tmp_path, adder_pair):
        cache = ProofCache(str(tmp_path / "c"))
        doc = self._decided_doc(adder_pair)
        assert cache.lookup("00deadbeef") is None
        assert cache.store("00deadbeef", doc) is True
        assert cache.lookup("00deadbeef") == doc
        assert "00deadbeef" in cache
        assert cache.keys() == ["00deadbeef"]

    def test_store_is_idempotent(self, tmp_path, adder_pair):
        cache = ProofCache(str(tmp_path / "c"))
        doc = self._decided_doc(adder_pair)
        assert cache.store("00aa", doc) is True
        assert cache.store("00aa", doc) is False
        assert len(cache) == 1

    def test_refuses_undecided(self, tmp_path):
        cache = ProofCache(str(tmp_path / "c"))
        with pytest.raises(ValueError):
            cache.store("00bb", {"equivalent": None})

    def test_corrupt_entry_reads_as_miss(self, tmp_path, adder_pair):
        cache = ProofCache(str(tmp_path / "c"))
        cache.store("00cc", self._decided_doc(adder_pair))
        with open(cache.result_path("00cc"), "w") as handle:
            handle.write("{truncated")
        assert cache.lookup("00cc") is None

    def test_recorder_counts(self, tmp_path, adder_pair):
        recorder = Recorder()
        cache = ProofCache(str(tmp_path / "c"), recorder=recorder)
        cache.lookup("00dd")
        cache.store("00dd", self._decided_doc(adder_pair))
        cache.lookup("00dd")
        assert recorder.counter("cache/misses") == 1
        assert recorder.counter("cache/hits") == 1
        assert recorder.counter("cache/stores") == 1


class TestExecuteJob:
    def test_bad_aiger_is_structured_error(self):
        response = execute_job({"aag_a": "garbage", "aag_b": "junk"})
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-input"

    def test_unknown_option_is_structured_error(self, adder_pair):
        response = execute_job({
            "aag_a": adder_pair[0], "aag_b": adder_pair[1],
            "options": {"warp_factor": 9},
        })
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-input"

    def test_budget_exhaustion_is_undecided(self, big_pair):
        response = execute_job({
            "aag_a": big_pair[0], "aag_b": big_pair[1],
            "time_limit": 0.0,
        })
        assert response["ok"] is True
        assert response["verdict"] == "undecided"
        assert response["stats"]["budget"]["exhausted"] == "time"

    def test_in_worker_certify(self, adder_pair):
        response = execute_job({
            "aag_a": adder_pair[0], "aag_b": adder_pair[1],
            "certify": True,
        })
        assert response["ok"] is True
        assert "service/certify" in response["stats"]["phases"]

    def test_in_worker_certify_with_jobs(self, adder_pair):
        """The submit ``jobs`` field reaches the proof replay (on a
        small proof / few CPUs it degrades to the sequential fallback,
        which is the point: the worker never forks uselessly)."""
        response = execute_job({
            "aag_a": adder_pair[0], "aag_b": adder_pair[1],
            "certify": True, "jobs": 2,
        })
        assert response["ok"] is True
        assert "service/certify" in response["stats"]["phases"]

    def test_certify_jobs_must_be_an_int(self, adder_pair):
        response = execute_job({
            "aag_a": adder_pair[0], "aag_b": adder_pair[1],
            "certify": True, "jobs": "many",
        })
        assert response["ok"] is False
        assert response["error"]["code"] == "bad-input"
        assert "jobs" in response["error"]["message"]


class TestServerEndToEnd:
    def test_ping(self, server):
        with ServiceClient(server.address) as client:
            response = client.ping()
        assert response["ok"] is True
        assert response["protocol"] == "repro-service/1"

    def test_check_round_trip_and_cache_hit(self, server, adder_pair):
        with ServiceClient(server.address) as client:
            # Miss: solved by the worker, certificate certifies locally.
            result, response = client.check(*adder_pair)
            assert response["verdict"] == "equivalent"
            assert response["cached"] is False
            certify(result)
            worker_stats = validate_report(response["worker_stats"])
            assert any(
                name.startswith("solver/") or "sweep" in name
                for name in worker_stats["phases"]
            )
            # Hit: same certificate, no solver ran.
            result2, response2 = client.check(*adder_pair)
            assert response2["cached"] is True
            assert response2["worker_stats"] is None
            job_stats = validate_report(response2["job_stats"])
            assert set(job_stats["phases"]) == {"cache/lookup"}
            assert response2["result"] == response["result"]
            certify(result2)

    def test_symmetric_query_hits(self, server, adder_pair):
        with ServiceClient(server.address) as client:
            client.check(*adder_pair)
            submitted = client.submit(adder_pair[1], adder_pair[0])
            assert submitted["cached"] is True
            stats = client.stats()
        assert stats["counters"]["service/cache-hits"] >= 1

    def test_bad_input_is_structured(self, server, adder_pair):
        with ServiceClient(server.address) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.submit("not an aiger file", adder_pair[0])
        assert excinfo.value.code == "bad-input"

    def test_interface_mismatch_is_structured(self, server, adder_pair):
        small = aag_text(ripple_carry_adder(2))
        with ServiceClient(server.address) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.submit(adder_pair[0], small)
        assert excinfo.value.code == "bad-input"

    def test_unknown_job_is_structured(self, server):
        with ServiceClient(server.address) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.status("j999999")
        assert excinfo.value.code == "unknown-job"

    def test_budget_exhaustion_round_trip(self, server, big_pair):
        with ServiceClient(server.address) as client:
            submitted = client.submit(*big_pair, time_limit=0.0)
            response = client.result(submitted["job"], wait=True)
        assert response["verdict"] == "undecided"
        assert response["worker_stats"]["budget"]["exhausted"] == "time"

    def test_undecided_is_not_cached(self, server, big_pair):
        with ServiceClient(server.address) as client:
            first = client.submit(*big_pair, time_limit=0.0)
            client.result(first["job"], wait=True)
            second = client.submit(*big_pair, time_limit=0.0)
            assert second["cached"] is False
            client.result(second["job"], wait=True)

    def test_stats_verb_is_valid_report(self, server):
        with ServiceClient(server.address) as client:
            report = validate_report(client.stats())
        assert report["meta"]["tool"] == "repro-serve"


class TestCacheVerbs:
    """The ``repro-fleet/1`` cache protocol on a single shard."""

    @staticmethod
    def _key(pair):
        return cache_key(
            read_aag(io.StringIO(pair[0])), read_aag(io.StringIO(pair[1]))
        )

    def test_stats_track_lookups_and_stores(self, server, adder_pair):
        with ServiceClient(server.address) as client:
            baseline = client.cache_stats()
            assert baseline["entries"] == 0
            client.check(*adder_pair)  # miss, solve, store
            client.check(*adder_pair)  # hit
            stats = client.cache_stats()
        assert stats["entries"] == 1
        assert stats["stores"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1

    def test_probe_and_get_round_trip(self, server, adder_pair):
        key = self._key(adder_pair)
        with ServiceClient(server.address) as client:
            found, meta = client.cache_probe(key)
            assert (found, meta) == (False, None)
            client.check(*adder_pair)
            found, meta = client.cache_probe(key)
            assert found is True
            assert meta["verdict"] == "equivalent"
            document, got_meta = client.cache_get(key)
        assert got_meta["verdict"] == "equivalent"
        rebuilt = result_from_dict(document)
        assert rebuilt.equivalent is True
        certify(rebuilt)

    def test_get_miss_is_not_an_error(self, server):
        with ServiceClient(server.address) as client:
            assert client.cache_get("%040x" % 0xFEED) == (None, None)

    def test_put_installs_a_peer_entry_idempotently(
        self, server, adder_pair
    ):
        key = self._key(adder_pair)
        with ServiceClient(server.address) as client:
            client.check(*adder_pair)
            document, meta = client.cache_get(key)
            peer_key = "%040x" % 0xFEED
            assert client.cache_put(peer_key, document, meta=meta) is True
            assert client.cache_put(peer_key, document, meta=meta) is False
            found, put_meta = client.cache_probe(peer_key)
        assert found is True
        assert put_meta["verdict"] == "equivalent"

    def test_put_rejects_a_non_document(self, server):
        with ServiceClient(server.address) as client:
            with pytest.raises(ServiceError) as err:
                client.request(
                    {"verb": "cache-put", "key": "ab", "result": "nope"}
                )
        assert err.value.code == protocol.ERR_BAD_INPUT

    def test_blank_key_is_invalid(self, server):
        with ServiceClient(server.address) as client:
            with pytest.raises(ServiceError) as err:
                client.cache_get("")
        assert err.value.code == protocol.ERR_INVALID_REQUEST

    def test_cacheless_server_answers_err_no_cache(self, tmp_path):
        bare = CecServer(str(tmp_path / "bare.sock"), workers=0)
        bare.start()
        try:
            with ServiceClient(bare.address) as client:
                with pytest.raises(ServiceError) as err:
                    client.cache_stats()
        finally:
            bare.close()
        assert err.value.code == protocol.ERR_NO_CACHE


class TestQueueLimits:
    def test_queue_full_is_structured(self, tmp_path, adder_pair, big_pair):
        server = CecServer(
            str(tmp_path / "q.sock"), workers=0, queue_limit=1,
        )
        server.start()
        try:
            with ServiceClient(server.address) as client:
                slow = client.submit(*big_pair, time_limit=2.0)
                with pytest.raises(ServiceError) as excinfo:
                    client.submit(*adder_pair)
                assert excinfo.value.code == "queue-full"
                # The slow job still completes normally.
                response = client.result(slow["job"], wait=True)
                assert response["state"] == "done"
                stats = client.stats()
                assert stats["counters"]["service/queue-rejects"] == 1
        finally:
            server.close()

    def test_cancel_queued_job(self, tmp_path, big_pair, adder_pair):
        server = CecServer(
            str(tmp_path / "c.sock"), workers=0, queue_limit=4,
        )
        server.start()
        try:
            with ServiceClient(server.address) as client:
                slow = client.submit(*big_pair, time_limit=2.0)
                queued = client.submit(*adder_pair)
                cancelled = client.cancel(queued["job"])
                if cancelled["cancelled"]:
                    status = client.status(queued["job"])
                    assert status["state"] == "cancelled"
                    with pytest.raises(ServiceError) as excinfo:
                        client.result(queued["job"], wait=True)
                    assert excinfo.value.code == "cancelled"
                client.result(slow["job"], wait=True)
        finally:
            server.close()


class TestServerResilience:
    def test_cache_store_failure_still_finishes_job(
        self, server, adder_pair, monkeypatch
    ):
        def broken_store(key, result, meta=None):
            raise OSError("disk full")

        monkeypatch.setattr(server.cache, "store", broken_store)
        with ServiceClient(server.address) as client:
            # The job must still reach a terminal state with its
            # verdict and certificate; the cache failure is an
            # operational counter, not a job failure.
            result, response = client.check(*adder_pair)
            assert response["state"] == "done"
            assert response["verdict"] == "equivalent"
            certify(result)
            stats = client.stats()
        assert stats["counters"]["service/cache-store-failures"] == 1

    def test_terminal_jobs_evicted_end_to_end(self, tmp_path, adder_pair):
        server = CecServer(
            str(tmp_path / "e.sock"), workers=0, retain_jobs=1,
        )
        server.start()
        try:
            with ServiceClient(server.address) as client:
                first = client.submit(*adder_pair)
                client.result(first["job"], wait=True)
                second = client.submit(adder_pair[1], adder_pair[0])
                client.result(second["job"], wait=True)
                # Eviction happens in the second job's completion
                # callback, which may lag the result response briefly.
                deadline = time.time() + 5.0
                while True:
                    try:
                        client.status(first["job"])
                    except ServiceError as exc:
                        assert exc.code == "unknown-job"
                        break
                    assert time.time() < deadline, (
                        "old terminal job was never evicted"
                    )
                    time.sleep(0.02)
                assert client.status(second["job"])["state"] == "done"
        finally:
            server.close()


class TestClientRetrySemantics:
    def test_no_retry_after_request_sent(self):
        accepted = []
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(5)

        def serve(listener=listener):
            while True:
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return
                accepted.append(conn)
                # Read some request bytes, then drop the connection
                # without answering — the request may already be
                # executing server-side.
                try:
                    conn.recv(1)
                    conn.close()
                except OSError:
                    pass

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        host, port = listener.getsockname()
        client = ServiceClient(
            "%s:%d" % (host, port),
            timeout=2.0, retries=3, backoff=0.01,
        )
        try:
            with pytest.raises(OSError):
                client.ping()
        finally:
            client.close()
            listener.close()
        # The request was written once, so it must not be re-sent.
        assert len(accepted) == 1

    def test_connect_failures_exhaust_retries(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        client = ServiceClient(
            "127.0.0.1:%d" % port, retries=1, backoff=0.01,
        )
        with pytest.raises(OSError):
            client.ping()


class TestClientBackoff:
    def test_retry_delay_is_full_jitter_with_cap(self, monkeypatch):
        draws = []

        def fake_uniform(low, high):
            draws.append((low, high))
            return 0.0

        monkeypatch.setattr(
            "repro.service.client.random.uniform", fake_uniform
        )
        client = ServiceClient("127.0.0.1:1", backoff=0.2)
        for attempt in range(1, 7):
            client.retry_delay(attempt)
        assert all(low == 0.0 for low, _ in draws)
        ceilings = [high for _, high in draws]
        # Exponential doubling from the base, clamped at BACKOFF_CAP.
        assert ceilings == pytest.approx([0.2, 0.4, 0.8, 1.6, 3.2, 5.0])

    def test_connect_retries_ride_out_a_late_server(self, tmp_path):
        # Regression: a server that comes up *after* the first connect
        # attempt must be reached by the jittered retry loop rather
        # than surfacing the initial refused connection.
        sock_path = str(tmp_path / "late.sock")
        holder = {}

        def start_late():
            time.sleep(0.3)
            holder["server"] = CecServer(sock_path, workers=0)
            holder["server"].start()

        thread = threading.Thread(target=start_late)
        thread.start()
        try:
            with ServiceClient(
                sock_path, retries=60, backoff=0.05
            ) as client:
                assert client.ping()["ok"] is True
        finally:
            thread.join()
            holder["server"].close()


class TestServeCliSignals:
    def test_sigterm_shuts_down_cleanly(self, tmp_path):
        sock_path = tmp_path / "sig.sock"
        stats_path = tmp_path / "stats.json"
        src_dir = os.path.abspath(
            os.path.join(os.path.dirname(__file__), "..", "src")
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.service.serve_cli",
             "--listen", str(sock_path), "--workers", "0",
             "--stats-json", str(stats_path)],
            env=env, stderr=subprocess.PIPE,
        )
        try:
            client = ServiceClient(
                str(sock_path), retries=30, backoff=0.1,
            )
            with client:
                assert client.ping()["ok"] is True
            proc.send_signal(signal.SIGTERM)
            # Before the shutdown-via-thread fix this deadlocked:
            # the signal handler called server.shutdown() on the same
            # thread serve_forever was blocking.
            returncode = proc.wait(timeout=15)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
        assert returncode == 0
        report = validate_report(json.loads(stats_path.read_text()))
        assert report["meta"]["tool"] == "repro-serve"


class TestTcpAndProcessPool:
    def test_tcp_with_process_pool(self, adder_pair):
        server = CecServer("127.0.0.1:0", workers=2)
        server.start()
        try:
            with ServiceClient(server.address) as client:
                result, response = client.check(*adder_pair)
            assert response["verdict"] == "equivalent"
            certify(result)
        finally:
            server.close()

    def test_workers_forked_before_threads_start(self):
        # The fork-start pool is only safe because __init__'s warm-up
        # submit launches every worker while the server process is
        # still single-threaded (concurrency.fork-after-thread).
        server = CecServer("127.0.0.1:0", workers=2)
        try:
            processes = getattr(server._executor, "_processes", None)
            if processes is not None:  # CPython implementation detail
                assert len(processes) == 2
        finally:
            server.close()


class TestServerClose:
    def test_close_with_metrics_endpoint_is_idempotent(self):
        server = CecServer(
            "127.0.0.1:0", workers=0, metrics_address="127.0.0.1:0",
        )
        assert server.metrics_address is not None
        server.close()
        assert server.metrics_address is None
        server.close()  # second close must be a no-op

    def test_concurrent_close_and_metrics_reads(self):
        # close() swaps self._metrics_http under the lock; hammering
        # metrics_address from other threads while closing must never
        # raise on a half-torn-down endpoint.
        server = CecServer(
            "127.0.0.1:0", workers=0, metrics_address="127.0.0.1:0",
        )
        errors = []

        def read():
            for _ in range(200):
                try:
                    server.metrics_address
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

        readers = [threading.Thread(target=read) for _ in range(4)]
        for thread in readers:
            thread.start()
        server.close()
        for thread in readers:
            thread.join()
        assert errors == []


class TestRecorderThreadSafety:
    def test_concurrent_mutation_is_consistent(self):
        recorder = Recorder()
        rounds = 500
        threads = 8

        def hammer(index):
            for _ in range(rounds):
                recorder.count("service/jobs-submitted")
                recorder.add_time("service/job", 0.001)
                recorder.gauge("service/queue-depth", index)
                with recorder.phase("cache/lookup"):
                    pass

        workers = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(threads)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        report = validate_report(recorder.report())
        expected = rounds * threads
        assert report["counters"]["service/jobs-submitted"] == expected
        assert report["phases"]["service/job"]["count"] == expected
        assert report["phases"]["cache/lookup"]["count"] == expected

    def test_phase_stacks_are_thread_local(self):
        recorder = Recorder()
        seen = []
        barrier = threading.Barrier(2)

        def outer(name):
            with recorder.phase(name):
                barrier.wait(timeout=5)
                with recorder.phase("inner"):
                    pass
            seen.append(name)

        a = threading.Thread(
            target=outer, args=("service/check",), daemon=True
        )
        b = threading.Thread(
            target=outer, args=("service/certify",), daemon=True
        )
        a.start()
        b.start()
        a.join()
        b.join()
        phases = recorder.report()["phases"]
        # Each thread's inner phase nests under its own outer phase.
        assert "service/check/inner" in phases
        assert "service/certify/inner" in phases
        assert "service/check/certify" not in phases
        assert sorted(seen) == ["service/certify", "service/check"]


class TestResultDocumentFromWire:
    def test_wire_document_round_trips(self, server, adder_pair):
        with ServiceClient(server.address) as client:
            _, response = client.check(*adder_pair)
        rebuilt = result_from_dict(response["result"])
        assert result_to_dict(rebuilt) == response["result"]
