"""Tests for proof statistics and TraceCheck round-trip stability.

The round-trip tests write engine-produced proofs to TraceCheck, read
them back, and assert that both the statistics and the lint findings
are unchanged — on the raw (unlinted, untrimmed) proof as well as the
trimmed one the pipeline normally certifies.
"""

import pytest

from proof_corpus import base_store
from repro import check_equivalence
from repro.analyze import lint_proof
from repro.circuits import kogge_stone_adder, parity_chain, parity_tree, \
    ripple_carry_adder
from repro.proof.stats import core_axioms, proof_stats
from repro.proof.store import AXIOM
from repro.proof.tracecheck import read_tracecheck, write_tracecheck
from repro.proof.trim import trim


def stats_tuple(stats):
    return (
        stats.num_clauses, stats.num_axioms, stats.num_derived,
        stats.num_resolutions, stats.max_width, stats.avg_derived_width,
        stats.depth,
    )


def finding_summary(findings):
    """Sorted (rule, severity, clause_id) triples for comparison."""
    return sorted(
        (f.rule_id, f.severity, f.clause_id) for f in findings
    )


class TestProofStats:
    def test_base_store_exact(self):
        stats = proof_stats(base_store())
        assert stats.num_clauses == 6
        assert stats.num_axioms == 4
        assert stats.num_derived == 2
        assert stats.num_resolutions == 3
        assert stats.max_width == 2
        # Derived clauses are (-2,) and (); mean width 0.5.
        assert stats.avg_derived_width == pytest.approx(0.5)
        # Clause 5 builds on clause 4: two derivation levels.
        assert stats.depth == 2

    def test_empty_store(self):
        from repro.proof.store import ProofStore

        stats = proof_stats(ProofStore())
        assert stats_tuple(stats) == (0, 0, 0, 0, 0, 0.0, 0)

    def test_core_axioms(self):
        store = base_store()
        core = core_axioms(store)
        assert core == {0, 1, 2, 3}
        assert all(store.kind(cid) == AXIOM for cid in core)

    def test_trim_preserves_core(self):
        # Trim renumbers ids, so compare the referenced clauses.
        result = check_equivalence(parity_tree(5), parity_chain(5))
        trimmed, _ = trim(result.proof)
        raw_core = {
            result.proof.clause(cid) for cid in core_axioms(result.proof)
        }
        trimmed_core = {
            trimmed.clause(cid) for cid in core_axioms(trimmed)
        }
        assert trimmed_core == raw_core


class TestTracecheckRoundTrip:
    @pytest.mark.parametrize("trimmed", [False, True],
                             ids=["raw", "trimmed"])
    def test_stats_and_lint_stable(self, tmp_path, trimmed):
        result = check_equivalence(
            ripple_carry_adder(4), kogge_stone_adder(4)
        )
        proof = trim(result.proof)[0] if trimmed else result.proof
        path = str(tmp_path / "proof.tc")
        write_tracecheck(proof, path)
        reread, _ = read_tracecheck(path)

        assert stats_tuple(proof_stats(reread)) \
            == stats_tuple(proof_stats(proof))
        before = lint_proof(proof, cnf=result.cnf)
        after = lint_proof(reread, cnf=result.cnf)
        assert finding_summary(after) == finding_summary(before)
        assert not [f for f in after if f.severity == "error"]

    def test_clause_content_identical(self, tmp_path):
        store = base_store()
        path = str(tmp_path / "base.tc")
        write_tracecheck(store, path)
        reread, _ = read_tracecheck(path)
        assert len(reread) == len(store)
        for cid in store.ids():
            assert reread.clause(cid) == store.clause(cid)
            assert reread.kind(cid) == store.kind(cid)
