"""``repro-router``: run the fleet front door over repro-serve shards.

Examples::

    repro-router --listen 127.0.0.1:7700 \\
        --shard 127.0.0.1:7711 --shard 127.0.0.1:7712 \\
        --metrics 127.0.0.1:9200

    repro-router --listen /tmp/cec-router.sock \\
        --shard /tmp/cec-a.sock --shard /tmp/cec-b.sock --no-cache-fetch

Clients talk to the router exactly as they would to one
``repro-serve`` (``repro-client --connect 127.0.0.1:7700 ...``); the
router consistent-hashes each submit onto its shards, brokers
cross-shard proof-cache transfers, and keeps the hash ring aligned
with shard health. The process runs until SIGINT/SIGTERM or a client
``shutdown`` verb and then writes its ``repro-stats/1`` report to
``--stats-json`` when given.
"""

import argparse
import asyncio
import signal
import sys

from .. import __version__
from ..exit_codes import EXIT_INVALID_INPUT, EXIT_OK
from ..instrument import Recorder, configure_logging, get_logger
from .ring import DEFAULT_REPLICAS
from .router import (
    DEFAULT_DOWN_AFTER,
    DEFAULT_HEALTH_INTERVAL,
    DEFAULT_SHARD_TIMEOUT,
    FleetRouter,
)

log = get_logger("fleet.serve")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-router",
        description="Consistent-hash router fronting a fleet of "
        "repro-serve shards, with cross-shard proof-cache transfers "
        "and health-based ring rebalancing.",
    )
    parser.add_argument(
        "--listen", required=True, metavar="ADDR",
        help="address to serve clients on (host:port or socket path)",
    )
    parser.add_argument(
        "--shard", action="append", required=True, metavar="ADDR",
        dest="shards",
        help="backend repro-serve address (repeat once per shard)",
    )
    parser.add_argument(
        "--replicas", type=int, default=DEFAULT_REPLICAS, metavar="N",
        help="ring points per shard (default %(default)s; every router "
        "of a fleet must agree)",
    )
    parser.add_argument(
        "--health-interval", type=float,
        default=DEFAULT_HEALTH_INTERVAL, metavar="SECONDS",
        help="seconds between background shard pings "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--down-after", type=int, default=DEFAULT_DOWN_AFTER,
        metavar="N",
        help="consecutive failures before a shard leaves the ring "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--timeout", type=float, default=DEFAULT_SHARD_TIMEOUT,
        metavar="SECONDS",
        help="per-line timeout talking to a shard (default %(default)s)",
    )
    parser.add_argument(
        "--no-cache-fetch", action="store_true",
        help="disable the cross-shard cache transfer before submits",
    )
    parser.add_argument(
        "--metrics", metavar="HOST:PORT",
        help="serve Prometheus /metrics on this address",
    )
    parser.add_argument(
        "--stats-json", metavar="PATH",
        help="write the router's repro-stats/1 report here on exit",
    )
    parser.add_argument(
        "--log-level", default="info",
        choices=("debug", "info", "warning", "error"),
        help="log verbosity (default %(default)s)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit structured JSON log lines",
    )
    parser.add_argument(
        "--version", action="version",
        version="%(prog)s " + __version__,
    )
    return parser


async def _run_router(router):
    loop = asyncio.get_event_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, router.request_stop)
        except (NotImplementedError, RuntimeError):
            # Platforms without loop signal support fall back to the
            # default KeyboardInterrupt path.
            break
    await router.serve_forever()


def main(argv=None):
    args = build_parser().parse_args(argv)
    configure_logging(json_logs=args.log_json, level=args.log_level)
    recorder = Recorder()
    try:
        router = FleetRouter(
            args.listen,
            args.shards,
            replicas=args.replicas,
            cache_fetch=not args.no_cache_fetch,
            health_interval=args.health_interval,
            down_after=args.down_after,
            shard_timeout=args.timeout,
            recorder=recorder,
            metrics_address=args.metrics,
        )
    except ValueError as exc:
        print("repro-router: %s" % exc, file=sys.stderr)
        return EXIT_INVALID_INPUT
    try:
        asyncio.run(_run_router(router))
    except KeyboardInterrupt:
        pass
    except OSError as exc:
        print("repro-router: %s" % exc, file=sys.stderr)
        return EXIT_INVALID_INPUT
    if args.stats_json:
        recorder.write_json(args.stats_json)
        log.info("stats written to %s", args.stats_json)
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
