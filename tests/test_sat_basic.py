"""Basic CDCL solver tests: verdicts, models, small formulas."""

import itertools
import random

import pytest

from repro.sat import SAT, UNKNOWN, UNSAT, Solver, luby
from repro.proof import ProofStore, check_proof


def brute_force_sat(num_vars, clauses):
    for bits in itertools.product([False, True], repeat=num_vars):
        if all(
            any(bits[abs(lit) - 1] == (lit > 0) for lit in clause)
            for clause in clauses
        ):
            return True
    return False


def random_formula(rng, num_vars, num_clauses, max_width=3):
    clauses = []
    for _ in range(num_clauses):
        width = rng.randint(1, max_width)
        variables = rng.sample(range(1, num_vars + 1), min(width, num_vars))
        clauses.append(
            [v if rng.random() < 0.5 else -v for v in variables]
        )
    return clauses


class TestLuby:
    def test_prefix(self):
        assert [luby(i) for i in range(1, 16)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_invalid_index(self):
        with pytest.raises(ValueError):
            luby(0)


class TestTrivial:
    def test_empty_formula_sat(self):
        assert Solver().solve().status is SAT

    def test_single_unit(self):
        solver = Solver()
        solver.add_clause([3])
        result = solver.solve()
        assert result.status is SAT
        assert result.model_value(3) == 1
        assert result.model_value(-3) == 0

    def test_conflicting_units(self):
        solver = Solver()
        assert solver.add_clause([1])
        assert not solver.add_clause([-1])
        assert solver.solve().status is UNSAT

    def test_empty_clause(self):
        solver = Solver()
        assert not solver.add_clause([])
        assert solver.solve().status is UNSAT

    def test_tautology_skipped(self):
        solver = Solver()
        assert solver.add_clause([1, -1])
        assert solver.solve().status is SAT

    def test_duplicate_literals_collapsed(self):
        solver = Solver()
        solver.add_clause([2, 2, 2])
        result = solver.solve()
        assert result.model_value(2) == 1

    def test_model_of_unconstrained_var(self):
        solver = Solver()
        solver.ensure_vars(2)
        solver.add_clause([1])
        result = solver.solve()
        assert result.model_value(2) in (0, 1)

    def test_model_unavailable_on_unsat(self):
        solver = Solver()
        solver.add_clause([1])
        solver.add_clause([-1])
        result = solver.solve()
        with pytest.raises(ValueError):
            result.model()

    def test_result_truthiness(self):
        solver = Solver()
        solver.add_clause([1])
        assert solver.solve()
        solver.add_clause([-1])
        assert not solver.solve()


class TestSmallFormulas:
    def test_implication_chain(self):
        solver = Solver()
        for v in range(1, 20):
            solver.add_clause([-v, v + 1])
        solver.add_clause([1])
        result = solver.solve()
        assert result.status is SAT
        assert result.model_value(20) == 1

    def test_xor_chain_unsat(self):
        # x1 xor x2, x2 xor x3, x1 xor x3 with odd parity forced: UNSAT.
        solver = Solver()
        def xor_clauses(a, b, parity):
            if parity:
                return [[a, b], [-a, -b]]
            return [[-a, b], [a, -b]]
        for clause in xor_clauses(1, 2, 1) + xor_clauses(2, 3, 1) + \
                xor_clauses(1, 3, 1):
            solver.add_clause(clause)
        assert solver.solve().status is UNSAT

    def test_at_most_one(self):
        solver = Solver()
        solver.add_clause([1, 2, 3])
        for a, b in itertools.combinations([1, 2, 3], 2):
            solver.add_clause([-a, -b])
        result = solver.solve()
        assert result.status is SAT
        assert sum(result.model_value(v) for v in (1, 2, 3)) == 1


class TestRandomAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(8))
    def test_verdicts_match(self, seed):
        rng = random.Random(seed)
        for _ in range(40):
            num_vars = rng.randint(2, 8)
            clauses = random_formula(rng, num_vars, rng.randint(2, 35))
            expected = brute_force_sat(num_vars, clauses)
            solver = Solver()
            alive = True
            for clause in clauses:
                if not solver.add_clause(clause):
                    alive = False
                    break
            verdict = solver.solve().status if alive else UNSAT
            assert verdict == expected, clauses

    @pytest.mark.parametrize("seed", range(4))
    def test_models_satisfy(self, seed):
        rng = random.Random(100 + seed)
        for _ in range(30):
            num_vars = rng.randint(2, 10)
            clauses = random_formula(rng, num_vars, rng.randint(2, 25))
            solver = Solver()
            alive = all(solver.add_clause(c) for c in clauses)
            if not alive:
                continue
            result = solver.solve()
            if result.status is SAT:
                for clause in clauses:
                    assert any(result.model_value(lit) for lit in clause)


class TestPigeonhole:
    @staticmethod
    def php_clauses(pigeons):
        holes = pigeons - 1
        var = lambda p, h: p * holes + h + 1
        clauses = [
            [var(p, h) for h in range(holes)] for p in range(pigeons)
        ]
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    clauses.append([-var(p1, h), -var(p2, h)])
        return clauses

    @pytest.mark.parametrize("pigeons", [3, 4, 5, 6])
    def test_unsat(self, pigeons):
        solver = Solver()
        for clause in self.php_clauses(pigeons):
            solver.add_clause(clause)
        assert solver.solve().status is UNSAT

    def test_unsat_with_checked_proof(self):
        store = ProofStore()
        solver = Solver(proof=store)
        clauses = self.php_clauses(5)
        for clause in clauses:
            solver.add_clause(clause)
        assert solver.solve().status is UNSAT
        result = check_proof(store, axioms=clauses)
        assert result.empty_clause_id is not None


class TestBudget:
    def test_unknown_on_tiny_budget(self):
        solver = Solver()
        for clause in TestPigeonhole.php_clauses(7):
            solver.add_clause(clause)
        result = solver.solve(max_conflicts=3)
        assert result.status is UNKNOWN

    def test_solver_reusable_after_unknown(self):
        solver = Solver()
        for clause in TestPigeonhole.php_clauses(5):
            solver.add_clause(clause)
        assert solver.solve(max_conflicts=1).status is UNKNOWN
        assert solver.solve().status is UNSAT


class TestStats:
    def test_counters_move(self):
        solver = Solver()
        for clause in TestPigeonhole.php_clauses(5):
            solver.add_clause(clause)
        solver.solve()
        assert solver.stats.conflicts > 0
        assert solver.stats.decisions > 0
        assert solver.stats.propagations > 0

    def test_repr(self):
        assert "conflicts" in repr(Solver().stats)
