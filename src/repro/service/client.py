"""Client side of the CEC service: connection, retries, typed calls.

:class:`ServiceClient` speaks ``repro-service/1`` to a running
``repro-serve``. Each call opens (or reuses) one socket, writes one
request line, and reads response lines until the ``final`` one —
heartbeat lines streamed during a blocking ``result`` wait are handed
to the caller's ``on_update`` hook as they arrive, which is how the
CLI surfaces live per-job telemetry.

Transient *connect* failures (connection refused while the server is
still binding) are retried with exponentially capped **full-jitter**
backoff up to ``retries`` times: each delay is drawn uniformly from
``[0, min(backoff * 2**attempt, cap)]``, so a crowd of clients
reconnecting to a recovering server spreads out instead of stampeding
it in synchronized waves. Failures after the request may have been
written (a dropped connection, a read timeout) are never retried — the
server may already be executing the request, and re-sending a
non-idempotent verb like ``submit`` would duplicate solver work.
Protocol-level failures (``ok: false`` responses) are likewise never
retried — they are answers, raised as :class:`ServiceError` with the
server's stable error code.
"""

import random
import socket
import time

from ..core.serialize import result_from_dict
from ..instrument.tracing import (
    TraceContext,
    merge_trace_documents,
    new_span_id,
)
from . import protocol

DEFAULT_TIMEOUT = 60.0
DEFAULT_RETRIES = 3
DEFAULT_BACKOFF = 0.2
#: Ceiling of any single retry delay (seconds); the jittered draw never
#: exceeds it no matter how many attempts have failed.
BACKOFF_CAP = 5.0


class ServiceError(Exception):
    """A structured failure response from the server.

    Attributes:
        code: the server's stable error code (``ERR_*``).
        response: the full response object.
    """

    def __init__(self, response):
        error = response.get("error") or {}
        self.code = error.get("code", "unknown")
        self.response = response
        Exception.__init__(
            self, "%s: %s" % (self.code, error.get("message", "no message"))
        )


class ServiceClient:
    """One logical connection to a ``repro-serve`` instance.

    Args:
        address: ``host:port`` or Unix socket path.
        timeout: socket timeout per read (seconds). Blocking ``result``
            waits keep the socket alive via server heartbeats, so this
            bounds silence, not job duration.
        retries: connection attempts per request before giving up.
        backoff: base retry delay; attempt *n* sleeps a uniformly
            random duration in ``[0, min(backoff * 2**(n-1),
            BACKOFF_CAP)]`` (full jitter — no two clients share a
            retry schedule).

    Usable as a context manager; :meth:`close` drops the socket.
    """

    def __init__(
        self,
        address,
        timeout=DEFAULT_TIMEOUT,
        retries=DEFAULT_RETRIES,
        backoff=DEFAULT_BACKOFF,
    ):
        self.family, self.target = protocol.parse_address(address)
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self._sock = None
        self._reader = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _connect(self):
        if self.family == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.target)
        else:
            sock = socket.create_connection(
                self.target, timeout=self.timeout
            )
        self._sock = sock
        self._reader = sock.makefile("rb")

    def close(self):
        """Drop the connection (reopened on the next request)."""
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def request(self, message, on_update=None):
        """Send one request; return the final response object.

        Non-final (heartbeat) responses are passed to *on_update* and
        never returned. Raises :class:`ServiceError` on an ``ok: false``
        final response and ``OSError`` when the transport fails.

        Only *connect* failures are retried: once any request bytes may
        have been written, a transport failure (e.g. a read timeout) is
        raised immediately, because the server may already be executing
        the request and re-sending a non-idempotent verb such as
        ``submit`` would duplicate solver work.
        """
        last_error = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self.retry_delay(attempt))
            if self._sock is None:
                try:
                    self._connect()
                except OSError as exc:
                    last_error = exc
                    self.close()
                    continue
            try:
                return self._exchange(message, on_update)
            except OSError:
                self.close()
                raise
        raise last_error

    def retry_delay(self, attempt):
        """The jittered backoff before connect attempt *attempt* (>= 1).

        Full jitter: drawn uniformly from zero to the exponentially
        growing (capped) ceiling. A fixed schedule would march every
        waiting client back onto a recovering server in lockstep —
        exactly the stampede the cap-and-jitter draw disperses.
        """
        ceiling = min(self.backoff * (2 ** (attempt - 1)), BACKOFF_CAP)
        return random.uniform(0.0, ceiling)

    def _exchange(self, message, on_update):
        self._sock.sendall(protocol.encode(message))
        while True:
            line = self._reader.readline(protocol.MAX_LINE_BYTES + 1)
            if not line:
                raise ConnectionError("server closed the connection")
            response = protocol.decode(line)
            if not response.get("final", True):
                if on_update is not None:
                    on_update(response)
                continue
            if not response.get("ok"):
                raise ServiceError(response)
            return response

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------

    def ping(self):
        """Server identity block (version, protocol)."""
        return self.request({"verb": "ping"})

    def submit(
        self,
        aag_a,
        aag_b,
        options=None,
        time_limit=None,
        conflict_limit=None,
        certify=False,
        lint=False,
        jobs=None,
        trim=True,
        trace=None,
    ):
        """Submit one check (AIGER texts); returns the submit response.

        The response carries ``job`` (the id) and ``cached`` (True when
        the answer was served from the proof cache without running).

        *jobs* (with *certify*) asks the worker to replay the proof on
        that many checker processes (``0`` = one per CPU; the worker
        clamps to the CPUs it actually has).

        *trace* (a :class:`~repro.instrument.tracing.TraceContext` or
        its wire mapping) threads this client's trace through the
        server and its workers; the job's ``result`` response then
        carries the stitched ``repro-trace/1`` document.
        """
        message = {
            "verb": "submit",
            "aag_a": aag_a,
            "aag_b": aag_b,
            "certify": certify,
            "lint": lint,
            "trim": trim,
        }
        if jobs is not None:
            message["jobs"] = jobs
        if options:
            message["options"] = options
        if time_limit is not None:
            message["time_limit"] = time_limit
        if conflict_limit is not None:
            message["conflict_limit"] = conflict_limit
        if trace is not None:
            if isinstance(trace, TraceContext):
                trace = trace.to_wire()
            message["trace"] = trace
        return self.request(message)

    def status(self, job_id):
        """Status snapshot of a job."""
        return self.request({"verb": "status", "job": job_id})

    def result(self, job_id, wait=False, timeout=None, on_update=None):
        """Result of a job, optionally blocking until it is terminal."""
        message = {"verb": "result", "job": job_id, "wait": wait}
        if timeout is not None:
            message["timeout"] = timeout
        return self.request(message, on_update=on_update)

    def cancel(self, job_id):
        """Attempt to cancel a queued job."""
        return self.request({"verb": "cancel", "job": job_id})

    def progress(self, job_id=None):
        """Live progress: with *job_id*, that job's snapshot plus its
        latest ``repro-progress/1`` heartbeat (``progress`` is None
        until the worker's first emission); without, the server's
        listing of active and recently finished jobs plus the current
        queue depth."""
        message = {"verb": "progress"}
        if job_id is not None:
            message["job"] = job_id
        return self.request(message)

    def stats(self):
        """Server-level ``repro-stats/1`` report."""
        return self.request({"verb": "stats"})["stats"]

    def metrics(self):
        """Server metrics: ``(repro-metrics/1 doc, prometheus_text)``."""
        response = self.request({"verb": "metrics"})
        return response["metrics"], response.get("prometheus", "")

    def shutdown(self):
        """Ask the server to stop serving."""
        return self.request({"verb": "shutdown"})

    # ------------------------------------------------------------------
    # Cache verbs (repro-fleet/1)
    # ------------------------------------------------------------------

    def cache_stats(self):
        """The server's proof-cache statistics (entry count, hits...)."""
        return self.request({"verb": "cache"})

    def cache_probe(self, key):
        """Metadata probe for *key*: ``(found, meta)`` without the
        result document (the cheap half of an entry)."""
        response = self.request({"verb": "cache", "key": key})
        return bool(response.get("found")), response.get("meta")

    def cache_get(self, key):
        """Fetch the content-addressed result document stored under
        *key*, or ``None`` on a miss. Returns ``(result, meta)``."""
        response = self.request({"verb": "cache-get", "key": key})
        if not response.get("found"):
            return None, None
        return response.get("result"), response.get("meta")

    def cache_put(self, key, result, meta=None):
        """Install a result document under *key* (idempotent); True
        when a new entry was written."""
        message = {"verb": "cache-put", "key": key, "result": result}
        if meta is not None:
            message["meta"] = meta
        return bool(self.request(message).get("stored"))

    # ------------------------------------------------------------------
    # High-level
    # ------------------------------------------------------------------

    def check(self, aag_a, aag_b, on_update=None, recorder=None,
              **submit_kwargs):
        """Submit, wait, and decode: the one-call equivalence check.

        Returns ``(result, response)`` where *result* is a rebuilt
        :class:`~repro.core.cec.CecResult` (certifiable client-side)
        and *response* the final wire response (``cached``,
        ``job_stats``, ``worker_stats``...).

        With an enabled *recorder*, the whole round trip is traced: a
        ``client/request`` span is recorded locally, the trace context
        rides the submit request, and the server's stitched trace comes
        back merged with the client span under one trace id in
        ``response["trace"]``.
        """
        traced = recorder is not None and recorder.enabled
        if traced:
            context = recorder.start_trace()
            request_span = new_span_id()
            submit_kwargs.setdefault("trace", {
                "trace_id": context.trace_id, "parent_id": request_span,
            })
            start = time.time()
        submitted = self.submit(aag_a, aag_b, **submit_kwargs)
        response = self.result(
            submitted["job"], wait=True, on_update=on_update
        )
        if traced:
            elapsed = time.time() - start
            recorder.add_time("client/request", elapsed)
            recorder.add_span(
                "client/request", elapsed, ts=start,
                span_id=request_span, parent_id=context.parent_id,
                job=submitted.get("job"),
            )
            local = recorder.trace_report()
            server_trace = response.get("trace")
            if isinstance(server_trace, dict):
                local = merge_trace_documents(local, server_trace)
            response["trace"] = local
        return result_from_dict(response["result"]), response
