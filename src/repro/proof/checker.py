"""Independent resolution-proof checker.

The checker trusts nothing from the engines: it replays every derivation
chain with explicit literal-level resolution, optionally verifies the
axioms against a reference CNF, and confirms the proof culminates in the
empty clause. It shares only the tiny :func:`repro.proof.store.resolve`
primitive with the producer side (and that primitive is itself exercised
against a second, set-based implementation in the test suite).

Each clause's validation depends only on the *stored* antecedent clauses,
never on the antecedents having been validated first, so clauses can be
checked in any order — the basis of the multiprocessing pipeline in
:mod:`repro.proof.parallel`, reachable from here via ``jobs=N``.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable, Optional, Set

from .store import AXIOM, DERIVED, Chain, Clause, ProofError, ProofStore, \
    resolve


class CheckResult:
    """Outcome of a successful proof check.

    Attributes:
        num_axioms: axiom clauses seen.
        num_derived: derived clauses replayed.
        num_resolutions: total resolution steps replayed.
        empty_clause_id: id of the verified empty clause (``None`` when the
            check was run without requiring refutation).
    """

    def __init__(
        self,
        num_axioms: int,
        num_derived: int,
        num_resolutions: int,
        empty_clause_id: Optional[int],
    ) -> None:
        self.num_axioms = num_axioms
        self.num_derived = num_derived
        self.num_resolutions = num_resolutions
        self.empty_clause_id = empty_clause_id

    def __repr__(self) -> str:
        return (
            "CheckResult(axioms=%d, derived=%d, resolutions=%d, empty=%r)"
            % (
                self.num_axioms,
                self.num_derived,
                self.num_resolutions,
                self.empty_clause_id,
            )
        )


def check_clause(
    clause_id: int,
    clause: Clause,
    kind: str,
    chain: Optional[Chain],
    get_clause: Callable[[int], Clause],
    allowed: Optional[Set[Clause]],
) -> int:
    """Validate one proof clause; returns the resolution steps replayed.

    This is the unit of work shared verbatim by the sequential loop below
    and the parallel chunk workers, so both modes raise byte-identical
    :class:`~repro.proof.store.ProofError` messages for the same defect.

    Args:
        clause_id: the clause's id (for error reporting and the
            prior-reference check).
        clause: the claimed clause tuple.
        kind: ``AXIOM`` or ``DERIVED``.
        chain: the derivation chain (``None`` for axioms).
        get_clause: callable mapping a clause id to its stored tuple.
        allowed: optional frozen set of normalized axiom clauses.
    """
    if kind == AXIOM:
        if allowed is not None and clause not in allowed:
            raise ProofError(
                "axiom %d = %r is not a clause of the reference CNF"
                % (clause_id, clause),
                clause_id=clause_id,
                rule_id="proof.axiom-foreign",
            )
        return 0
    if kind == DERIVED:
        if chain is None:
            raise ProofError(
                "derived clause %d has no chain" % clause_id,
                clause_id=clause_id,
                rule_id="proof.chain-arity",
            )
        _require_prior(chain[0], clause_id, chain)
        current = get_clause(chain[0])
        steps = 0
        for pivot, antecedent_id in chain[1:]:
            _require_prior(antecedent_id, clause_id, chain)
            current = resolve(current, get_clause(antecedent_id), pivot)
            steps += 1
        if current != clause:
            raise ProofError(
                "clause %d claims %r but chain yields %r"
                % (clause_id, clause, current),
                clause_id=clause_id,
                rule_id="proof.chain-mismatch",
                chain=chain,
            )
        return steps
    raise ProofError(
        "clause %d has unknown kind %r" % (clause_id, kind),
        clause_id=clause_id,
        rule_id="proof.unknown-kind",
    )


def check_proof(
    store: ProofStore,
    axioms: Optional[Iterable[Iterable[int]]] = None,
    require_empty: bool = True,
    recorder: Optional[Any] = None,
    budget: Optional[Any] = None,
    jobs: Optional[int] = None,
) -> CheckResult:
    """Verify every derivation in *store*.

    Args:
        store: the :class:`~repro.proof.store.ProofStore` to verify.
        axioms: optional iterable of clauses (any literal order); when
            given, every axiom in the proof must belong to this set. Pass
            the original CNF's clauses to certify the refutation is *of
            that formula*.
        require_empty: when true, fail unless some clause is empty.
        recorder: optional
            :class:`~repro.instrument.recorder.Recorder`; records the
            replay timing (``check/replay``, or ``check/parallel-replay``
            under *jobs*) plus clause/resolution counters.
        budget: optional :class:`~repro.instrument.budget.Budget`,
            consulted every 256 clauses. A checker cannot degrade to a
            partial verdict, so exhaustion raises
            :class:`~repro.instrument.budget.BudgetExhausted` instead of
            returning.
        jobs: when > 1, replay derivation chunks on the persistent
            checker pool over a shared clause arena (``0`` means one
            per CPU); see :mod:`repro.proof.parallel`. The request is
            clamped to the CPUs available, and single-CPU hosts replay
            sequentially (the ``check/parallel_fallback`` gauge names
            the reason). Accepts and rejects exactly the same proofs as
            the sequential mode, with the same error for the smallest
            failing clause id. ``None`` or ``1`` checks sequentially.

    Returns:
        A :class:`CheckResult`.

    Raises:
        ProofError: on the first invalid derivation, foreign axiom, or
            (when *require_empty*) missing empty clause.
        BudgetExhausted: when *budget* runs out mid-replay.
    """
    if jobs is not None and jobs != 1:
        from .parallel import check_proof_parallel

        return check_proof_parallel(
            store, axioms=axioms, require_empty=require_empty,
            recorder=recorder, budget=budget, jobs=jobs,
        )
    instrumented = recorder is not None and recorder.enabled
    start = time.perf_counter() if instrumented else 0.0
    allowed = prepare_axioms(axioms)
    num_axioms = 0
    num_derived = 0
    num_resolutions = 0
    empty_id: Optional[int] = None
    get_clause = store.clause
    for clause_id in store.ids():
        if budget is not None and clause_id % 256 == 0:
            budget.check()
        clause = get_clause(clause_id)
        kind = store.kind(clause_id)
        if kind == AXIOM:
            num_axioms += 1
        else:
            num_derived += 1
        num_resolutions += check_clause(
            clause_id, clause, kind, store.chain(clause_id), get_clause,
            allowed,
        )
        if not clause and empty_id is None:
            empty_id = clause_id
    if require_empty and empty_id is None:
        raise ProofError(
            "proof does not derive the empty clause",
            rule_id="proof.no-refutation",
        )
    if instrumented:
        recorder.add_time("check/replay", time.perf_counter() - start)
        recorder.count("check/clauses", len(store))
        recorder.count("check/resolutions", num_resolutions)
    return CheckResult(num_axioms, num_derived, num_resolutions, empty_id)


def prepare_axioms(
    axioms: Optional[Iterable[Iterable[int]]],
) -> Optional[Set[Clause]]:
    """Normalize an axiom iterable into the membership set, or ``None``."""
    if axioms is None:
        return None
    return {tuple(sorted(set(clause))) for clause in axioms}


def _require_prior(
    antecedent_id: int, clause_id: int, chain: Optional[Chain] = None
) -> None:
    if not 0 <= antecedent_id < clause_id:
        raise ProofError(
            "clause %d references antecedent %d that is not prior"
            % (clause_id, antecedent_id),
            clause_id=clause_id,
            rule_id="proof.forward-ref",
            chain=chain,
        )


def check_refutation_of(store: ProofStore, cnf: Any) -> CheckResult:
    """Certify that *store* refutes exactly the formula *cnf*.

    Convenience wrapper over :func:`check_proof` taking a
    :class:`~repro.cnf.clause.CNF`.
    """
    return check_proof(store, axioms=cnf.clauses, require_empty=True)
