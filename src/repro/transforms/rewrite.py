"""Cut-based resynthesis.

A synthesis-style pass in the spirit of AIG rewriting: for selected
nodes, pick a k-feasible cut, take the node's local truth table over the
cut leaves, and re-implement the function with a Shannon/cofactor
decomposition (choosing the branch variable that maximizes sharing of
constant cofactors). Structural hashing makes re-implementation reuse
whatever already exists, so the pass can both shrink circuits and —
with randomized node selection — manufacture structurally diverse,
functionally identical variants for equivalence-checking benchmarks.
"""

import random

from ..aig.aig import AIG
from ..aig.cuts import enumerate_cuts
from ..aig.literal import FALSE, TRUE, lit_not, lit_not_cond


def synthesize_table(aig, table, leaf_lits):
    """Build a literal computing *table* over *leaf_lits* in *aig*.

    Shannon decomposition on the variable whose cofactors are simplest
    (constants preferred), with memoization on (table, leaves). Tables
    are LSB-first over the leaf order.

    Args:
        aig: target AIG (nodes are added through its strash tables).
        table: truth table over ``len(leaf_lits)`` variables.
        leaf_lits: literal of each table variable.

    Returns:
        The AIG literal implementing the function.
    """
    cache = {}

    def build(tab, lits):
        count = len(lits)
        mask = (1 << (1 << count)) - 1
        tab &= mask
        if tab == 0:
            return FALSE
        if tab == mask:
            return TRUE
        if count == 1:
            return lits[0] if tab == 0b10 else lit_not(lits[0])
        key = (tab, tuple(lits))
        hit = cache.get(key)
        if hit is not None:
            return hit
        # Pick the branch variable with the most decided cofactors.
        best = None
        for position in range(count):
            neg, pos = _cofactors(tab, count, position)
            sub_mask = (1 << (1 << (count - 1))) - 1
            score = sum(
                1 for c in (neg, pos) if c == 0 or c == sub_mask
            )
            equal = neg == pos
            rank = (2 if equal else score, -position)
            if best is None or rank > best[0]:
                best = (rank, position, neg, pos)
        _, position, neg, pos = best
        rest = lits[:position] + lits[position + 1:]
        if neg == pos:
            result = build(neg, rest)
        else:
            sel = lits[position]
            hi = build(pos, rest)
            lo = build(neg, rest)
            result = aig.add_mux(sel, hi, lo)
        cache[key] = result
        return result

    return build(table, list(leaf_lits))


def _cofactors(table, count, position):
    """Negative/positive cofactors of *table* w.r.t. variable *position*."""
    neg = 0
    pos = 0
    for minterm in range(1 << count):
        bit = (table >> minterm) & 1
        if not bit:
            continue
        reduced = _drop_bit(minterm, position)
        if (minterm >> position) & 1:
            pos |= 1 << reduced
        else:
            neg |= 1 << reduced
    return neg, pos


def _drop_bit(value, position):
    low = value & ((1 << position) - 1)
    high = value >> (position + 1)
    return low | (high << position)


def rewrite(aig, k=4, selection=1.0, seed=0):
    """Resynthesize *aig* by cut-based Shannon re-implementation.

    Args:
        aig: source circuit (unchanged).
        k: cut size (2..6).
        selection: probability that an eligible node is resynthesized
            from its largest non-trivial cut (1.0 = every node). Values
            below 1 give reproducibly *randomized* restructurings.
        seed: RNG seed for the selection.

    Returns:
        A functionally identical AIG.
    """
    if not 2 <= k <= 6:
        raise ValueError("k must be between 2 and 6")
    rng = random.Random(seed)
    cuts = enumerate_cuts(aig, k=k)
    new = AIG(aig.name + "~rw" if aig.name else "rewritten")
    lit_map = [None] * aig.num_vars
    lit_map[0] = 0
    for var, name in zip(aig.inputs, aig.input_names):
        lit_map[var] = new.add_input(name)

    def mapped(lit):
        return lit_not_cond(lit_map[lit >> 1], lit & 1)

    for var in aig.and_vars():
        chosen = None
        if rng.random() < selection:
            # The widest non-trivial cut: the deepest restructuring.
            candidates = [
                cut for cut in cuts[var] if cut.leaves != (var,)
            ]
            if candidates:
                chosen = max(candidates, key=lambda c: len(c.leaves))
        if chosen is None:
            f0, f1 = aig.fanins(var)
            lit_map[var] = new.add_and(mapped(f0), mapped(f1))
        else:
            leaf_lits = [mapped(2 * leaf) for leaf in chosen.leaves]
            lit_map[var] = synthesize_table(new, chosen.table, leaf_lits)
    for lit, name in zip(aig.outputs, aig.output_names):
        new.add_output(mapped(lit), name)
    result, _ = new.rebuild()
    return result
