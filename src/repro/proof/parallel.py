"""Parallel resolution-proof checking.

Replaying a derivation chain needs only the *stored* clauses of its
antecedents — never the result of having validated them first — so every
clause of a proof can be checked independently. This module exploits
that: it topologically levelizes the proof's antecedent DAG (a sanity
and statistics pass that also bounds the critical replay path), flattens
the levels into a deterministic schedule, and farms fixed-size chunks of
clause ids out to a ``multiprocessing`` pool.

Design points:

* **Zero-copy workers where possible.** On platforms with ``fork`` the
  proof arrays are published in a module global before the pool starts,
  so workers inherit them copy-on-write and chunk dispatch ships only id
  lists. Start methods without ``fork`` fall back to pickling the arrays
  once per worker through the pool initializer.
* **Deterministic error reporting.** Workers never raise across the
  process boundary; each returns its smallest failing clause id (with
  the exact message the sequential checker would produce — both modes
  share :func:`repro.proof.checker.check_clause`). The parent raises for
  the globally smallest failing id, which is precisely the clause the
  sequential checker would have stopped at.
* **Sequential fallback.** Small proofs (below *min_clauses*), ``jobs``
  resolving to one worker, and pool-creation failures all degrade to the
  plain sequential checker — same verdict, just no speedup.

The public entry point is :func:`check_proof_parallel`, normally reached
through ``repro.proof.checker.check_proof(..., jobs=N)`` or the
``--jobs`` CLI flags.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Iterable, List, Optional, Tuple

from .checker import CheckResult, check_clause, prepare_axioms
from .store import AXIOM, ProofError, ProofStore
from .trim import levelize

# Proofs smaller than this replay sequentially: pool startup costs more
# than the replay itself.
DEFAULT_MIN_CLAUSES = 4096

# Clause ids per dispatched chunk. Large enough that per-chunk dispatch
# overhead is noise, small enough that a 50k-clause proof still spreads
# over every worker.
DEFAULT_CHUNK_SIZE = 2048

# Worker-side proof arrays: (clauses, kinds, chains, allowed).
# Published before the pool starts so fork-based workers inherit the
# data without any pickling; spawn-based workers receive the same tuple
# through _init_worker.
_SHARED: Optional[Tuple[Any, Any, Any, Any]] = None

# One worker error: (clause_id, message, rule_id).
_WorkerError = Tuple[int, str, Optional[str]]
_ChunkResult = Tuple[Optional[_WorkerError], int, int, int, Optional[int]]


def _init_worker(state: Tuple[Any, Any, Any, Any]) -> None:
    global _SHARED
    _SHARED = state


def _check_chunk(bounds: Tuple[int, int]) -> _ChunkResult:
    """Validate one ``[lo, hi)`` chunk of ids against the shared arrays.

    Returns ``(error, num_axioms, num_derived, num_resolutions,
    empty_id)`` where *error* is ``None`` or ``(clause_id, message,
    rule_id)`` for the smallest failing id in the chunk.
    """
    lo, hi = bounds
    assert _SHARED is not None
    clauses, kinds, chains, allowed = _SHARED
    get_clause = clauses.__getitem__
    num_axioms = 0
    num_derived = 0
    num_resolutions = 0
    empty_id = None
    for clause_id in range(lo, hi):
        clause = clauses[clause_id]
        kind = kinds[clause_id]
        if kind == AXIOM:
            num_axioms += 1
        else:
            num_derived += 1
        try:
            num_resolutions += check_clause(
                clause_id, clause, kind, chains[clause_id], get_clause,
                allowed,
            )
        except ProofError as exc:
            return (
                (clause_id, str(exc), exc.rule_id),
                num_axioms, num_derived, num_resolutions, empty_id,
            )
        if not clause and empty_id is None:
            empty_id = clause_id
    return None, num_axioms, num_derived, num_resolutions, empty_id


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``jobs`` request to a worker count (``0`` = per CPU)."""
    if jobs is None:
        return 1
    if jobs < 0:
        raise ValueError("jobs must be >= 0")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _chunk_schedule(store: ProofStore, chunk_size: int) -> List[Tuple[int, int]]:
    """Deterministic chunk list over the proof's topological order.

    Insertion order *is* a topological order of the antecedent DAG (the
    store rejects non-prior references at append time, and the workers
    re-validate them clause by clause), so chunks are plain contiguous
    ``(lo, hi)`` id ranges — the cheapest possible thing to ship to a
    worker. :func:`~repro.proof.trim.levelize` supplies the DAG's shape
    separately: its level count is the critical replay path, reported as
    the ``check/levels`` gauge on instrumented runs.
    """
    size = len(store)
    return [
        (lo, min(lo + chunk_size, size)) for lo in range(0, size, chunk_size)
    ]


def check_proof_parallel(
    store: ProofStore,
    axioms: Optional[Iterable[Iterable[int]]] = None,
    require_empty: bool = True,
    recorder: Optional[Any] = None,
    budget: Optional[Any] = None,
    jobs: Optional[int] = 0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    min_clauses: int = DEFAULT_MIN_CLAUSES,
) -> CheckResult:
    """Verify *store* like ``check_proof``, replaying chunks in parallel.

    Accepts and rejects exactly the same proofs as the sequential
    checker and raises the same :class:`ProofError` (message and
    ``clause_id``) for the smallest failing clause id. See the module
    docstring for the execution model.

    Args:
        store: the :class:`~repro.proof.store.ProofStore` to verify.
        axioms: optional reference axiom set (as in ``check_proof``).
        require_empty: when true, fail unless some clause is empty.
        recorder: optional recorder; the pool replay is charged to
            ``check/parallel-replay`` and the worker/level/chunk shape
            lands in ``check/*`` gauges.
        budget: optional budget, consulted as chunk results arrive.
        jobs: worker processes (``0`` = one per CPU, ``None``/``1`` =
            sequential).
        chunk_size: clause ids per dispatched chunk.
        min_clauses: proofs smaller than this replay sequentially.

    Returns:
        A :class:`~repro.proof.checker.CheckResult`.
    """
    from .checker import check_proof  # late import: two-way module pair

    workers = resolve_jobs(jobs)
    fallback = None
    if workers <= 1:
        fallback = "jobs"
    elif len(store) < min_clauses:
        fallback = "small_proof"
    if fallback is not None:
        if recorder is not None and recorder.enabled:
            recorder.gauge("check/parallel_fallback", fallback)
        return check_proof(
            store, axioms=axioms, require_empty=require_empty,
            recorder=recorder, budget=budget,
        )

    instrumented = recorder is not None and recorder.enabled
    start = time.perf_counter() if instrumented else 0.0
    allowed = prepare_axioms(axioms)
    chunks = _chunk_schedule(store, chunk_size)
    num_levels = len(levelize(store)) if instrumented else None
    state = (
        [store.clause(i) for i in store.ids()],
        [store.kind(i) for i in store.ids()],
        [store.chain(i) for i in store.ids()],
        allowed,
    )

    global _SHARED
    try:
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
            _SHARED = state
            pool = context.Pool(processes=workers)
        else:
            context = multiprocessing.get_context()
            pool = context.Pool(
                processes=workers, initializer=_init_worker,
                initargs=(state,),
            )
    except (OSError, ValueError) as exc:
        _SHARED = None
        if recorder is not None and recorder.enabled:
            recorder.gauge("check/parallel_fallback", "pool: %s" % exc)
        return check_proof(
            store, axioms=axioms, require_empty=require_empty,
            recorder=recorder, budget=budget,
        )

    errors: List[_WorkerError] = []
    num_axioms = 0
    num_derived = 0
    num_resolutions = 0
    empty_id: Optional[int] = None
    try:
        with pool:
            for result in pool.imap_unordered(_check_chunk, chunks):
                if budget is not None:
                    budget.check()
                error, axs, der, res, empty = result
                if error is not None:
                    errors.append(error)
                num_axioms += axs
                num_derived += der
                num_resolutions += res
                if empty is not None and (empty_id is None or empty < empty_id):
                    empty_id = empty
    finally:
        _SHARED = None

    if errors:
        clause_id, message, rule_id = min(
            errors, key=lambda error: error[0]
        )
        raise ProofError(message, clause_id=clause_id, rule_id=rule_id)
    if require_empty and empty_id is None:
        raise ProofError(
            "proof does not derive the empty clause",
            rule_id="proof.no-refutation",
        )
    if instrumented:
        recorder.add_time(
            "check/parallel-replay", time.perf_counter() - start,
            count=len(chunks),
        )
        recorder.count("check/clauses", len(store))
        recorder.count("check/resolutions", num_resolutions)
        recorder.gauge("check/jobs", workers)
        recorder.gauge("check/levels", num_levels)
        recorder.gauge("check/chunks", len(chunks))
    return CheckResult(num_axioms, num_derived, num_resolutions, empty_id)
