"""Differential tests: flat-arena ``Solver`` vs. ``ReferenceSolver``.

The cache-conscious rewrite must be *trajectory-identical* to the
retained pre-rewrite implementation: same decisions, same propagation
order, same learned clauses, and therefore byte-identical trimmed
resolution proofs. These tests drive both solvers over a deterministic
corpus — adder/comparator miters, non-equivalent mutants, the proof
corpus's base formula, assumption solves, and the committed add24
miter — and assert verdict, model, statistics, and proof equality, plus
``check_proof`` replay of every refutation.
"""

from pathlib import Path

import pytest

from proof_corpus import base_cnf
from repro.aig import lit_not
from repro.aig.miter import build_miter
from repro.circuits import kogge_stone_adder, ripple_carry_adder
from repro.cnf.dimacs import read_dimacs
from repro.cnf.tseitin import tseitin_encode
from repro.proof import ProofStore, check_proof
from repro.proof.tracecheck import dumps_tracecheck
from repro.proof.trim import trim
from repro.sat.reference import ReferenceSolver
from repro.sat.solver import SAT, UNSAT, Solver

ADD24_CNF = Path(__file__).resolve().parent.parent / "examples" / "data" \
    / "add24_miter.cnf"


def miter_clauses(aig_a, aig_b):
    """CNF clause list asserting the miter output (SAT = not equivalent)."""
    miter = build_miter(aig_a, aig_b)
    enc = tseitin_encode(miter.aig)
    clauses = list(enc.cnf.clauses)
    clauses.append([enc.lit_to_cnf(miter.output)])
    return clauses


def mutant(width):
    """A ripple-carry adder with its top output negated."""
    aig = ripple_carry_adder(width).copy()
    aig.set_output(0, lit_not(aig.outputs[0]))
    return aig


def run_solver(cls, clauses, assumptions=(), proof=False):
    store = ProofStore() if proof else None
    solver = cls(proof=store)
    alive = True
    for clause in clauses:
        if not solver.add_clause(clause):
            alive = False
            break
    outcome = {
        "alive": alive,
        "stats": None,
        "status": None,
        "model": None,
        "final": None,
        "store": store,
        "unsat_proof_id": None,
    }
    if alive:
        result = solver.solve(assumptions=list(assumptions))
        outcome["status"] = result.status
        outcome["final"] = result.final_clause
        if result.status is SAT:
            outcome["model"] = tuple(
                result.model_value(var)
                for var in range(1, solver.num_vars + 1)
            )
        if result.status is UNSAT and store is not None:
            outcome["unsat_proof_id"] = result.proof_id
    else:
        # Level-0 refutation during loading (same convention as the
        # monolithic baseline): the formula is UNSAT.
        outcome["status"] = UNSAT
    outcome["stats"] = repr(solver.stats)
    return outcome


def assert_identical(clauses, assumptions=(), proof=False, axioms=None):
    new = run_solver(Solver, clauses, assumptions, proof)
    ref = run_solver(ReferenceSolver, clauses, assumptions, proof)
    assert new["alive"] == ref["alive"]
    assert new["status"] == ref["status"]
    assert new["model"] == ref["model"]
    assert new["final"] == ref["final"]
    assert new["stats"] == ref["stats"], \
        "trajectory diverged: %s vs %s" % (new["stats"], ref["stats"])
    if proof and new["status"] is UNSAT and not assumptions:
        new_trim, _ = trim(new["store"])
        ref_trim, _ = trim(ref["store"])
        new_text = dumps_tracecheck(new_trim)
        assert new_text == dumps_tracecheck(ref_trim), \
            "trimmed proofs are not byte-identical"
        replay_axioms = axioms if axioms is not None else clauses
        check_proof(new_trim, axioms=replay_axioms)
        check_proof(ref_trim, axioms=replay_axioms)
    return new, ref


class TestEquivalentMiters:
    @pytest.mark.parametrize("width", [2, 4, 8])
    def test_adder_miters_unsat(self, width):
        clauses = miter_clauses(
            ripple_carry_adder(width), kogge_stone_adder(width)
        )
        new, _ = assert_identical(clauses, proof=True)
        assert new["status"] is UNSAT

    def test_committed_add24_miter(self):
        cnf = read_dimacs(str(ADD24_CNF))
        new, _ = assert_identical(list(cnf.clauses), proof=True)
        assert new["status"] is UNSAT


class TestNonEquivalentMutants:
    @pytest.mark.parametrize("width", [2, 4, 6])
    def test_mutant_miters_sat_same_model(self, width):
        clauses = miter_clauses(ripple_carry_adder(width), mutant(width))
        new, ref = assert_identical(clauses, proof=True)
        assert new["status"] is SAT
        assert new["model"] is not None
        assert new["model"] == ref["model"]

    def test_cross_width_structures(self):
        # rca vs. ks with one ks output negated: SAT with a proof store
        # attached (proof logging must not perturb the trajectory).
        aig_b = kogge_stone_adder(4).copy()
        aig_b.set_output(2, lit_not(aig_b.outputs[2]))
        clauses = miter_clauses(ripple_carry_adder(4), aig_b)
        new, _ = assert_identical(clauses, proof=True)
        assert new["status"] is SAT


class TestProofCorpusInputs:
    def test_base_cnf_refutation(self):
        clauses = [list(c) for c in base_cnf().clauses]
        new, _ = assert_identical(clauses, proof=True)
        assert new["status"] is UNSAT

    def test_base_cnf_under_assumptions(self):
        clauses = [list(c) for c in base_cnf().clauses[:2]]  # (1 2), (-1 2)
        new, _ = assert_identical(clauses, assumptions=[-2], proof=True)
        assert new["status"] is UNSAT
        assert new["final"] is not None

    def test_empty_clause_via_units(self):
        new, _ = assert_identical([[1], [-1]], proof=True)
        assert new["alive"] is False


class TestAssumptionSolves:
    def test_sat_under_assumptions(self):
        clauses = miter_clauses(ripple_carry_adder(3), kogge_stone_adder(3))
        # Assuming the first CNF variable true/false must not change the
        # UNSAT verdict and must agree on the final conflict clause.
        for assumption in ([1], [-1], [1, 2]):
            new, ref = assert_identical(clauses, assumptions=assumption)
            assert new["status"] == ref["status"]

    def test_conflict_budget_agreement(self):
        clauses = miter_clauses(ripple_carry_adder(8), kogge_stone_adder(8))

        def run(cls):
            solver = cls()
            for clause in clauses:
                solver.add_clause(clause)
            result = solver.solve(max_conflicts=20)
            return result.status, repr(solver.stats)

        assert run(Solver) == run(ReferenceSolver)
