"""Tests for the schema-drift rules and the schema registry itself."""

from repro.analyze import schemas
from repro.analyze.schema_drift import lint_package, lint_sources
from repro.service import protocol


def lint_one(source, filename="x.py"):
    """Per-file rules only (no cross-file dead-key sweep)."""
    return lint_sources([(filename, source)], dead_keys=False)


def hits(source, rule_id):
    return [f for f in lint_one(source) if f.rule_id == rule_id]


class TestVersionLiterals:
    def test_inline_registered_tag_fires_once(self):
        findings = hits('TAG = "repro-stats/1"\n', "schema.inline-version")
        assert len(findings) == 1
        assert "repro-stats/1" in findings[0].message

    def test_unknown_tag_fires_once(self):
        findings = hits('TAG = "repro-bogus/9"\n', "schema.unknown-version")
        assert len(findings) == 1

    def test_docstring_mention_is_exempt(self):
        assert lint_one('"""repro-stats/1"""\n') == []

    def test_prose_containing_tag_is_exempt(self):
        # Only the exact tag shape matches, never a sentence around it.
        assert lint_one('MSG = "expected a repro-stats/1 report"\n') == []

    def test_registry_module_itself_is_exempt(self):
        source = 'STATS_SCHEMA = "repro-stats/1"\n'
        label = "repro/analyze/schemas.py"
        assert lint_sources([(label, source)], dead_keys=False) == []


class TestDocumentLiterals:
    def test_undeclared_key_fires_once(self):
        source = (
            "from repro.analyze.schemas import TRACE_SCHEMA\n"
            "\n"
            "doc = {'schema': TRACE_SCHEMA, 'trace_id': t, 'spans': [],\n"
            "       'extra': 1}\n"
        )
        findings = hits(source, "schema.undeclared-key")
        assert len(findings) == 1
        assert "'extra'" in findings[0].message

    def test_missing_required_key_fires_once(self):
        source = (
            "from repro.analyze.schemas import TRACE_SCHEMA\n"
            "\n"
            "doc = {'schema': TRACE_SCHEMA, 'trace_id': t}\n"
        )
        findings = hits(source, "schema.missing-key")
        assert len(findings) == 1
        assert "'spans'" in findings[0].message

    def test_spread_suppresses_missing_key(self):
        # A **spread can supply anything; only fully-literal documents
        # can be checked for completeness.
        source = (
            "from repro.analyze.schemas import TRACE_SCHEMA\n"
            "\n"
            "doc = {'schema': TRACE_SCHEMA, **rest}\n"
        )
        assert hits(source, "schema.missing-key") == []

    def test_complete_document_is_clean(self):
        source = (
            "from repro.analyze.schemas import TRACE_SCHEMA\n"
            "\n"
            "doc = {'schema': TRACE_SCHEMA, 'trace_id': t, 'spans': []}\n"
        )
        assert lint_one(source) == []

    def test_historical_alias_resolves(self):
        # PROTOCOL_SCHEMA is the service tag's historical alias; a dict
        # keyed on it must check against the service spec.
        source = "doc = {'schema': PROTOCOL_SCHEMA, 'bogus': 1}\n"
        findings = hits(source, "schema.undeclared-key")
        assert len(findings) == 1


class TestServiceRequests:
    def test_unknown_verb_fires_once(self):
        source = "req = {'verb': 'frobnicate', 'job': job_id}\n"
        findings = hits(source, "schema.unknown-verb")
        assert len(findings) == 1
        assert "frobnicate" in findings[0].message

    def test_undeclared_request_key_fires_once(self):
        source = "req = {'verb': 'status', 'jobb': 1}\n"
        findings = hits(source, "schema.undeclared-key")
        assert len(findings) == 1
        assert "'jobb'" in findings[0].message

    def test_valid_request_is_clean(self):
        source = "req = {'verb': 'result', 'job': job_id, 'wait': True}\n"
        assert lint_one(source) == []

    def test_builder_unknown_verb_fires_once(self):
        source = "resp = ok_response('frobnicate')\n"
        assert len(hits(source, "schema.unknown-verb")) == 1

    def test_builder_undeclared_field_fires_once(self):
        source = "resp = ok_response('ping', bogus_field=1)\n"
        findings = hits(source, "schema.undeclared-key")
        assert len(findings) == 1
        assert "bogus_field" in findings[0].message

    def test_builder_declared_fields_are_clean(self):
        source = "resp = ok_response('status', job=j, state=s)\n"
        assert lint_one(source) == []


class TestFleetRequests:
    """Router-side drift: the ``repro-fleet/1`` cache verbs."""

    def test_unknown_cache_verb_fires_once(self):
        source = "req = {'verb': 'cache-del', 'key': key}\n"
        findings = hits(source, "schema.unknown-verb")
        assert len(findings) == 1
        assert "cache-del" in findings[0].message

    def test_undeclared_fleet_request_key_fires_once(self):
        # A cache probe carrying circuit payloads is a routing bug:
        # only submit ships AIGs, the fleet verbs ship keys.
        source = "req = {'verb': 'cache', 'aag_a': text}\n"
        findings = hits(source, "schema.undeclared-key")
        assert len(findings) == 1
        assert "'aag_a'" in findings[0].message

    def test_cache_get_request_is_clean(self):
        source = "req = {'verb': 'cache-get', 'key': key}\n"
        assert lint_one(source) == []

    def test_cache_put_request_is_clean(self):
        source = (
            "req = {'verb': 'cache-put', 'key': key,"
            " 'result': doc, 'meta': meta}\n"
        )
        assert lint_one(source) == []

    def test_fleet_builder_undeclared_field_fires_once(self):
        source = "resp = fleet_response('cache-get', bogus=1)\n"
        findings = hits(source, "schema.undeclared-key")
        assert len(findings) == 1
        assert "bogus" in findings[0].message

    def test_fleet_builder_unknown_verb_fires_once(self):
        source = "resp = fleet_response('cache-del')\n"
        assert len(hits(source, "schema.unknown-verb")) == 1

    def test_fleet_builder_declared_fields_are_clean(self):
        source = (
            "resp = fleet_response('cache', key=key, found=True,"
            " meta=meta)\n"
        )
        assert lint_one(source) == []


class TestDeadKeys:
    SPECS = {
        "repro-test/1": schemas.SchemaSpec(
            "repro-test/1",
            required=("schema", "used"),
            optional=("unused",),
        ),
    }

    def test_never_observed_key_warns_once(self):
        source = "doc = {'schema': 'repro-test/1', 'used': 1}\n"
        findings = [
            f for f in lint_sources([("x.py", source)], specs=self.SPECS)
            if f.rule_id == "schema.dead-key"
        ]
        assert len(findings) == 1
        assert "'unused'" in findings[0].message
        assert findings[0].severity == "warning"

    def test_subscript_read_counts_as_usage(self):
        source = (
            "doc = {'schema': 'repro-test/1', 'used': 1}\n"
            "x = doc['unused']\n"
        )
        findings = lint_sources([("x.py", source)], specs=self.SPECS)
        assert [f for f in findings if f.rule_id == "schema.dead-key"] == []

    def test_get_read_counts_as_usage(self):
        source = (
            "doc = {'schema': 'repro-test/1', 'used': 1}\n"
            "x = doc.get('unused')\n"
        )
        findings = lint_sources([("x.py", source)], specs=self.SPECS)
        assert [f for f in findings if f.rule_id == "schema.dead-key"] == []


class TestPragmas:
    def test_pragma_waives_listed_rules(self):
        source = (
            "doc = {'schema': 'repro-trace/1'}"
            "  # repro-lint: ignore[schema.inline-version,"
            " schema.missing-key]\n"
        )
        assert lint_one(source) == []

    def test_pragma_keeps_unlisted_rules(self):
        source = (
            "doc = {'schema': 'repro-trace/1'}"
            "  # repro-lint: ignore[schema.inline-version]\n"
        )
        findings = lint_one(source)
        assert [f.rule_id for f in findings] == ["schema.missing-key"]


class TestRegistry:
    def test_constants_map_onto_registered_schemas(self):
        for name, tag in schemas.SCHEMA_CONSTANTS.items():
            assert tag in schemas.SCHEMAS, name
            assert schemas.constant_tag(name) == tag

    def test_spec_for_unknown_tag_is_none(self):
        assert schemas.spec_for("repro-bogus/9") is None

    def test_protocol_reexports_registry(self):
        assert protocol.PROTOCOL_SCHEMA == schemas.SERVICE_SCHEMA
        assert protocol.VERBS == frozenset(schemas.SERVICE_VERBS)

    def test_every_schema_requires_its_tag_key(self):
        for spec in schemas.SCHEMAS.values():
            assert "schema" in spec.required, spec.tag
            assert not (spec.required & spec.optional), spec.tag

    def test_lint_report_matches_registry(self):
        from repro.analyze.findings import LintReport

        spec = schemas.spec_for(schemas.LINT_SCHEMA)
        report = LintReport().report()
        assert set(report) == spec.required

    def test_repro_package_is_clean(self):
        findings = lint_package()
        assert findings == [], [f.render() for f in findings]


class TestObservabilityDocuments:
    """Known-bad fixtures for the PR-10 observability schemas: the
    drift rules must gate ``repro-progress/1`` and ``repro-obs/1``
    documents exactly like the older tags."""

    def test_progress_undeclared_key_fires_once(self):
        source = (
            "from repro.analyze.schemas import PROGRESS_SCHEMA\n"
            "\n"
            "doc = {'schema': PROGRESS_SCHEMA, 'seq': 1,\n"
            "       'elapsed_seconds': 0.5, 'phase': 'solve',\n"
            "       'counters': {}, 'speedometer': 9000}\n"
        )
        findings = hits(source, "schema.undeclared-key")
        assert len(findings) == 1
        assert "'speedometer'" in findings[0].message

    def test_progress_missing_counters_fires_once(self):
        source = (
            "from repro.analyze.schemas import PROGRESS_SCHEMA\n"
            "\n"
            "doc = {'schema': PROGRESS_SCHEMA, 'seq': 1,\n"
            "       'elapsed_seconds': 0.5, 'phase': 'solve'}\n"
        )
        findings = hits(source, "schema.missing-key")
        assert len(findings) == 1
        assert "'counters'" in findings[0].message

    def test_complete_progress_document_is_clean(self):
        source = (
            "from repro.analyze.schemas import PROGRESS_SCHEMA\n"
            "\n"
            "doc = {'schema': PROGRESS_SCHEMA, 'seq': 1,\n"
            "       'elapsed_seconds': 0.5, 'phase': 'solve',\n"
            "       'counters': {}, 'deltas': {}, 'rates': {},\n"
            "       'eta_seconds': [1.0, 2.0]}\n"
        )
        assert lint_one(source) == []

    def test_obs_undeclared_key_fires_once(self):
        source = (
            "from repro.analyze.schemas import OBS_SCHEMA\n"
            "\n"
            "doc = {'schema': OBS_SCHEMA, 'polls': 3, 'targets': [],\n"
            "       'slos': {}, 'samples': {}, 'dashboards': []}\n"
        )
        findings = hits(source, "schema.undeclared-key")
        assert len(findings) == 1
        assert "'dashboards'" in findings[0].message

    def test_obs_missing_slos_fires_once(self):
        source = (
            "from repro.analyze.schemas import OBS_SCHEMA\n"
            "\n"
            "doc = {'schema': OBS_SCHEMA, 'polls': 3, 'targets': [],\n"
            "       'samples': {}}\n"
        )
        findings = hits(source, "schema.missing-key")
        assert len(findings) == 1
        assert "'slos'" in findings[0].message

    def test_complete_obs_snapshot_is_clean(self):
        source = (
            "from repro.analyze.schemas import OBS_SCHEMA\n"
            "\n"
            "doc = {'schema': OBS_SCHEMA, 'polls': 3, 'targets': [],\n"
            "       'slos': {}, 'samples': {}, 'series': {},\n"
            "       'interval_seconds': 2.0, 'meta': {}}\n"
        )
        assert lint_one(source) == []

    def test_inline_progress_tag_fires(self):
        findings = hits(
            'TAG = "repro-progress/1"\n', "schema.inline-version",
        )
        assert len(findings) == 1

    def test_inline_obs_tag_fires(self):
        findings = hits('TAG = "repro-obs/1"\n', "schema.inline-version")
        assert len(findings) == 1
