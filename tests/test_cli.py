"""Tests for the repro-cec command-line interface."""

import pytest

from repro.aig import lit_not, write_aag, write_aig
from repro.circuits import carry_lookahead_adder, ripple_carry_adder
from repro.cli import build_parser, main


@pytest.fixture
def circuit_files(tmp_path):
    good_a = tmp_path / "a.aag"
    good_b = tmp_path / "b.aig"
    bad = tmp_path / "bad.aag"
    write_aag(ripple_carry_adder(4), str(good_a))
    write_aig(carry_lookahead_adder(4), str(good_b))
    broken = carry_lookahead_adder(4).copy()
    broken.set_output(1, lit_not(broken.outputs[1]))
    write_aag(broken, str(bad))
    return str(good_a), str(good_b), str(bad)


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["x", "y"])
        assert args.engine == "sweep"
        assert args.sim_words == 4

    def test_engine_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["x", "y", "--engine", "zchaff"])


class TestMain:
    def test_equivalent_exit_code(self, circuit_files, capsys):
        file_a, file_b, _ = circuit_files
        assert main([file_a, file_b]) == 0
        assert "EQUIVALENT" in capsys.readouterr().out

    def test_non_equivalent_exit_code(self, circuit_files, capsys):
        file_a, _, bad = circuit_files
        assert main([file_a, bad]) == 1
        out = capsys.readouterr().out
        assert "NOT EQUIVALENT" in out
        assert "counterexample" in out

    def test_missing_file(self, capsys):
        assert main(["/nonexistent/a.aag", "/nonexistent/b.aag"]) == 3

    def test_proof_written(self, circuit_files, tmp_path, capsys):
        file_a, file_b, _ = circuit_files
        proof_path = tmp_path / "out.drup"
        assert main([file_a, file_b, "--proof", str(proof_path)]) == 0
        content = proof_path.read_text()
        assert content.strip().endswith("0")

    def test_untrimmed_proof_is_larger(self, circuit_files, tmp_path):
        file_a, file_b, _ = circuit_files
        trimmed = tmp_path / "trim.drup"
        full = tmp_path / "full.drup"
        main([file_a, file_b, "--proof", str(trimmed)])
        main([file_a, file_b, "--proof", str(full), "--no-trim"])
        assert len(full.read_text()) >= len(trimmed.read_text())

    def test_certify_flag(self, circuit_files, capsys):
        file_a, file_b, _ = circuit_files
        assert main([file_a, file_b, "--certify"]) == 0
        assert "certified" in capsys.readouterr().out

    def test_certify_with_jobs(self, circuit_files, capsys):
        file_a, file_b, _ = circuit_files
        assert main([file_a, file_b, "--certify", "--jobs", "2"]) == 0
        assert "certified" in capsys.readouterr().out

    def test_monolithic_engine(self, circuit_files, capsys):
        file_a, file_b, _ = circuit_files
        assert main([file_a, file_b, "--engine", "monolithic"]) == 0

    def test_bdd_engine(self, circuit_files, capsys):
        file_a, file_b, bad = circuit_files
        assert main([file_a, file_b, "--engine", "bdd"]) == 0
        assert main([file_a, bad, "--engine", "bdd"]) == 1

    def test_quiet_suppresses_stats(self, circuit_files, capsys):
        file_a, file_b, _ = circuit_files
        main([file_a, file_b, "--quiet"])
        out = capsys.readouterr().out
        assert "resolutions" not in out

    def test_seed_and_sim_words_accepted(self, circuit_files):
        file_a, file_b, _ = circuit_files
        assert main(
            [file_a, file_b, "--sim-words", "1", "--seed", "42"]
        ) == 0


class TestBddSweepEngine:
    def test_equivalent(self, circuit_files, capsys):
        file_a, file_b, _ = circuit_files
        assert main([file_a, file_b, "--engine", "bddsweep"]) == 0
        assert "EQUIVALENT" in capsys.readouterr().out

    def test_fault(self, circuit_files, capsys):
        file_a, _, bad = circuit_files
        assert main([file_a, bad, "--engine", "bddsweep"]) == 1
        assert "counterexample" in capsys.readouterr().out


class TestServerPassthrough:
    @pytest.fixture()
    def server(self, tmp_path):
        from repro.service import CecServer

        instance = CecServer(str(tmp_path / "cli.sock"), workers=0)
        instance.start()
        yield instance
        instance.close()

    def test_binary_aig_input_is_supported(
        self, server, circuit_files, capsys
    ):
        # file_b is binary AIGER: --server must accept exactly the
        # same inputs as a local run (read_auto + re-emit as text).
        file_a, file_b, _ = circuit_files
        assert main(
            [file_a, file_b, "--server", server.address, "--quiet"]
        ) == 0

    def test_not_equivalent_over_server(
        self, server, circuit_files, capsys
    ):
        file_a, _, bad = circuit_files
        assert main(
            [file_a, bad, "--server", server.address, "--quiet"]
        ) == 1

    def test_missing_file_is_invalid_input(self, server, capsys):
        assert main(
            ["/nonexistent/a.aag", "/nonexistent/b.aag",
             "--server", server.address]
        ) == 3
        assert "error:" in capsys.readouterr().err
