"""Static analysis: proof/netlist linting and codebase rules.

Five replay-free analysis passes plus one CLI (``repro-lint``):

* :mod:`repro.analyze.proof_lint` — structural invariants of
  resolution proofs (stores, TraceCheck traces, DRUP files) checked
  without replaying a single resolution.
* :mod:`repro.analyze.aig_lint` — AIG/miter well-formedness and
  Tseitin-encoding schema validation.
* :mod:`repro.analyze.ast_rules` — project-specific Python AST rules
  over the ``repro`` sources themselves.
* :mod:`repro.analyze.concurrency` — concurrency-hazard rules for the
  threads / process pools / shared-memory stack.
* :mod:`repro.analyze.schema_drift` — drift between producers,
  consumers, and the declarative schema registry
  (:mod:`repro.analyze.schemas`).

All passes emit :class:`~repro.analyze.findings.Finding` objects and
aggregate into the ``repro-lint/1`` JSON schema
(:class:`~repro.analyze.findings.LintReport`). Error-severity proof
findings are sound rejections — :func:`repro.core.certify.certify` uses
them as a fast pre-replay gate via ``lint=True`` — while a clean lint
never substitutes for the full checker. Rule ids and the severity
policy are catalogued in ``docs/static-analysis.md``.

This package is also the home of the document-schema validators CI and
tests reach for: ``repro-lint/1`` (here), plus re-exports of the
``repro-stats/1``, ``repro-trace/1``, and ``repro-metrics/1``
validators from :mod:`repro.instrument` so one import site covers
every versioned JSON artifact the tools emit.

Only :mod:`~repro.analyze.schemas` and
:mod:`~repro.analyze.findings` load eagerly; everything else resolves
lazily (PEP 562). That keeps this package a safe leaf dependency: low
layers like :mod:`repro.instrument.recorder` import their schema tags
from ``repro.analyze.schemas`` without dragging in — or cycling
through — the analysis passes themselves.
"""

from typing import TYPE_CHECKING, Any

from . import schemas  # noqa: F401  (the eager leaf: schema registry)
from .findings import (
    ERROR,
    INFO,
    LINT_SCHEMA,
    WARNING,
    Finding,
    LintReport,
    validate_lint_report,
)

if TYPE_CHECKING:  # resolved lazily at runtime via __getattr__
    from ..instrument.metrics import validate_metrics_report
    from ..instrument.recorder import validate_report as validate_stats_report
    from ..instrument.tracing import validate_trace_report
    from .aig_lint import lint_aig, lint_encoding, lint_miter
    from .ast_rules import lint_file, lint_package, lint_source
    from .proof_lint import lint_drup_file, lint_proof, lint_tracecheck_file

#: Lazy exports: public name -> (module, attribute).
_LAZY = {
    "lint_aig": (".aig_lint", "lint_aig"),
    "lint_encoding": (".aig_lint", "lint_encoding"),
    "lint_miter": (".aig_lint", "lint_miter"),
    "lint_file": (".ast_rules", "lint_file"),
    "lint_package": (".ast_rules", "lint_package"),
    "lint_source": (".ast_rules", "lint_source"),
    "lint_drup_file": (".proof_lint", "lint_drup_file"),
    "lint_proof": (".proof_lint", "lint_proof"),
    "lint_tracecheck_file": (".proof_lint", "lint_tracecheck_file"),
    "validate_metrics_report": ("..instrument.metrics",
                                "validate_metrics_report"),
    "validate_stats_report": ("..instrument.recorder", "validate_report"),
    "validate_trace_report": ("..instrument.tracing",
                              "validate_trace_report"),
}

__all__ = [
    "ERROR",
    "Finding",
    "INFO",
    "LINT_SCHEMA",
    "LintReport",
    "WARNING",
    "lint_aig",
    "lint_drup_file",
    "lint_encoding",
    "lint_file",
    "lint_miter",
    "lint_package",
    "lint_proof",
    "lint_source",
    "lint_tracecheck_file",
    "schemas",
    "validate_lint_report",
    "validate_metrics_report",
    "validate_stats_report",
    "validate_trace_report",
]


def __getattr__(name: str) -> Any:
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            "module %r has no attribute %r" % (__name__, name)
        )
    import importlib

    module = importlib.import_module(module_name, __name__)
    return getattr(module, attr)
