"""The persistent CEC server: socket front end, job queue, worker pool.

:class:`CecServer` is a long-running process component that accepts
``repro-service/1`` requests over a Unix-domain or TCP socket, admits
jobs into a bounded queue, fans them out to a multiprocess worker pool
(:func:`repro.service.worker.execute_job`), and consults the
structural-hash :class:`~repro.service.cache.ProofCache` before paying
for any solving — a repeated or symmetric query is answered from disk
in microseconds, certificate included.

Threading model: ``socketserver.ThreadingMixIn`` gives one handler
thread per connection; handler threads only parse requests, perform
cache lookups, and wait on job events. All solving happens in the
worker pool (``workers >= 1``: separate processes; ``workers == 0``:
one in-process thread, for tests and platforms without ``fork``).
Shared state is the :class:`~repro.service.jobs.JobTable` (locked) and
the server's :class:`~repro.instrument.Recorder` (thread-safe), which
aggregates per-job timings into server-level throughput and hit-rate
telemetry served by the ``stats`` verb.
"""

import io
import os
import shutil
import socketserver
import tempfile
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from .. import __version__
from ..aig.aiger import AigerError, read_aag
from ..instrument import MetricsRegistry, Recorder, TraceContext, get_logger
from ..instrument.metrics import TIME_BUCKETS, to_prometheus_text
from ..instrument.progress import (
    DEFAULT_INTERVAL as DEFAULT_PROGRESS_INTERVAL,
    latest_heartbeat,
    remove_spool,
)
from ..instrument.tracing import merge_trace_documents, new_span_id
from ..proof.parallel import close_checker_pool
from . import protocol
from .cache import ProofCache, cache_key
from .jobs import DONE, QUEUED, JobTable, QueueFullError
from .metrics_http import MetricsHTTPServer
from .worker import build_options, execute_job

#: Heartbeat interval while a ``result --wait`` request is blocked.
DEFAULT_POLL_INTERVAL = 0.25

log = get_logger("service.server")


def _warm_worker():
    """No-op warm-up task: forces the process pool to fork its workers
    while the server is still single-threaded (see ``__init__``)."""
    return os.getpid()


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read request lines, answer each in turn."""

    def handle(self):
        server = self.server.cec_server
        while True:
            try:
                line = self.rfile.readline(protocol.MAX_LINE_BYTES + 1)
            except OSError:
                return
            if not line:
                return
            if len(line) > protocol.MAX_LINE_BYTES:
                self._send(protocol.error_response(
                    protocol.ERR_INVALID_REQUEST,
                    "request line exceeds %d bytes"
                    % protocol.MAX_LINE_BYTES,
                ))
                return
            try:
                request = protocol.decode(line)
            except protocol.ProtocolError as exc:
                self._send(protocol.error_response(exc.code, str(exc)))
                continue
            try:
                done = server.dispatch(request, self._send)
            except BrokenPipeError:
                return
            if done:
                return

    def _send(self, response):
        self.wfile.write(protocol.encode(response))
        self.wfile.flush()


class _ThreadingTCPServer(socketserver.ThreadingMixIn, socketserver.TCPServer):
    allow_reuse_address = True
    daemon_threads = True


class _ThreadingUnixServer(
    socketserver.ThreadingMixIn, socketserver.UnixStreamServer
):
    daemon_threads = True


class CecServer:
    """Persistent equivalence-checking service.

    Args:
        address: ``host:port`` or a Unix socket path (see
            :func:`repro.service.protocol.parse_address`).
        workers: worker processes (``0`` = one in-process worker
            thread).
        queue_limit: maximum queued+running jobs before ``submit``
            answers ``queue-full``.
        cache_dir: proof-cache directory (``None`` disables caching).
        default_time_limit / default_conflict_limit: per-job budget
            applied when the request does not carry its own.
        poll_interval: heartbeat period for blocked ``result`` waits.
        recorder: server-level :class:`Recorder` (one is created when
            omitted); serves the ``stats`` verb.
        retain_jobs: terminal jobs kept for late ``status``/``result``
            queries before eviction (bounds server memory; defaults to
            :attr:`JobTable.DEFAULT_RETAIN_TERMINAL`).
        metrics_address: optional ``host:port`` for the Prometheus
            ``/metrics`` HTTP endpoint (``None`` disables it; the
            ``metrics`` protocol verb works either way).
        progress_interval: seconds between live progress heartbeats
            from running workers (``None`` = the default ~0.25s;
            ``0`` disables the progress plane entirely).
    """

    def __init__(
        self,
        address,
        workers=1,
        queue_limit=32,
        cache_dir=None,
        default_time_limit=None,
        default_conflict_limit=None,
        poll_interval=DEFAULT_POLL_INTERVAL,
        recorder=None,
        retain_jobs=None,
        metrics_address=None,
        progress_interval=None,
    ):
        self.family, self.target = protocol.parse_address(address)
        self.workers = workers
        self.jobs = JobTable(
            queue_limit=queue_limit, retain_terminal=retain_jobs
        )
        self.recorder = recorder if recorder is not None else Recorder()
        self.recorder.meta.setdefault("tool", "repro-serve")
        self.recorder.meta["address"] = protocol.format_address(
            self.family, self.target
        )
        self.cache = (
            ProofCache(cache_dir, recorder=self.recorder)
            if cache_dir else None
        )
        self.default_time_limit = default_time_limit
        self.default_conflict_limit = default_conflict_limit
        self.poll_interval = poll_interval
        self.progress_interval = (
            DEFAULT_PROGRESS_INTERVAL
            if progress_interval is None else float(progress_interval)
        )
        # Heartbeat spool: one JSONL file per running job, written by
        # the worker process and tailed by the `progress` verb. A
        # private tempdir (removed in close()) keeps the server free of
        # any cross-job file naming discipline.
        self._progress_dir = (
            tempfile.mkdtemp(prefix="repro-progress-")
            if self.progress_interval > 0 else None
        )
        self._started_monotonic = time.monotonic()
        self._shutting_down = False
        self._serving = False
        self._lock = threading.Lock()
        if workers >= 1:
            # A fork-start pool in a threaded server is safe only
            # because the workers are all forked HERE, while this
            # process is still single-threaded: the warm-up submit
            # below forces the executor to launch every worker before
            # the listener or any handler thread exists.
            self._executor = ProcessPoolExecutor(  # repro-lint: ignore[concurrency.fork-after-thread]
                max_workers=workers
            )
            self._executor.submit(_warm_worker).result()
        else:
            self._executor = ThreadPoolExecutor(max_workers=1)
        if self.family == "unix":
            if os.path.exists(self.target):
                os.unlink(self.target)
            self._server = _ThreadingUnixServer(self.target, _Handler)
        else:
            self._server = _ThreadingTCPServer(self.target, _Handler)
        self._server.cec_server = self
        self.recorder.gauge("service/workers", max(workers, 1))
        # Cross-process metrics: the server's own registry plus every
        # worker report folded in as jobs finish.
        self.metrics = MetricsRegistry()
        self._metrics_http = None
        if metrics_address is not None:
            family, target = protocol.parse_address(metrics_address)
            if family != "tcp":
                raise ValueError(
                    "metrics endpoint needs host:port, got %r"
                    % metrics_address
                )
            host, port = target
            self._metrics_http = MetricsHTTPServer(
                host, port, self.prometheus_text
            ).start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self):
        """The bound address (with the OS-assigned port for ``:0``)."""
        if self.family == "unix":
            return self.target
        host, port = self._server.server_address[:2]
        return "%s:%d" % (host, port)

    def serve_forever(self):
        """Serve until :meth:`shutdown` (blocking)."""
        with self._lock:
            if self._shutting_down:
                return
            self._serving = True
        self._server.serve_forever(poll_interval=self.poll_interval)

    def start(self):
        """Serve on a daemon thread (tests/benchmarks); returns it."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        thread.start()
        return thread

    def shutdown(self):
        """Stop accepting connections and wind down the pool."""
        with self._lock:
            if self._shutting_down:
                return
            self._shutting_down = True
            serving = self._serving
        # socketserver's shutdown() handshakes with a *running*
        # serve_forever loop; on a server that never served it would
        # wait forever on the loop-exit event, so skip it — the flag
        # above already keeps serve_forever() from starting late.
        if serving:
            self._server.shutdown()
        self._executor.shutdown(wait=False)

    def close(self):
        """Release sockets and the worker pool (synchronously).

        :meth:`shutdown` leaves the executor winding down on its
        manager thread so the shutdown verb never blocks a handler;
        here the pool must be reaped before returning — its manager
        thread and GC finalizers release pipe fds asynchronously, and
        letting them run past ``close()`` lets those closes race the
        fds of whatever server is created next (observed as a fresh
        listener dying before its first ``accept``).
        """
        self.shutdown()
        self._executor.shutdown(wait=True)
        # In-process workers (``--workers 0``) run certify — and hence
        # the persistent checker pool — in this process; reap it with
        # the rest of the pools (no-op when no check ever went
        # parallel, and subprocess workers reap their own at exit).
        close_checker_pool()
        self._server.server_close()
        # Swap the endpoint out under the lock (close() may race a
        # late metrics_address reader), then close it unlocked.
        with self._lock:
            metrics_http, self._metrics_http = self._metrics_http, None
        if metrics_http is not None:
            metrics_http.close()
        if self._progress_dir is not None:
            shutil.rmtree(self._progress_dir, ignore_errors=True)
        if self.family == "unix" and os.path.exists(self.target):
            os.unlink(self.target)

    @property
    def metrics_address(self):
        """``host:port`` of the /metrics endpoint (None when disabled)."""
        if self._metrics_http is None:
            return None
        return self._metrics_http.address

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def dispatch(self, request, send):
        """Answer one request via *send*; True ends the connection."""
        verb = request.get("verb")
        if verb not in protocol.VERBS and verb not in protocol.FLEET_VERBS:
            send(protocol.error_response(
                protocol.ERR_INVALID_REQUEST,
                "unknown verb %r" % (verb,), verb=verb,
            ))
            return False
        # Cache verbs stay answerable while draining: they touch only
        # the on-disk cache, never the queue or the worker pool.
        # `progress` likewise only reads the job table, and a draining
        # server's in-flight jobs are exactly the ones worth watching.
        if self._shutting_down and verb not in (
            "ping", "stats", "metrics", "progress",
        ) and verb not in protocol.FLEET_VERBS:
            send(protocol.error_response(
                protocol.ERR_SHUTTING_DOWN, "server is shutting down",
                verb=verb,
            ))
            return False
        if verb in protocol.FLEET_VERBS:
            send(self._handle_cache_verb(request, verb))
            return False
        if verb == "ping":
            send(protocol.ping_response())
            return False
        if verb == "submit":
            send(self._handle_submit(request))
            return False
        if verb == "status":
            send(self._handle_status(request))
            return False
        if verb == "result":
            self._handle_result(request, send)
            return False
        if verb == "cancel":
            send(self._handle_cancel(request))
            return False
        if verb == "progress":
            send(self._handle_progress(request))
            return False
        if verb == "stats":
            # Runtime gauges (queue depth, uptime) are refreshed on
            # every stats/metrics read, not only on job transitions, so
            # scrapes between jobs never see stale values.
            self._refresh_runtime_gauges()
            send(protocol.ok_response("stats", stats=self.stats_report()))
            return False
        if verb == "metrics":
            self._refresh_runtime_gauges()
            send(protocol.ok_response(
                "metrics", metrics=self.metrics.report(),
                prometheus=self.prometheus_text(),
            ))
            return False
        # shutdown: acknowledge, then stop the server from another
        # thread (shutdown() must not run on a handler thread that
        # serve_forever is waiting on).
        send(protocol.ok_response("shutdown"))
        threading.Thread(target=self.shutdown, daemon=True).start()
        return True

    # ------------------------------------------------------------------
    # submit
    # ------------------------------------------------------------------

    def _handle_submit(self, request):
        self.recorder.count("service/jobs-submitted")
        # Trace context: adopt the client's when present and
        # well-formed, otherwise degrade to a fresh trace — a malformed
        # header must never fail the job. All server-side spans of this
        # job hang under one root "service/job" span whose id is minted
        # here and propagated to the worker.
        context, propagated = TraceContext.from_wire(request.get("trace"))
        if "trace" in request and not propagated:
            self.recorder.count("service/trace-degraded")
        job_span_id = new_span_id()
        job_recorder = Recorder()
        job_recorder.meta["tool"] = "repro-serve"
        job_recorder.start_trace(context.child(job_span_id))
        try:
            aig_a = read_aag(io.StringIO(request["aag_a"]))
            aig_b = read_aag(io.StringIO(request["aag_b"]))
            options = build_options(request.get("options"))
        except (AigerError, ValueError, KeyError, TypeError) as exc:
            self.recorder.count("service/jobs-rejected")
            return protocol.error_response(
                protocol.ERR_BAD_INPUT, str(exc), verb="submit",
            )
        if (aig_a.num_inputs != aig_b.num_inputs
                or aig_a.num_outputs != aig_b.num_outputs):
            self.recorder.count("service/jobs-rejected")
            return protocol.error_response(
                protocol.ERR_BAD_INPUT,
                "interface mismatch: %dx%d vs %dx%d inputs/outputs"
                % (aig_a.num_inputs, aig_a.num_outputs,
                   aig_b.num_inputs, aig_b.num_outputs),
                verb="submit",
            )
        key = cache_key(aig_a, aig_b, request.get("options"))
        if self.cache is not None:
            with job_recorder.phase("cache/lookup"):
                cached = self.cache.lookup(key)
            self.metrics.observe(
                "cache/lookup-seconds",
                job_recorder.phase_seconds("cache/lookup"),
                buckets=TIME_BUCKETS, unit="seconds",
            )
            if cached is not None:
                self.recorder.count("service/cache-hits")
                job = self.jobs.add_terminal(key=key)
                job.recorder = job_recorder
                job.span_id = job_span_id
                job.trace_parent = context.parent_id
                # Observability is assembled BEFORE finish(): finish
                # sets the terminal event a blocked `result --wait`
                # handler wakes on, and that response must already see
                # job.trace / job.job_stats.
                self._assemble_job_telemetry(
                    job, verdict=_verdict_of(cached), cached=True,
                )
                job.finish(
                    _verdict_of(cached), cached, worker_stats=None,
                    cached=True,
                )
                self._note_job_done(job)
                self.jobs.note_terminal(job)
                return protocol.ok_response(
                    "submit", job=job.id, state=job.state, cached=True,
                    verdict=job.verdict,
                )
            self.recorder.count("service/cache-misses")
        try:
            job = self.jobs.admit(key=key)
        except QueueFullError as exc:
            self.recorder.count("service/queue-rejects")
            return protocol.error_response(
                protocol.ERR_QUEUE_FULL, str(exc), verb="submit",
                queue_limit=self.jobs.queue_limit,
            )
        job.recorder = job_recorder
        job.span_id = job_span_id
        job.trace_parent = context.parent_id
        job.job_stats = job_recorder.report()
        if self._progress_dir is not None:
            job.progress_path = os.path.join(
                self._progress_dir, "%s.jsonl" % job.id
            )
        payload = {
            "aag_a": request["aag_a"],
            "aag_b": request["aag_b"],
            "options": request.get("options") or {},
            "time_limit": request.get(
                "time_limit", self.default_time_limit
            ),
            "conflict_limit": request.get(
                "conflict_limit", self.default_conflict_limit
            ),
            "certify": bool(request.get("certify")),
            "lint": bool(request.get("lint")),
            "jobs": request.get("jobs"),
            "trim": bool(request.get("trim", True)),
            # Worker-side phases become spans of the same trace,
            # parented under this job's root span.
            "trace": context.child(job_span_id).to_wire(),
            # Live heartbeat spool (None disables progress in the
            # worker).
            "progress_path": job.progress_path,
            "progress_interval": self.progress_interval,
        }
        job.mark_running()
        try:
            job.future = self._executor.submit(execute_job, payload)
        except RuntimeError as exc:  # pool already shut down
            self.jobs.release(job)
            job.fail(protocol.ERR_SHUTTING_DOWN, str(exc))
            self.jobs.note_terminal(job)
            return protocol.error_response(
                protocol.ERR_SHUTTING_DOWN, str(exc), verb="submit",
            )
        job.future.add_done_callback(
            lambda future, job=job: self._on_job_finished(job, future)
        )
        log.info(
            "job %s admitted (queue depth %d)",
            job.id, self.jobs.pending(),
            extra={"job_id": job.id, "trace_id": context.trace_id},
        )
        self.recorder.gauge("service/queue-depth", self.jobs.pending())
        return protocol.ok_response(
            "submit", job=job.id, state=QUEUED, cached=False,
            queue_depth=self.jobs.pending(),
        )

    def _on_job_finished(self, job, future):
        # Runs as a Future done-callback: any exception escaping here is
        # swallowed by the executor, so the try/finally guarantees the
        # job always reaches a terminal state (otherwise result --wait
        # clients would heartbeat forever).
        self.jobs.release(job)
        try:
            self._finalize_job(job, future)
        finally:
            self._harvest_progress(job)
            if not job.is_terminal:
                job.fail(protocol.ERR_WORKER_FAILED,
                         "internal error while finalizing the job")
                self.recorder.count("service/jobs-failed")
            self.jobs.note_terminal(job)
            if job.state != DONE:
                error = job.error or {}
                log.warning(
                    "job %s %s: %s", job.id, job.state,
                    error.get("message", "no detail"),
                    extra={"job_id": job.id,
                           "trace_id": _trace_id_of(job)},
                )

    def _finalize_job(self, job, future):
        if future.cancelled():
            job.fail(protocol.ERR_CANCELLED, "job was cancelled",
                     cancelled=True)
            self.recorder.count("service/jobs-cancelled")
            return
        exc = future.exception()
        if exc is not None:
            job.fail(protocol.ERR_WORKER_FAILED,
                     "%s: %s" % (type(exc).__name__, exc))
            self.recorder.count("service/jobs-failed")
            return
        response = future.result()
        if not response.get("ok"):
            error = response.get("error") or {}
            job.fail(error.get("code", protocol.ERR_WORKER_FAILED),
                     error.get("message", "worker reported failure"))
            self.recorder.count("service/jobs-failed")
            return
        # Fold the worker's telemetry into the server-wide aggregates:
        # phase timings and counters into the stats report, histogram
        # observations into the cross-process metrics registry.
        worker_stats = response.get("stats")
        if isinstance(worker_stats, dict):
            try:
                self.recorder.merge_report(worker_stats)
            except (KeyError, TypeError, ValueError):
                self.recorder.count("service/stats-merge-failures")
        worker_metrics = response.get("metrics")
        if isinstance(worker_metrics, dict):
            try:
                self.metrics.merge_report(worker_metrics)
            except (KeyError, TypeError, ValueError):
                self.recorder.count("service/metrics-merge-failures")
        # Store before marking the job terminal: a client that sees the
        # result and immediately re-submits must find the cache entry.
        # A cache failure is an operational problem, not a job failure:
        # the verdict is still valid and must still be delivered.
        if (self.cache is not None and job.key is not None
                and response["result"].get("equivalent") is not None):
            try:
                with job.recorder.phase("cache/store"):
                    self.cache.store(
                        job.key, response["result"],
                        meta={"job": job.id,
                              "verdict": response["verdict"]},
                    )
            except OSError as store_exc:
                self.recorder.count("service/cache-store-failures")
                log.warning(
                    "cache store failed for job %s: %s",
                    job.id, store_exc,
                    extra={"job_id": job.id,
                           "trace_id": _trace_id_of(job)},
                )
        # Observability is assembled BEFORE finish() (see the cache-hit
        # path): the terminal event must only fire once job.trace and
        # job.job_stats are in place for waiting result handlers.
        self._assemble_job_telemetry(
            job, verdict=response["verdict"], cached=False,
            worker_trace=response.get("trace"),
        )
        job.finish(
            response["verdict"], response["result"],
            worker_stats=worker_stats, cached=False,
        )
        self._note_job_done(job)

    def _assemble_job_telemetry(
        self, job, verdict, cached, worker_trace=None,
    ):
        """Record the job's spans, stats block, and latency metrics.

        Must run before :meth:`Job.finish`: the result handlers read
        ``job.trace``/``job.job_stats`` as soon as the terminal event
        fires.
        """
        self.metrics.observe(
            "service/job-seconds", job.elapsed_seconds(),
            buckets=TIME_BUCKETS, unit="seconds",
        )
        recorder = job.recorder
        if recorder is None:
            return
        if job.started_at is not None:
            wait = job.queue_wait_seconds()
            self.metrics.observe(
                "service/queue-wait-seconds", wait,
                buckets=TIME_BUCKETS, unit="seconds",
            )
            recorder.add_time("service/queue-wait", wait)
            self.recorder.add_time("service/queue-wait", wait)
            recorder.add_span(
                "service/queue-wait", wait, ts=job.submitted_at,
                parent_id=job.span_id, job=job.id,
            )
        # The job's root span covers submission to completion and
        # carries the id every other server/worker span parents under.
        recorder.add_span(
            "service/job", job.elapsed_seconds(), ts=job.submitted_at,
            span_id=job.span_id, parent_id=job.trace_parent,
            job=job.id, cached=cached, verdict=verdict,
        )
        job.job_stats = recorder.report()
        trace = recorder.trace_report()
        if isinstance(worker_trace, dict):
            try:
                trace = merge_trace_documents(trace, worker_trace)
            except (KeyError, TypeError, ValueError):
                self.recorder.count("service/trace-merge-failures")
        job.trace = trace

    def _note_job_done(self, job):
        self.recorder.count("service/jobs-completed")
        self.recorder.count("service/verdict-%s" % job.verdict)
        self.recorder.add_time("service/job", job.elapsed_seconds())
        self.recorder.gauge("service/queue-depth", self.jobs.pending())
        log.info(
            "job %s done verdict=%s cached=%s elapsed=%.3fs",
            job.id, job.verdict, job.cached, job.elapsed_seconds(),
            extra={"job_id": job.id, "trace_id": _trace_id_of(job)},
        )

    # ------------------------------------------------------------------
    # status / result / cancel
    # ------------------------------------------------------------------

    def _get_job(self, request, verb):
        job_id = request.get("job")
        job = self.jobs.get(job_id) if isinstance(job_id, str) else None
        if job is None:
            return None, protocol.error_response(
                protocol.ERR_UNKNOWN_JOB, "unknown job %r" % (job_id,),
                verb=verb,
            )
        return job, None

    def _handle_status(self, request):
        job, error = self._get_job(request, "status")
        if error is not None:
            return error
        return protocol.ok_response("status", **job.snapshot())

    def _handle_result(self, request, send):
        job, error = self._get_job(request, "result")
        if error is not None:
            send(error)
            return
        wait = bool(request.get("wait"))
        timeout = request.get("timeout")
        deadline = None
        if wait and timeout is not None:
            deadline = job.elapsed_seconds() + float(timeout)
        while wait and not job.is_terminal:
            if deadline is not None and job.elapsed_seconds() >= deadline:
                send(protocol.error_response(
                    protocol.ERR_TIMEOUT,
                    "job %s still %s after the wait timeout"
                    % (job.id, job.state),
                    verb="result", **job.snapshot(),
                ))
                return
            if job.wait(self.poll_interval):
                break
            # Heartbeats during a blocked wait carry the job's live
            # progress document so `repro-client submit --wait` shows
            # the search moving, not just "running".
            send(protocol.ok_response(
                "result", final=False,
                progress=self._job_progress(job), **job.snapshot(),
            ))
        if not job.is_terminal:
            send(protocol.ok_response("result", **job.snapshot()))
            return
        if job.state == DONE:
            send(protocol.ok_response(
                "result", result=job.result,
                worker_stats=job.worker_stats, job_stats=job.job_stats,
                trace=job.trace, **job.snapshot(),
            ))
        else:
            error = job.error or {}
            send(protocol.error_response(
                error.get("code", protocol.ERR_WORKER_FAILED),
                error.get("message", "job did not complete"),
                verb="result", **job.snapshot(),
            ))

    # ------------------------------------------------------------------
    # progress (live heartbeats)
    # ------------------------------------------------------------------

    def _job_progress(self, job):
        """The job's newest ``repro-progress/1`` heartbeat, or None."""
        if job.progress is not None:
            return job.progress
        if job.progress_path is None:
            return None
        document = latest_heartbeat(job.progress_path)
        if document is None:
            return None
        document["job"] = job.id
        return document

    def _harvest_progress(self, job):
        """Cache the final heartbeat on the job and drop its spool."""
        path = job.progress_path
        if path is None:
            return
        document = latest_heartbeat(path)
        if document is not None:
            document["job"] = job.id
            job.progress = document
        remove_spool(path)
        job.progress_path = None

    def _handle_progress(self, request):
        """The ``progress`` verb: one job's latest heartbeat, or —
        without a ``job`` field — a listing of every active job (plus
        the most recent completions) with their heartbeats."""
        if request.get("job") is None:
            jobs = []
            for job in self.jobs.active():
                entry = job.snapshot()
                entry["progress"] = self._job_progress(job)
                jobs.append(entry)
            for job in self.jobs.recent_terminal():
                entry = job.snapshot()
                entry["progress"] = job.progress
                jobs.append(entry)
            return protocol.ok_response(
                "progress", jobs=jobs, queue_depth=self.jobs.pending(),
            )
        job, error = self._get_job(request, "progress")
        if error is not None:
            return error
        return protocol.ok_response(
            "progress", progress=self._job_progress(job),
            **job.snapshot(),
        )

    def _handle_cancel(self, request):
        job, error = self._get_job(request, "cancel")
        if error is not None:
            return error
        if job.is_terminal:
            return protocol.ok_response(
                "cancel", cancelled=(job.state == "cancelled"),
                **job.snapshot(),
            )
        cancelled = job.future.cancel() if job.future is not None else False
        if cancelled:
            # The done-callback fires with future.cancelled() and marks
            # the job; wait for it so the response reflects the final
            # state.
            job.wait(timeout=5.0)
        return protocol.ok_response(
            "cancel", cancelled=cancelled, **job.snapshot(),
        )

    # ------------------------------------------------------------------
    # cache verbs (repro-fleet/1)
    # ------------------------------------------------------------------

    def _handle_cache_verb(self, request, verb):
        """One ``repro-fleet/1`` cache-protocol request.

        This is the single code path behind both the router's
        cross-shard fetch and ``repro-client cache``: ``cache`` with no
        key answers lookup/store statistics, ``cache`` with a key is a
        metadata probe, ``cache-get`` ships the stored result document,
        ``cache-put`` installs one received from a peer shard.
        """
        if self.cache is None:
            return protocol.fleet_error(
                protocol.ERR_NO_CACHE,
                "server runs without a proof cache", verb=verb,
            )
        key = request.get("key")
        if verb == "cache" and key is None:
            return protocol.fleet_response(
                "cache",
                entries=len(self.cache.keys()),
                hits=self.recorder.counter("cache/hits"),
                misses=self.recorder.counter("cache/misses"),
                stores=self.recorder.counter("cache/stores"),
            )
        if not isinstance(key, str) or not key:
            return protocol.fleet_error(
                protocol.ERR_INVALID_REQUEST,
                "cache verbs need a string 'key'", verb=verb,
            )
        if verb == "cache":
            self.recorder.count("service/cache-probes")
            meta = self.cache.read_meta(key)
            found = key in self.cache
            return protocol.fleet_response(
                "cache", key=key, found=found,
                meta=meta if found else None,
            )
        if verb == "cache-get":
            self.recorder.count("service/cache-remote-gets")
            result = self.cache.lookup(key)
            if result is None:
                return protocol.fleet_response(
                    "cache-get", key=key, found=False,
                )
            return protocol.fleet_response(
                "cache-get", key=key, found=True, result=result,
                meta=self.cache.read_meta(key),
            )
        # cache-put: install a peer's content-addressed result document.
        result = request.get("result")
        if not isinstance(result, dict):
            return protocol.fleet_error(
                protocol.ERR_BAD_INPUT,
                "cache-put needs a 'result' document", verb=verb,
            )
        meta = request.get("meta")
        if meta is not None and not isinstance(meta, dict):
            return protocol.fleet_error(
                protocol.ERR_BAD_INPUT,
                "cache-put 'meta' must be a mapping", verb=verb,
            )
        try:
            stored = self.cache.store(key, result, meta=meta)
        except ValueError as exc:  # undecided results are never cached
            return protocol.fleet_error(
                protocol.ERR_BAD_INPUT, str(exc), verb=verb,
            )
        except OSError as exc:
            self.recorder.count("service/cache-store-failures")
            return protocol.fleet_error(
                protocol.ERR_CACHE_STORE_FAILED, str(exc), verb=verb,
            )
        self.recorder.count("service/cache-remote-puts")
        return protocol.fleet_response("cache-put", key=key, stored=stored)

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------

    def _refresh_runtime_gauges(self):
        """Re-gauge point-in-time values that otherwise only change on
        job transitions. Called from the stats/metrics verbs and from
        :meth:`stats_report` so every scrape sees fresh values even
        when no job has started or finished since the last one."""
        self.recorder.gauge("service/queue-depth", self.jobs.pending())
        self.recorder.gauge(
            "service/uptime-seconds",
            time.monotonic() - self._started_monotonic,
        )

    def stats_report(self):
        """Server-level ``repro-stats/1`` report with derived gauges."""
        hits = self.recorder.counter("service/cache-hits")
        misses = self.recorder.counter("service/cache-misses")
        if hits + misses:
            self.recorder.gauge(
                "service/hit-rate", hits / float(hits + misses)
            )
        completed = self.recorder.counter("service/jobs-completed")
        seconds = self.recorder.phase_seconds("service/job")
        if completed and seconds > 0:
            self.recorder.gauge(
                "service/jobs-per-second", completed / seconds
            )
        self._refresh_runtime_gauges()
        # Latency quantiles from the cross-process histograms, e.g.
        # "service/job-seconds/p50" — refreshed on every stats request.
        for name, value in self.metrics.quantile_gauges().items():
            self.recorder.gauge(name, value)
        self.recorder.meta["version"] = __version__
        return self.recorder.report()

    def prometheus_text(self):
        """Prometheus text rendering of metrics + stats (the `/metrics`
        body and the ``metrics`` verb's ``prometheus`` field)."""
        return to_prometheus_text(
            self.metrics.report(), stats_report=self.stats_report(),
            build_info={
                "component": "repro-serve", "version": __version__,
            },
        )


def _trace_id_of(job):
    recorder = getattr(job, "recorder", None)
    context = recorder.trace_context if recorder is not None else None
    return context.trace_id if context is not None else None


def _verdict_of(result_doc):
    return {True: "equivalent", False: "not_equivalent"}.get(
        result_doc.get("equivalent"), "undecided"
    )
