"""Live progress heartbeats for long solver and sweep runs.

A submitted equivalence check can disappear into a SAT run for minutes
with nothing between ``running`` and the final verdict. This module
adds the missing signal: a :class:`ProgressTracker` attached to a
:class:`~repro.instrument.recorder.Recorder` samples the search
counters at the hot path's existing checkpoints and emits periodic
``repro-progress/1`` heartbeat documents — conflicts / decisions /
propagations deltas and rates, restart count, sweep wave and
candidate-class counts, the fraction of the cooperative budget already
consumed, and a crude hardness-informed ETA band.

Two contracts shape the design:

* **Opt-in, like everything else in this package.** Progress only
  flows when a tracker is attached to an *enabled* recorder;
  ``NULL_RECORDER`` runs never construct heartbeats and pay only the
  existing ``rec.enabled`` check the hot loops already perform.
* **Observe, never perturb.** The tracker only *reads* search
  statistics; it never feeds anything back into the solver, so the
  search trajectory — and therefore the emitted resolution proof — is
  byte-identical with and without progress enabled (the differential
  suite asserts this). Emission failures are swallowed: a broken sink
  must not break a proof.

The tick cost is kept off the hot path's shoulders by a countdown:
only every :data:`TICKS_PER_CLOCK_CHECK` calls does :meth:`~
ProgressTracker.tick` read the clock, and only after
``interval_seconds`` have passed does it build a document. The
benchmark ``benchmarks/bench_observability_overhead.py`` prices the
enabled tick path and holds it under the same <3% budget as the
disabled hooks.

The ETA heuristic follows the observation of Semenov et al.
(arXiv 2210.01484) that early search statistics predict SAT hardness:
with a budget attached, remaining time is extrapolated linearly from
the budget fraction already consumed (the band tightens as the
fraction grows); without one, the band is anchored on the run's own
age — a run that has already survived *t* seconds is expected to need
on the order of *t* more — widened when the recent conflict rate is
decaying relative to the lifetime average (the search is hardening).
"""

from __future__ import annotations

import io
import json
import os
import time
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Tuple,
)

from ..analyze.schemas import PROGRESS_SCHEMA as PROGRESS_SCHEMA  # registry
from .budget import Budget

#: Default seconds between heartbeats. Coarse enough that even a
#: file-appending sink is noise, fine enough for a live dashboard.
DEFAULT_INTERVAL = 0.25

#: Hot-loop ticks between clock reads. The solver ticks once per
#: conflict; at a typical 10k–100k conflicts/second this checks the
#: clock a few hundred times per second at most.
TICKS_PER_CLOCK_CHECK = 64

#: Below this age no ETA is ventured — the signal is pure noise.
MIN_ETA_ELAPSED = 0.05

#: Sink type: receives one finished heartbeat document.
ProgressSink = Callable[[Dict[str, Any]], None]

#: Counter names sampled from the search statistics, in emission order.
COUNTER_NAMES: Tuple[str, ...] = (
    "conflicts", "decisions", "propagations", "restarts", "learned",
)


class SearchStats(Protocol):
    """Duck type of the solver's statistics block (read-only here)."""

    conflicts: int
    decisions: int
    propagations: int
    restarts: int
    learned: int


def estimate_eta_band(
    elapsed: float,
    budget_fraction: Optional[float] = None,
    rate_trend: Optional[float] = None,
) -> Optional[Tuple[float, float]]:
    """Crude remaining-time band ``(low, high)`` in seconds.

    Args:
        elapsed: seconds the search has already run.
        budget_fraction: fraction of the attached budget consumed
            (``None`` when no budget is attached).
        rate_trend: recent conflict rate divided by the lifetime
            average (< 1 means the search is slowing down).

    Returns:
        ``(low, high)`` seconds remaining, or ``None`` when the run is
        too young to say anything (:data:`MIN_ETA_ELAPSED`).
    """
    if elapsed < MIN_ETA_ELAPSED:
        return None
    if budget_fraction is not None and budget_fraction > 0.0:
        fraction = min(1.0, budget_fraction)
        if fraction >= 1.0:
            return (0.0, 0.0)
        # Linear extrapolation from the consumed fraction; the spread
        # collapses toward x1 as the budget nears exhaustion.
        remaining = elapsed * (1.0 - fraction) / fraction
        spread = 1.0 + 2.0 * (1.0 - fraction)
        return (remaining / spread, remaining * spread)
    # No budget: anchor on the run's own age (heavy-tailed SAT
    # runtimes make "about as long again" the honest point estimate),
    # stretched when the conflict rate is decaying.
    low = 0.5 * elapsed
    high = 3.0 * elapsed
    if rate_trend is not None and rate_trend > 0.0:
        high *= min(4.0, max(1.0, 1.0 / rate_trend))
    return (low, high)


class ProgressTracker:
    """Samples search counters and emits rate-limited heartbeats.

    Attach one to a :class:`~repro.instrument.recorder.Recorder` via
    ``recorder.progress``; the solver and sweep hot paths pick it up
    from there (only when ``recorder.enabled``) and call :meth:`tick`
    at their existing checkpoints.

    Args:
        sink: callable receiving each heartbeat document. Exceptions
            it raises are swallowed (counted in ``dropped``).
        interval_seconds: minimum seconds between heartbeats.
        budget: optional :class:`Budget` whose consumed fraction feeds
            the heartbeat and the ETA band.
        clock: monotonic time source (overridable for tests).
        meta: optional static block copied into every heartbeat.
        ticks_per_check: hot-loop ticks between clock reads.
    """

    def __init__(
        self,
        sink: ProgressSink,
        interval_seconds: float = DEFAULT_INTERVAL,
        budget: Optional[Budget] = None,
        clock: Callable[[], float] = time.monotonic,
        meta: Optional[Dict[str, Any]] = None,
        ticks_per_check: int = TICKS_PER_CLOCK_CHECK,
    ) -> None:
        self._sink = sink
        self.interval_seconds = interval_seconds
        self._budget = budget
        self._clock = clock
        self._start = clock()
        self._meta: Dict[str, Any] = dict(meta or {})
        self._ticks_per_check = max(1, ticks_per_check)
        self._countdown = self._ticks_per_check
        self._last_emit = self._start
        self._last_counters: Dict[str, int] = {}
        self.seq = 0
        self.ticks = 0
        self.dropped = 0
        #: Current activity label carried by heartbeats ("solve" for a
        #: bare SAT run, "sweep" while the sweep engine drives).
        self.phase = "solve"
        # Sweep-side gauges, updated by the sweep engine between SAT
        # calls; plain attribute writes so the per-node cost is nil.
        self._sweep: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    # Hot-path entry points
    # ------------------------------------------------------------------

    def tick(self, stats: SearchStats) -> None:
        """Cheap checkpoint: maybe read the clock, maybe emit.

        Called by the solver once per conflict (and periodically
        between decisions). The common case is one integer decrement.
        """
        self.ticks += 1
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self._ticks_per_check
        now = self._clock()
        if now - self._last_emit < self.interval_seconds:
            return
        self.emit(stats, now)

    def update_sweep(
        self,
        wave: int,
        nodes_processed: int,
        nodes_total: int,
        classes: int,
        class_members: int,
    ) -> None:
        """Record sweep-side gauges (wave and candidate-class counts).

        Attribute writes only — the sweep loop may call this per node.
        """
        self._sweep = {
            "wave": wave,
            "nodes_processed": nodes_processed,
            "nodes_total": nodes_total,
            "classes": classes,
            "class_members": class_members,
        }

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------

    def budget_fraction(self) -> Optional[float]:
        """Largest consumed fraction across the budget's axes."""
        budget = self._budget
        if budget is None:
            return None
        fractions: List[float] = []
        if budget.time_limit is not None and budget.time_limit > 0:
            fractions.append(budget.elapsed_seconds() / budget.time_limit)
        if budget.conflict_limit is not None and budget.conflict_limit > 0:
            fractions.append(budget.conflicts / budget.conflict_limit)
        if (budget.proof_clause_limit is not None
                and budget.proof_clause_limit > 0):
            fractions.append(
                budget.proof_clauses / budget.proof_clause_limit
            )
        if not fractions:
            return None
        return min(1.0, max(fractions))

    def emit(self, stats: SearchStats, now: Optional[float] = None) -> None:
        """Build and deliver one heartbeat unconditionally."""
        if now is None:
            now = self._clock()
        elapsed = now - self._start
        counters: Dict[str, int] = {
            "conflicts": stats.conflicts,
            "decisions": stats.decisions,
            "propagations": stats.propagations,
            "restarts": stats.restarts,
            "learned": stats.learned,
        }
        deltas = {
            name: counters[name] - self._last_counters.get(name, 0)
            for name in COUNTER_NAMES
        }
        window = max(1e-9, now - self._last_emit)
        rates = {
            name: deltas[name] / window for name in COUNTER_NAMES
        }
        lifetime_rate = counters["conflicts"] / max(1e-9, elapsed)
        trend: Optional[float] = None
        if self.seq > 0 and lifetime_rate > 0.0:
            trend = rates["conflicts"] / lifetime_rate
        fraction = self.budget_fraction()
        eta = estimate_eta_band(elapsed, fraction, trend)
        self.seq += 1
        document: Dict[str, Any] = {
            "schema": PROGRESS_SCHEMA,
            "seq": self.seq,
            "elapsed_seconds": elapsed,
            "phase": self.phase,
            "counters": counters,
            "deltas": deltas,
            "rates": rates,
            "budget_fraction": fraction,
            "eta_seconds": list(eta) if eta is not None else None,
        }
        if self._sweep is not None:
            document["sweep"] = dict(self._sweep)
        if self._meta:
            document["meta"] = dict(self._meta)
        self._last_emit = now
        self._last_counters = counters
        try:
            self._sink(document)
        except Exception:
            # Observe, never perturb: a broken sink (full disk, closed
            # pipe) must not abort the proof run it is watching.
            self.dropped += 1


def validate_progress(document: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless *document* is a well-formed
    ``repro-progress/1`` heartbeat."""
    if not isinstance(document, dict):
        raise ValueError("progress document must be a dict")
    if document.get("schema") != PROGRESS_SCHEMA:
        raise ValueError(
            "schema must be %r, got %r"
            % (PROGRESS_SCHEMA, document.get("schema"))
        )
    for key in ("seq", "elapsed_seconds", "phase", "counters"):
        if key not in document:
            raise ValueError("missing required key %r" % key)
    if not isinstance(document["seq"], int) or document["seq"] < 1:
        raise ValueError("seq must be a positive integer")
    if not isinstance(document["counters"], dict):
        raise ValueError("counters must be a dict")
    for name, value in document["counters"].items():
        if not isinstance(value, int) or value < 0:
            raise ValueError("counter %r must be a non-negative int" % name)
    eta = document.get("eta_seconds")
    if eta is not None:
        if (not isinstance(eta, (list, tuple)) or len(eta) != 2
                or eta[0] > eta[1]):
            raise ValueError("eta_seconds must be a [low, high] pair")


# ---------------------------------------------------------------------------
# JSONL spool sinks — how heartbeats cross the worker-process boundary
# ---------------------------------------------------------------------------


def jsonl_sink(path: str) -> ProgressSink:
    """Sink appending one compact JSON line per heartbeat to *path*.

    Opens and closes the file per heartbeat so the document is visible
    to a concurrently tailing reader immediately; at the default
    interval that costs microseconds every quarter second.
    """

    def emit(document: Dict[str, Any]) -> None:
        line = json.dumps(document, separators=(",", ":"))
        with open(path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()

    return emit


def read_heartbeats(path: str, limit: int = 0) -> List[Dict[str, Any]]:
    """Heartbeat documents from a JSONL spool file, oldest first.

    Tolerates a missing file and a torn final line (the writer may be
    mid-append); with *limit* > 0 only the newest *limit* documents are
    returned.
    """
    try:
        with io.open(path, "r") as handle:
            lines = handle.readlines()
    except OSError:
        return []
    documents: List[Dict[str, Any]] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            loaded = json.loads(line)
        except ValueError:
            continue  # torn tail line
        if isinstance(loaded, dict):
            documents.append(loaded)
    if limit > 0:
        documents = documents[-limit:]
    return documents


def latest_heartbeat(path: str) -> Optional[Dict[str, Any]]:
    """The newest heartbeat in a spool file, or ``None``."""
    documents = read_heartbeats(path, limit=1)
    return documents[0] if documents else None


def remove_spool(path: str) -> None:
    """Best-effort removal of a heartbeat spool file."""
    try:
        os.unlink(path)
    except OSError:
        pass


# ---------------------------------------------------------------------------
# Rendering (shared by repro-client --follow and repro-top)
# ---------------------------------------------------------------------------


def progress_bar(fraction: Optional[float], width: int = 20) -> str:
    """ASCII progress bar; indeterminate runs get a spinner-less rule."""
    if fraction is None:
        return "-" * width
    fraction = max(0.0, min(1.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def format_heartbeat(document: Dict[str, Any], width: int = 20) -> str:
    """One-line human rendering of a heartbeat document."""
    counters = document.get("counters") or {}
    rates = document.get("rates") or {}
    fraction = document.get("budget_fraction")
    parts = [
        "%-5s" % document.get("phase", "?"),
        "%7.1fs" % float(document.get("elapsed_seconds", 0.0)),
        "[%s]" % progress_bar(
            float(fraction) if fraction is not None else None, width
        ),
        "conflicts=%d (%.0f/s)" % (
            int(counters.get("conflicts", 0)),
            float(rates.get("conflicts", 0.0)),
        ),
        "decisions=%d" % int(counters.get("decisions", 0)),
        "restarts=%d" % int(counters.get("restarts", 0)),
    ]
    sweep = document.get("sweep")
    if sweep:
        parts.append(
            "wave=%d classes=%d nodes=%d/%d" % (
                int(sweep.get("wave", 0)),
                int(sweep.get("classes", 0)),
                int(sweep.get("nodes_processed", 0)),
                int(sweep.get("nodes_total", 0)),
            )
        )
    eta = document.get("eta_seconds")
    if eta:
        parts.append("eta %.1f-%.1fs" % (float(eta[0]), float(eta[1])))
    return " ".join(parts)
