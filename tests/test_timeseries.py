"""Ring-buffer series, SLO burn rates, and the tail sampler."""

import pytest

from repro.instrument.timeseries import (
    BURN_ALERT_THRESHOLD,
    RingSeries,
    SLOTracker,
    TailSampler,
    TimeSeriesStore,
)


class TestRingSeries:
    def test_capacity_bounds_retention(self):
        series = RingSeries(capacity=3)
        for i in range(5):
            series.append(float(i), float(i * 10))
        assert len(series) == 3
        assert series.items() == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
        assert series.latest() == (4.0, 40.0)
        assert series.capacity == 3

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RingSeries(capacity=0)

    def test_window_filters_by_timestamp(self):
        series = RingSeries()
        for t in (0.0, 10.0, 20.0, 30.0):
            series.append(t, t)
        assert [t for t, _ in series.window(30.0, 15.0)] == [20.0, 30.0]

    def test_increase_over_sums_positive_deltas(self):
        series = RingSeries()
        for t, v in ((0.0, 100.0), (10.0, 150.0), (20.0, 180.0)):
            series.append(t, v)
        assert series.increase_over(20.0, 100.0) == pytest.approx(80.0)

    def test_increase_over_tolerates_counter_reset(self):
        series = RingSeries()
        # A restarted shard: counter drops from 150 to 5 then grows.
        for t, v in ((0.0, 100.0), (10.0, 150.0), (20.0, 5.0),
                     (30.0, 25.0)):
            series.append(t, v)
        # 50 (pre-reset) + 5 (restart growth from zero) + 20.
        assert series.increase_over(30.0, 100.0) == pytest.approx(75.0)

    def test_increase_needs_two_samples(self):
        series = RingSeries()
        assert series.increase_over(0.0, 10.0) is None
        series.append(0.0, 1.0)
        assert series.increase_over(0.0, 10.0) is None

    def test_rate_over(self):
        series = RingSeries()
        series.append(0.0, 0.0)
        series.append(10.0, 50.0)
        assert series.rate_over(10.0, 100.0) == pytest.approx(5.0)
        assert RingSeries().rate_over(0.0, 10.0) is None

    def test_summary(self):
        series = RingSeries()
        assert series.summary() == {"count": 0}
        series.append(1.0, 2.0)
        series.append(2.0, 4.0)
        summary = series.summary()
        assert summary["count"] == 2
        assert summary["min"] == 2.0 and summary["max"] == 4.0
        assert summary["mean"] == pytest.approx(3.0)
        assert summary["latest"] == 4.0


class TestTimeSeriesStore:
    def test_record_creates_series_on_first_write(self):
        store = TimeSeriesStore(capacity=4)
        store.record("a/x", 0.0, 1.0)
        store.record("a/x", 1.0, 2.0)
        store.record("b/y", 0.0, 9.0)
        assert store.names() == ["a/x", "b/y"]
        assert len(store) == 2
        assert store.series("a/x").latest() == (1.0, 2.0)
        assert store.series("missing") is None
        assert store.summaries()["b/y"]["latest"] == 9.0


class TestSLOTracker:
    def test_burn_rate_is_error_rate_over_budget(self):
        slo = SLOTracker("availability", objective=0.99)
        slo.record(0.0, good=0.0, total=0.0)
        # 90 good of 100: 10% errors against a 1% budget -> burn 10.
        slo.record(100.0, good=90.0, total=100.0)
        assert slo.burn_rate(100.0, 300.0) == pytest.approx(10.0)

    def test_no_events_burns_nothing(self):
        slo = SLOTracker("availability", objective=0.99)
        slo.record(0.0, good=5.0, total=5.0)
        slo.record(100.0, good=5.0, total=5.0)
        assert slo.burn_rate(100.0, 300.0) == 0.0

    def test_unknown_until_two_samples(self):
        slo = SLOTracker("availability")
        assert slo.burn_rate(0.0, 300.0) is None
        slo.record(0.0, good=1.0, total=1.0)
        assert slo.burn_rate(0.0, 300.0) is None

    def test_alerts_only_when_both_windows_burn(self):
        slo = SLOTracker(
            "availability", objective=0.9, fast_window=100.0,
            slow_window=1000.0,
        )
        # Old history: clean. Recent history: everything fails.
        slo.record(0.0, good=0.0, total=0.0)
        slo.record(900.0, good=1000.0, total=1000.0)
        slo.record(950.0, good=1000.0, total=1100.0)
        status = slo.status(1000.0)
        assert status["burn_rate_fast"] == pytest.approx(10.0)
        # Slow window: 100 errors of 1100 events -> ~0.9% -> burn ~0.9.
        assert status["burn_rate_slow"] < BURN_ALERT_THRESHOLD
        assert status["alerting"] is False
        # Sustained failure: both windows burn.
        slo.record(1450.0, good=1000.0, total=1600.0)
        slo.record(1500.0, good=1000.0, total=2000.0)
        assert slo.status(1500.0)["alerting"] is True

    def test_objective_bounds(self):
        with pytest.raises(ValueError):
            SLOTracker("x", objective=1.0)
        with pytest.raises(ValueError):
            SLOTracker("x", objective=0.0)

    def test_status_block_shape(self):
        status = SLOTracker("x", objective=0.95).status(0.0)
        assert status["objective"] == 0.95
        assert status["burn_rate_fast"] is None
        assert status["alerting"] is False
        assert status["burn_threshold"] == BURN_ALERT_THRESHOLD


class TestTailSampler:
    def test_keeps_errors_and_slow_drops_fast(self):
        sampler = TailSampler(slow_seconds=1.0, capacity=8)
        assert sampler.offer({"job": "a"}, 0.1) is False
        assert sampler.offer({"job": "b"}, 2.5) is True
        assert sampler.offer({"job": "c"}, 0.1, error=True) is True
        assert sampler.offered == 3
        assert sampler.dropped == 1
        assert sampler.kept == 2
        reasons = [s["kept_because"] for s in sampler.samples()]
        assert reasons == ["slow", "error"]
        assert sampler.stats() == {"offered": 3, "kept": 2, "dropped": 1}

    def test_retention_is_bounded(self):
        sampler = TailSampler(slow_seconds=0.0, capacity=2)
        for i in range(5):
            sampler.offer({"job": i}, 1.0)
        assert sampler.kept == 2
        assert [s["record"]["job"] for s in sampler.samples()] == [3, 4]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TailSampler(capacity=0)
