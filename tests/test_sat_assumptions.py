"""Tests for assumption-based (incremental) solving."""

import itertools
import random

import pytest

from repro.proof import ProofError, ProofStore, check_proof
from repro.sat import SAT, UNSAT, Solver


def brute_force_under(num_vars, clauses, assumptions):
    for bits in itertools.product([False, True], repeat=num_vars):
        if not all(bits[abs(a) - 1] == (a > 0) for a in assumptions):
            continue
        if all(
            any(bits[abs(lit) - 1] == (lit > 0) for lit in clause)
            for clause in clauses
        ):
            return True
    return False


class TestBasicAssumptions:
    def setup_method(self):
        self.solver = Solver()
        # (1 -> 2), (2 -> 3)
        self.solver.add_clause([-1, 2])
        self.solver.add_clause([-2, 3])

    def test_sat_under_assumption(self):
        result = self.solver.solve(assumptions=[1])
        assert result.status is SAT
        assert result.model_value(3) == 1

    def test_unsat_under_contradicting_assumptions(self):
        result = self.solver.solve(assumptions=[1, -3])
        assert result.status is UNSAT
        assert set(result.final_clause) <= {-1, 3}

    def test_solver_usable_after_unsat(self):
        self.solver.solve(assumptions=[1, -3])
        assert self.solver.solve(assumptions=[1]).status is SAT

    def test_assumption_order_irrelevant(self):
        r1 = self.solver.solve(assumptions=[1, -3])
        r2 = self.solver.solve(assumptions=[-3, 1])
        assert r1.status is UNSAT and r2.status is UNSAT

    def test_duplicate_assumption_variable_rejected(self):
        with pytest.raises(ValueError):
            self.solver.solve(assumptions=[1, -1])

    def test_assumption_on_fresh_variable(self):
        result = self.solver.solve(assumptions=[9])
        assert result.status is SAT
        assert result.model_value(9) == 1

    def test_empty_final_clause_when_globally_unsat(self):
        self.solver.add_clause([1])
        self.solver.add_clause([-2])
        result = self.solver.solve(assumptions=[3])
        assert result.status is UNSAT
        assert result.final_clause == ()


class TestFinalClauseSemantics:
    @pytest.mark.parametrize("seed", range(6))
    def test_final_clause_is_implied_subset(self, seed):
        rng = random.Random(seed)
        for _ in range(30):
            num_vars = rng.randint(3, 8)
            clauses = []
            for _ in range(rng.randint(3, 25)):
                width = rng.randint(1, 3)
                variables = rng.sample(range(1, num_vars + 1), width)
                clauses.append(
                    [v if rng.random() < 0.5 else -v for v in variables]
                )
            if not brute_force_under(num_vars, clauses, []):
                continue  # keep the base consistent
            solver = Solver()
            for clause in clauses:
                assert solver.add_clause(clause)
            for _ in range(3):
                count = rng.randint(1, min(3, num_vars))
                variables = rng.sample(range(1, num_vars + 1), count)
                assumptions = [
                    v if rng.random() < 0.5 else -v for v in variables
                ]
                expected = brute_force_under(num_vars, clauses, assumptions)
                result = solver.solve(assumptions=assumptions)
                assert (result.status is SAT) == expected
                if result.status is UNSAT:
                    final = result.final_clause
                    assert set(final) <= {-a for a in assumptions}
                    # The final clause must itself be implied by the CNF.
                    assert not brute_force_under(
                        num_vars, clauses, [-lit for lit in final]
                    )


class TestAssumptionProofs:
    def test_final_clause_has_checked_derivation(self):
        store = ProofStore(validate=True)
        solver = Solver(proof=store)
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        result = solver.solve(assumptions=[1, -3])
        assert result.status is UNSAT
        assert store.clause(result.proof_id) == tuple(sorted(result.final_clause))
        check_proof(store, require_empty=False)

    def test_lemma_reusable_as_premise(self):
        """The UNSAT-under-assumptions clause can seed another solver."""
        store = ProofStore(validate=True)
        solver = Solver(proof=store)
        solver.add_clause([-1, 2])
        solver.add_clause([-2, 3])
        result = solver.solve(assumptions=[1, -3])
        # Install the derived (-1 | 3) as a premise and use it.
        solver.add_clause(
            list(result.final_clause), axiom=False, proof_id=result.proof_id
        )
        follow_up = solver.solve(assumptions=[1])
        assert follow_up.status is SAT
        assert follow_up.model_value(3) == 1

    def test_non_axiom_requires_proof_id(self):
        solver = Solver(proof=ProofStore())
        with pytest.raises(ProofError):
            solver.add_clause([1], axiom=False)

    def test_directly_contradictory_assumptions_raise(self):
        solver = Solver(proof=ProofStore())
        solver.ensure_vars(2)
        # Assumptions [1, -1] are rejected upfront as duplicates.
        with pytest.raises(ValueError):
            solver.solve(assumptions=[1, -1])


class TestIncrementalWorkflow:
    def test_clauses_added_between_solves(self):
        solver = Solver()
        solver.add_clause([1, 2])
        assert solver.solve(assumptions=[-1]).status is SAT
        solver.add_clause([-2])
        result = solver.solve(assumptions=[-1])
        assert result.status is UNSAT

    def test_learned_clauses_persist(self):
        store = ProofStore()
        solver = Solver(proof=store)
        # Pigeonhole-ish core plus a relaxing variable.
        clauses = [[1, 2], [1, -2], [-1, 2], [-1, -2]]
        for clause in clauses:
            solver.add_clause([9] + clause)
        first = solver.solve(assumptions=[-9])
        assert first.status is UNSAT
        learned_before = solver.stats.learned
        second = solver.solve(assumptions=[-9])
        assert second.status is UNSAT
        # The second call should reuse work (few or no new learned clauses).
        assert solver.stats.learned - learned_before <= learned_before + 1

    def test_many_alternating_queries(self):
        solver = Solver()
        for v in range(1, 30):
            solver.add_clause([-v, v + 1])
        for v in range(1, 29, 3):
            sat_result = solver.solve(assumptions=[v])
            assert sat_result.status is SAT
            unsat_result = solver.solve(assumptions=[v, -(v + 1)])
            assert unsat_result.status is UNSAT
