"""Function-preserving AIG transforms used to manufacture benchmark pairs."""

from .balance import balance
from .pipeline import PipelineResult, optimize, optimize_certified
from .restructure import detect_mux, detect_xor, restructure
from .rewrite import rewrite, synthesize_table

__all__ = [
    "PipelineResult",
    "balance",
    "detect_mux",
    "detect_xor",
    "optimize",
    "optimize_certified",
    "restructure",
    "rewrite",
    "synthesize_table",
]
