#!/usr/bin/env python
"""Using the checker's counterexamples to localize an injected fault.

A copy of an ALU is corrupted by flipping the polarity of one internal
edge. The equivalence check refutes the pair and returns a witness; by
re-simulating both circuits on the witness (plus random patterns) and
diffing per-output signatures, the example narrows the fault down to the
affected output cone — the everyday debugging loop an equivalence
checker supports.

Run:
    python examples/fault_localization.py [seed]
"""

import random
import sys

from repro import check_equivalence
from repro.aig import AIG, Simulator
from repro.aig.literal import lit_not_cond, lit_sign, lit_var
from repro.circuits import alu


def inject_edge_flip(aig, rng):
    """Copy *aig* with one random AND fanin complemented."""
    and_vars = list(aig.and_vars())
    target = rng.choice(and_vars)
    mutated = AIG(aig.name + "~faulty")
    lit_map = [None] * aig.num_vars
    lit_map[0] = 0
    for var, name in zip(aig.inputs, aig.input_names):
        lit_map[var] = mutated.add_input(name)
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        m0 = lit_not_cond(lit_map[lit_var(f0)], lit_sign(f0))
        m1 = lit_not_cond(lit_map[lit_var(f1)], lit_sign(f1))
        if var == target:
            m0 = m0 ^ 1
        lit_map[var] = mutated.add_and(m0, m1)
    for lit, name in zip(aig.outputs, aig.output_names):
        mutated.add_output(
            lit_not_cond(lit_map[lit_var(lit)], lit_sign(lit)), name
        )
    return mutated, target


def main(seed=7):
    rng = random.Random(seed)
    golden = alu(4)
    faulty, fault_var = inject_edge_flip(golden, rng)
    print("injected polarity flip at internal node n%d" % fault_var)

    result = check_equivalence(golden, faulty)
    if result.equivalent:
        print("fault was functionally benign (redundant edge); done")
        return
    witness = result.counterexample
    print("counterexample inputs: %s" % "".join(str(b) for b in witness))
    print("golden outputs: %s" % golden.evaluate(witness))
    print("faulty outputs: %s" % faulty.evaluate(witness))

    # Localize: which outputs ever disagree across many patterns?
    sim_golden = Simulator(golden, num_words=8, seed=seed)
    sim_faulty = Simulator(faulty, num_words=8, seed=seed)
    sim_golden.add_pattern(witness)
    sim_faulty.add_pattern(witness)
    suspicious = []
    for index, (sig_g, sig_f) in enumerate(
        zip(sim_golden.output_signatures(), sim_faulty.output_signatures())
    ):
        diff = sig_g ^ sig_f
        if diff:
            rate = bin(diff).count("1") / sim_golden.num_patterns
            suspicious.append((index, rate))
    print("outputs disagreeing (index, observed rate):")
    for index, rate in suspicious:
        print("  %s: %.1f%%" % (golden.output_names[index], 100 * rate))
    cones = [
        set(golden.cone_vars([golden.outputs[index]]))
        for index, _ in suspicious
    ]
    common = set.intersection(*cones) if cones else set()
    print(
        "fault must lie in the intersection of %d output cones "
        "(%d candidate nodes)" % (len(cones), len(common))
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
