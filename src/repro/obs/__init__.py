"""Fleet observability plane: aggregator, exporter, dashboard.

``repro.obs`` is the read-only companion to the service stack. The
:class:`~repro.obs.aggregator.ObsAggregator` polls a router and its
shards over the normal ``repro-service/1`` protocol (``stats``,
``metrics``, ``progress``), folds what it sees into bounded in-memory
time series (:mod:`repro.instrument.timeseries`), tracks SLO burn
rates, tail-samples slow and failed jobs, and re-exports everything as
one merged Prometheus exposition plus a ``repro-obs/1`` JSON snapshot.

Two CLIs sit on top: ``repro-obs`` (headless aggregator/exporter, see
:mod:`repro.obs.cli`) and ``repro-top`` (live terminal dashboard, see
:mod:`repro.obs.top`). Both are strictly observational — they speak
only read verbs and can never perturb a job.
"""

from .aggregator import (
    DEFAULT_POLL_INTERVAL,
    ObsAggregator,
    ObsTarget,
    validate_obs_snapshot,
)

__all__ = [
    "DEFAULT_POLL_INTERVAL",
    "ObsAggregator",
    "ObsTarget",
    "validate_obs_snapshot",
]
