"""Prometheus scrape endpoint for ``repro-serve``.

A deliberately tiny sidecar: one stdlib ``ThreadingHTTPServer`` on its
own port, serving

* ``GET /metrics`` — the server's ``repro-metrics/1`` histograms plus
  its ``repro-stats/1`` counters and numeric gauges, rendered by
  :func:`repro.instrument.metrics.to_prometheus_text` (text exposition
  format version 0.0.4);
* ``GET /healthz`` — ``200 ok`` liveness for probes.

The main ``repro-service/1`` protocol stays the single source of truth
— Unix-socket deployments without this endpoint get the identical
payload from the ``metrics`` protocol verb. The endpoint is read-only
and never touches the job table, so a misbehaving scraper cannot
disturb the service.
"""

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _MetricsHandler(BaseHTTPRequestHandler):
    def do_GET(self):
        if self.path.split("?", 1)[0] == "/metrics":
            try:
                body = self.server.render_metrics().encode("utf-8")
            except Exception as exc:  # a scrape must answer, never hang
                self._respond(500, "text/plain; charset=utf-8",
                              ("metrics rendering failed: %s\n" % exc)
                              .encode("utf-8"))
                return
            self._respond(200, PROMETHEUS_CONTENT_TYPE, body)
        elif self.path.split("?", 1)[0] == "/healthz":
            self._respond(200, "text/plain; charset=utf-8", b"ok\n")
        else:
            self._respond(404, "text/plain; charset=utf-8",
                          b"not found (try /metrics)\n")

    def _respond(self, status, content_type, body):
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format, *args):
        # Scrapes every few seconds would flood stderr; the service's
        # structured logs cover the interesting events.
        pass


class MetricsHTTPServer:
    """Threaded ``/metrics`` endpoint bound to ``(host, port)``.

    Args:
        host: bind address.
        port: TCP port (0 picks a free one; see :attr:`port`).
        render: zero-argument callable returning the Prometheus text
            body (called per scrape, under the caller's locks).
    """

    def __init__(self, host, port, render):
        self._http = ThreadingHTTPServer((host, port), _MetricsHandler)
        self._http.daemon_threads = True
        self._http.render_metrics = render
        self._thread = None

    @property
    def port(self):
        """The bound TCP port (useful with port 0)."""
        return self._http.server_address[1]

    @property
    def address(self):
        """``host:port`` of the bound endpoint."""
        host, port = self._http.server_address[:2]
        return "%s:%d" % (host, port)

    def start(self):
        """Serve scrapes on a daemon thread; returns self."""
        self._thread = threading.Thread(
            target=self._http.serve_forever,
            name="repro-serve-metrics", daemon=True,
        )
        self._thread.start()
        return self

    def close(self):
        """Stop serving and release the socket (idempotent)."""
        if self._thread is not None:
            self._http.shutdown()
            self._thread = None
        self._http.server_close()
