"""``repro-stats``: inspect, diff, aggregate, and render telemetry files.

One tool for every versioned telemetry artifact the package emits:

* ``repro-stats show FILE`` — pretty-print a ``repro-stats/1`` report
  (phases sorted by time, counters, gauges, latency quantiles).
* ``repro-stats diff A B`` — compare two reports phase by phase and
  counter by counter; the tool for "what did this change cost?".
* ``repro-stats aggregate FILES... [-o OUT]`` — fold many reports into
  one (summing phases and counters), e.g. per-job stats into a run
  total.
* ``repro-stats flamegraph FILE [-o OUT]`` — collapsed-stack lines
  (``a;b;c <microseconds>``) from either a ``repro-trace/1`` document
  (exact per-span self time) or a ``repro-stats/1`` report (phase
  ``self_seconds``); feed to ``flamegraph.pl`` or speedscope.
* ``repro-stats chrome TRACE [-o OUT]`` — Chrome ``trace_event`` JSON
  from a ``repro-trace/1`` document (Perfetto / ``chrome://tracing``).

Every subcommand validates its input against the schema validators in
:mod:`repro.analyze` semantics (the same checks CI runs) and fails with
a clear message — exit code 3 — on a malformed file.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, TextIO

from ..exit_codes import EXIT_INVALID_INPUT, EXIT_OK
from .metrics import METRICS_SCHEMA, validate_metrics_report
from .recorder import STATS_SCHEMA, Recorder, validate_report
from .tracing import (
    TRACE_SCHEMA,
    to_chrome_trace,
    to_collapsed_stacks,
    validate_trace_report,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-stats",
        description="Inspect, diff, aggregate, and render repro-stats/1 "
        "and repro-trace/1 telemetry files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    show = sub.add_parser("show", help="pretty-print a stats report")
    show.add_argument("file", help="repro-stats/1 JSON file")
    show.add_argument(
        "--top", type=int, default=0, metavar="N",
        help="show only the N most expensive phases (0 = all)",
    )

    diff = sub.add_parser("diff", help="compare two stats reports")
    diff.add_argument("old", help="baseline repro-stats/1 JSON file")
    diff.add_argument("new", help="candidate repro-stats/1 JSON file")
    diff.add_argument(
        "--threshold", type=float, default=0.0, metavar="SECONDS",
        help="hide phases whose absolute delta is below this",
    )

    aggregate = sub.add_parser(
        "aggregate", help="fold several stats reports into one",
    )
    aggregate.add_argument(
        "files", nargs="+", help="repro-stats/1 JSON files",
    )
    aggregate.add_argument(
        "-o", "--output", metavar="PATH", default=None,
        help="write the merged report here (default: stdout)",
    )

    flame = sub.add_parser(
        "flamegraph",
        help="collapsed flamegraph stacks from a trace or stats file",
    )
    flame.add_argument(
        "file", help="repro-trace/1 or repro-stats/1 JSON file",
    )
    flame.add_argument(
        "-o", "--output", metavar="PATH", default=None,
        help="write the collapsed stacks here (default: stdout)",
    )

    chrome = sub.add_parser(
        "chrome", help="Chrome trace-event JSON from a trace file",
    )
    chrome.add_argument("file", help="repro-trace/1 JSON file")
    chrome.add_argument(
        "-o", "--output", metavar="PATH", default=None,
        help="write the Chrome trace here (default: stdout)",
    )
    return parser


# ----------------------------------------------------------------------
# Loading and validation
# ----------------------------------------------------------------------


class StatsCliError(Exception):
    """A user-facing input problem (bad file, bad schema)."""


def _load(path: str) -> Any:
    try:
        with open(path) as handle:
            return json.load(handle)
    except OSError as exc:
        raise StatsCliError(str(exc))
    except ValueError as exc:
        raise StatsCliError("%s: not valid JSON: %s" % (path, exc))


def _load_stats(path: str) -> Dict[str, Any]:
    document = _load(path)
    try:
        return validate_report(document)
    except ValueError as exc:
        raise StatsCliError("%s: not a valid %s report: %s"
                            % (path, STATS_SCHEMA, exc))


def _load_trace(path: str) -> Dict[str, Any]:
    document = _load(path)
    try:
        return validate_trace_report(document)
    except ValueError as exc:
        raise StatsCliError("%s: not a valid %s document: %s"
                            % (path, TRACE_SCHEMA, exc))


def _load_any(path: str) -> Dict[str, Any]:
    """Load a telemetry file, dispatching on its schema tag."""
    document = _load(path)
    schema = document.get("schema") if isinstance(document, dict) else None
    try:
        if schema == TRACE_SCHEMA:
            return validate_trace_report(document)
        if schema == STATS_SCHEMA:
            return validate_report(document)
        if schema == METRICS_SCHEMA:
            return validate_metrics_report(document)
    except ValueError as exc:
        raise StatsCliError("%s: invalid %s file: %s"
                            % (path, schema, exc))
    raise StatsCliError(
        "%s: unrecognized schema tag %r (expected %s, %s, or %s)"
        % (path, schema, STATS_SCHEMA, TRACE_SCHEMA, METRICS_SCHEMA)
    )


def _emit(text: str, output: Optional[str], stream: TextIO) -> None:
    if output is None:
        stream.write(text)
    else:
        with open(output, "w") as handle:
            handle.write(text)


# ----------------------------------------------------------------------
# show
# ----------------------------------------------------------------------


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return "%.3fs" % value
    return "%.3fms" % (value * 1e3)


def _cmd_show(args: argparse.Namespace, out: TextIO) -> int:
    report = _load_stats(args.file)
    phases: Dict[str, Dict[str, Any]] = report["phases"]
    meta: Dict[str, Any] = report.get("meta", {})
    tool = meta.get("tool")
    out.write("%s  (%s, %.3fs elapsed)\n" % (
        args.file, tool or "no tool tag", report["elapsed_seconds"],
    ))
    ordered = sorted(
        phases.items(), key=lambda item: -float(item[1]["seconds"])
    )
    if args.top > 0:
        ordered = ordered[:args.top]
    if ordered:
        width = max(len(name) for name, _ in ordered)
        out.write("\nphases (by inclusive time):\n")
        for name, cell in ordered:
            out.write("  %-*s  %10s  self %10s  x%d\n" % (
                width, name,
                _fmt_seconds(float(cell["seconds"])),
                _fmt_seconds(float(cell.get(
                    "self_seconds", cell["seconds"]
                ))),
                int(cell["count"]),
            ))
    counters: Dict[str, int] = report["counters"]
    if counters:
        out.write("\ncounters:\n")
        for name, value in sorted(counters.items()):
            out.write("  %s = %d\n" % (name, value))
    gauges: Dict[str, Any] = report["gauges"]
    if gauges:
        out.write("\ngauges:\n")
        for name, gauge_value in sorted(gauges.items()):
            out.write("  %s = %s\n" % (name, gauge_value))
    return EXIT_OK


# ----------------------------------------------------------------------
# diff
# ----------------------------------------------------------------------


def _cmd_diff(args: argparse.Namespace, out: TextIO) -> int:
    old = _load_stats(args.old)
    new = _load_stats(args.new)
    out.write("diff %s -> %s\n" % (args.old, args.new))
    old_phases: Dict[str, Dict[str, Any]] = old["phases"]
    new_phases: Dict[str, Dict[str, Any]] = new["phases"]
    names = sorted(set(old_phases) | set(new_phases))
    rows: List[str] = []
    for name in names:
        before = float(old_phases.get(name, {}).get("seconds", 0.0))
        after = float(new_phases.get(name, {}).get("seconds", 0.0))
        delta = after - before
        if abs(delta) < args.threshold:
            continue
        if before > 0:
            pct = " (%+.1f%%)" % (100.0 * delta / before)
        else:
            pct = " (new)" if after > 0 else ""
        rows.append("  %-40s  %10s -> %10s  %+10s%s\n" % (
            name, _fmt_seconds(before), _fmt_seconds(after),
            _fmt_seconds(abs(delta)) if delta >= 0
            else "-" + _fmt_seconds(-delta),
            pct,
        ))
    if rows:
        out.write("\nphases:\n")
        for row in rows:
            out.write(row)
    old_counters: Dict[str, int] = old["counters"]
    new_counters: Dict[str, int] = new["counters"]
    counter_rows: List[str] = []
    for name in sorted(set(old_counters) | set(new_counters)):
        before_n = old_counters.get(name, 0)
        after_n = new_counters.get(name, 0)
        if before_n == after_n:
            continue
        counter_rows.append("  %-40s  %d -> %d  (%+d)\n" % (
            name, before_n, after_n, after_n - before_n,
        ))
    if counter_rows:
        out.write("\ncounters:\n")
        for row in counter_rows:
            out.write(row)
    if not rows and not counter_rows:
        out.write("  no differences above the threshold\n")
    return EXIT_OK


# ----------------------------------------------------------------------
# aggregate
# ----------------------------------------------------------------------


def _cmd_aggregate(args: argparse.Namespace, out: TextIO) -> int:
    merged = Recorder()
    elapsed = 0.0
    for path in args.files:
        report = _load_stats(path)
        merged.merge_report(report)
        elapsed = max(elapsed, float(report["elapsed_seconds"]))
    merged.meta["aggregated_from"] = list(args.files)
    document = merged.report()
    # The merged elapsed time is the max of the inputs (reports from
    # parallel workers overlap in time), not this process's uptime.
    document["elapsed_seconds"] = elapsed
    text = json.dumps(document, indent=2, sort_keys=True) + "\n"
    _emit(text, args.output, out)
    return EXIT_OK


# ----------------------------------------------------------------------
# flamegraph / chrome
# ----------------------------------------------------------------------


def stats_collapsed_stacks(report: Dict[str, Any]) -> List[str]:
    """Collapsed stacks from a stats report's phase table.

    Phase names are already hierarchical (``a/b/c``), so each phase is
    one stack, weighted by its ``self_seconds`` in integer microseconds
    — summing a subtree therefore never double-counts.
    """
    lines: List[str] = []
    phases: Dict[str, Dict[str, Any]] = report["phases"]
    for name, cell in sorted(phases.items()):
        self_seconds = float(cell.get("self_seconds", cell["seconds"]))
        micros = int(round(self_seconds * 1e6))
        if micros <= 0:
            continue
        lines.append("%s %d" % (name.replace("/", ";"), micros))
    return lines


def _cmd_flamegraph(args: argparse.Namespace, out: TextIO) -> int:
    document = _load_any(args.file)
    if document.get("schema") == TRACE_SCHEMA:
        lines = to_collapsed_stacks(document)
    elif document.get("schema") == STATS_SCHEMA:
        lines = stats_collapsed_stacks(document)
    else:
        raise StatsCliError(
            "%s: flamegraph needs a %s or %s file"
            % (args.file, TRACE_SCHEMA, STATS_SCHEMA)
        )
    _emit("".join(line + "\n" for line in lines), args.output, out)
    return EXIT_OK


def _cmd_chrome(args: argparse.Namespace, out: TextIO) -> int:
    document = _load_trace(args.file)
    chrome = to_chrome_trace(document)
    _emit(json.dumps(chrome, sort_keys=True) + "\n", args.output, out)
    return EXIT_OK


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    commands = {
        "show": _cmd_show,
        "diff": _cmd_diff,
        "aggregate": _cmd_aggregate,
        "flamegraph": _cmd_flamegraph,
        "chrome": _cmd_chrome,
    }
    try:
        return commands[args.command](args, sys.stdout)
    except StatsCliError as exc:
        print("repro-stats: %s" % exc, file=sys.stderr)
        return EXIT_INVALID_INPUT
    except BrokenPipeError:
        # Output piped into a pager/head that exited early.
        return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
