"""Reduced Ordered Binary Decision Diagrams.

A compact ROBDD package used as the classical baseline engine for
combinational equivalence (canonical-form comparison) and as an
independent oracle in the test suite. Nodes live in a manager-owned arena
with a unique table (hash-consing) and an ITE computed table, giving
canonicity: two functions are equal iff their node ids are equal.

The variable order is fixed at manager construction. For two-operand
word-level circuits an interleaved order (a0 b0 a1 b1 ...) keeps adders
and comparators polynomial; multipliers blow up under every order, which
is itself one of the evaluation's data points.
"""

from ..aig.literal import lit_sign, lit_var


class BddOverflowError(RuntimeError):
    """Raised when the manager exceeds its node budget."""


class BddManager:
    """Owner of BDD nodes for a fixed variable order.

    Args:
        num_vars: number of BDD variables (0 .. num_vars-1 in order).
        max_nodes: node budget; exceeding it raises
            :class:`BddOverflowError` (the blow-up guard for baselines).
    """

    FALSE = 0
    TRUE = 1

    def __init__(self, num_vars, max_nodes=1_000_000):
        self.num_vars = num_vars
        self.max_nodes = max_nodes
        # Arena: parallel lists (var, low, high); ids 0/1 are terminals.
        self._var = [num_vars, num_vars]
        self._low = [0, 1]
        self._high = [0, 1]
        self._unique = {}
        self._ite_cache = {}

    @property
    def num_nodes(self):
        """Total allocated nodes including terminals."""
        return len(self._var)

    def var(self, index):
        """The BDD of variable *index*."""
        if not 0 <= index < self.num_vars:
            raise ValueError("variable index %d out of range" % index)
        return self._node(index, self.FALSE, self.TRUE)

    def _node(self, var, low, high):
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._var)
            if node >= self.max_nodes:
                raise BddOverflowError(
                    "BDD node budget of %d exhausted" % self.max_nodes
                )
            self._var.append(var)
            self._low.append(low)
            self._high.append(high)
            self._unique[key] = node
        return node

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def ite(self, f, g, h):
        """If-then-else: ``f ? g : h`` (the universal connective)."""
        if f == self.TRUE:
            return g
        if f == self.FALSE:
            return h
        if g == h:
            return g
        if g == self.TRUE and h == self.FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(self._var[f], self._var[g], self._var[h])
        f0, f1 = self._cofactors(f, top)
        g0, g1 = self._cofactors(g, top)
        h0, h1 = self._cofactors(h, top)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._node(top, low, high)
        self._ite_cache[key] = result
        return result

    def _cofactors(self, node, var):
        if self._var[node] == var:
            return self._low[node], self._high[node]
        return node, node

    def apply_not(self, f):
        """Negation."""
        return self.ite(f, self.FALSE, self.TRUE)

    def apply_and(self, f, g):
        """Conjunction."""
        return self.ite(f, g, self.FALSE)

    def apply_or(self, f, g):
        """Disjunction."""
        return self.ite(f, self.TRUE, g)

    def apply_xor(self, f, g):
        """Exclusive or."""
        return self.ite(f, self.apply_not(g), g)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def evaluate(self, node, assignment):
        """Evaluate *node* under *assignment* (sequence indexed by var)."""
        while node > self.TRUE:
            if assignment[self._var[node]]:
                node = self._high[node]
            else:
                node = self._low[node]
        return node

    def any_sat(self, node):
        """Some satisfying assignment (dict var -> 0/1), or None."""
        if node == self.FALSE:
            return None
        assignment = {}
        while node > self.TRUE:
            var = self._var[node]
            if self._high[node] != self.FALSE:
                assignment[var] = 1
                node = self._high[node]
            else:
                assignment[var] = 0
                node = self._low[node]
        return assignment

    def count_sat(self, node, num_vars=None):
        """Number of satisfying assignments over *num_vars* variables."""
        if num_vars is None:
            num_vars = self.num_vars
        cache = {}

        def walk(n):
            if n == self.FALSE:
                return 0
            if n == self.TRUE:
                return 1 << num_vars
            hit = cache.get(n)
            if hit is not None:
                return hit
            low = walk(self._low[n]) >> 1
            high = walk(self._high[n]) >> 1
            cache[n] = low + high
            return low + high

        return walk(node)

    def size(self, node):
        """Number of distinct nodes reachable from *node* (terminals excluded)."""
        seen = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if n <= self.TRUE or n in seen:
                continue
            seen.add(n)
            stack.append(self._low[n])
            stack.append(self._high[n])
        return len(seen)


def interleaved_order(aig):
    """Variable order interleaving the two halves of the input vector.

    For the two-operand circuits in :mod:`repro.circuits` the inputs come
    as ``a0..a{n-1} b0..b{n-1} [extras]``; pairing ``a_k`` with ``b_k``
    keeps adder/comparator BDDs linear. Returns a list mapping input
    position -> BDD variable index.
    """
    count = aig.num_inputs
    half = count // 2
    order = [0] * count
    slot = 0
    for k in range(half):
        order[k] = slot
        slot += 1
        order[half + k] = slot
        slot += 1
    for k in range(2 * half, count):
        order[k] = slot
        slot += 1
    return order


def build_output_bdds(aig, manager=None, order=None, max_nodes=1_000_000):
    """Build BDDs for every output of *aig*.

    Args:
        aig: the circuit.
        manager: optional shared :class:`BddManager` (one is created
            otherwise).
        order: list mapping input position -> BDD variable index
            (identity when None; see :func:`interleaved_order`).
        max_nodes: node budget for a fresh manager.

    Returns:
        ``(manager, [output_node_ids])``.

    Raises:
        BddOverflowError: when the build exceeds the node budget.
    """
    if manager is None:
        manager = BddManager(aig.num_inputs, max_nodes=max_nodes)
    if order is None:
        order = list(range(aig.num_inputs))
    node_of = [manager.FALSE] * aig.num_vars
    for position, var in enumerate(aig.inputs):
        node_of[var] = manager.var(order[position])
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        b0 = node_of[lit_var(f0)]
        if lit_sign(f0):
            b0 = manager.apply_not(b0)
        b1 = node_of[lit_var(f1)]
        if lit_sign(f1):
            b1 = manager.apply_not(b1)
        node_of[var] = manager.apply_and(b0, b1)
    outputs = []
    for lit in aig.outputs:
        node = node_of[lit_var(lit)]
        if lit_sign(lit):
            node = manager.apply_not(node)
        outputs.append(node)
    return manager, outputs
