"""Tests for AIGER reading/writing (ASCII and binary)."""

import io

import pytest

from repro.aig import AigerError, read_aag, read_aig, read_auto, \
    write_aag, write_aig
from repro.circuits import (
    alu,
    array_multiplier,
    carry_lookahead_adder,
    majority,
    ripple_carry_adder,
)

from conftest import assert_equivalent_exhaustive


def roundtrip_aag(aig):
    buffer = io.StringIO()
    write_aag(aig, buffer)
    buffer.seek(0)
    return read_aag(buffer)


def roundtrip_aig(aig):
    buffer = io.BytesIO()
    write_aig(aig, buffer)
    buffer.seek(0)
    return read_aig(buffer)


CIRCUITS = [
    ripple_carry_adder(3),
    carry_lookahead_adder(3),
    array_multiplier(3),
    alu(2),
    majority(5),
]


class TestAagRoundtrip:
    @pytest.mark.parametrize("aig", CIRCUITS, ids=lambda a: a.name)
    def test_function_preserved(self, aig):
        assert_equivalent_exhaustive(aig, roundtrip_aag(aig))

    @pytest.mark.parametrize("aig", CIRCUITS, ids=lambda a: a.name)
    def test_counts_preserved(self, aig):
        back = roundtrip_aag(aig)
        assert back.num_inputs == aig.num_inputs
        assert back.num_outputs == aig.num_outputs
        assert back.num_ands == aig.num_ands

    def test_symbols_preserved(self, tiny_aig):
        back = roundtrip_aag(tiny_aig)
        assert back.input_names == ("a", "b", "c")
        assert back.output_names == ("y",)

    def test_comment_becomes_name(self, tiny_aig):
        back = roundtrip_aag(tiny_aig)
        assert back.name == "tiny"


class TestBinaryRoundtrip:
    @pytest.mark.parametrize("aig", CIRCUITS, ids=lambda a: a.name)
    def test_function_preserved(self, aig):
        assert_equivalent_exhaustive(aig, roundtrip_aig(aig))

    @pytest.mark.parametrize("aig", CIRCUITS, ids=lambda a: a.name)
    def test_counts_preserved(self, aig):
        back = roundtrip_aig(aig)
        assert back.num_ands == aig.num_ands

    def test_delta_encoding_is_compact(self):
        aig = ripple_carry_adder(8)
        text = io.StringIO()
        write_aag(aig, text)
        binary = io.BytesIO()
        write_aig(aig, binary)
        assert len(binary.getvalue()) < len(text.getvalue())


class TestReadAuto:
    def test_dispatch(self, tmp_path, tiny_aig):
        ascii_path = tmp_path / "t.aag"
        binary_path = tmp_path / "t.aig"
        write_aag(tiny_aig, str(ascii_path))
        write_aig(tiny_aig, str(binary_path))
        assert_equivalent_exhaustive(tiny_aig, read_auto(str(ascii_path)))
        assert_equivalent_exhaustive(tiny_aig, read_auto(str(binary_path)))

    def test_rejects_garbage(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("not an aiger file")
        with pytest.raises(AigerError):
            read_auto(str(path))


class TestMalformedInput:
    def test_empty(self):
        with pytest.raises(AigerError):
            read_aag(io.StringIO(""))

    def test_bad_magic(self):
        with pytest.raises(AigerError):
            read_aag(io.StringIO("agg 1 1 0 0 0\n2\n"))

    def test_latches_rejected(self):
        with pytest.raises(AigerError, match="latches"):
            read_aag(io.StringIO("aag 2 1 1 0 0\n2\n4 2\n"))

    def test_inconsistent_header(self):
        with pytest.raises(AigerError, match="inconsistent"):
            read_aag(io.StringIO("aag 5 1 0 0 1\n2\n4 2 2\n"))

    def test_truncated_body(self):
        with pytest.raises(AigerError):
            read_aag(io.StringIO("aag 2 2 0 1 0\n2\n"))

    def test_odd_input_literal(self):
        with pytest.raises(AigerError, match="input literal"):
            read_aag(io.StringIO("aag 1 1 0 0 0\n3\n"))

    def test_undefined_literal_in_output(self):
        with pytest.raises(AigerError):
            read_aag(io.StringIO("aag 1 1 0 1 0\n2\n8\n"))

    def test_cyclic_ands(self):
        text = "aag 3 1 0 1 2\n2\n4\n4 6 2\n6 4 2\n"
        with pytest.raises(AigerError, match="cyclic"):
            read_aag(io.StringIO(text))

    def test_odd_and_lhs(self):
        with pytest.raises(AigerError, match="lhs"):
            read_aag(io.StringIO("aag 2 1 0 0 1\n2\n5 2 2\n"))

    def test_symbol_out_of_range(self):
        text = "aag 1 1 0 1 0\n2\n2\ni5 name\n"
        with pytest.raises(AigerError, match="out of range"):
            read_aag(io.StringIO(text))

    def test_binary_truncated(self):
        with pytest.raises(AigerError):
            read_aig(io.BytesIO(b"aig 2 1 0 1 1\n2\n\x80"))


class TestForeignEncodings:
    def test_aag_with_non_contiguous_vars(self):
        # Variables out of our writer's ordering: inputs at 4 and 2.
        text = "aag 3 2 0 1 1\n4\n2\n6\n6 4 2\n"
        aig = read_aag(io.StringIO(text))
        assert aig.num_inputs == 2
        assert aig.num_ands == 1
        # Output is AND of the two inputs.
        assert aig.evaluate([1, 1]) == [1]
        assert aig.evaluate([1, 0]) == [0]

    def test_aag_with_reordered_and_definitions(self):
        # Second AND defined before its operand's definition appears.
        text = "aag 4 2 0 1 2\n2\n4\n8\n8 6 2\n6 2 4\n"
        aig = read_aag(io.StringIO(text))
        assert aig.evaluate([1, 1]) == [1]
        assert aig.evaluate([0, 1]) == [0]

    def test_duplicate_ands_folded_by_strash(self):
        text = "aag 4 2 0 2 2\n2\n4\n6\n8\n6 2 4\n8 2 4\n"
        aig = read_aag(io.StringIO(text))
        assert aig.num_ands == 1
        assert aig.evaluate([1, 1]) == [1, 1]
