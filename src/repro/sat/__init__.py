"""CDCL SAT solving with resolution-proof logging."""

from .solver import SAT, UNKNOWN, UNSAT, SolveResult, Solver, SolverStats, luby

__all__ = [
    "SAT",
    "UNKNOWN",
    "UNSAT",
    "SolveResult",
    "Solver",
    "SolverStats",
    "luby",
]
