"""Proof-producing SAT sweeping (fraiging) over a miter AIG.

The engine implements the modern CEC loop:

1. **Simulate** the miter on random patterns; nodes with equal (or
   complementary) signatures form candidate equivalence classes.
2. Visit AND nodes in topological order. For each node, first try a
   **structural merge**: if its fanins, rewritten to class
   representatives, are constant / equal / complementary / hash-equal to
   an earlier node's reduced fanins, the node joins that class — and the
   equivalence clauses are *derived by resolution* from Tseitin clauses
   and earlier lemmas (:mod:`repro.core.stitch`).
3. Otherwise, if simulation proposes a candidate, run two **assumption
   SAT calls** on the shared incremental solver; UNSAT answers return
   equivalence clauses with resolution derivations, a SAT answer returns
   a counterexample pattern that refines every class at once.
4. Derived equivalence clauses are installed in the solver as premises,
   so later calls get monotonically easier.

After the sweep, the miter output has (when the circuits are equivalent)
been merged with constant 0: asserting the miter-output unit clause then
refutes the formula by level-0 propagation, completing a single
resolution proof of the miter CNF + output unit — the paper's artifact.
"""

import time

from ..aig.literal import FALSE, TRUE, lit_not_cond, lit_var
from ..aig.simulate import Simulator
from ..cnf.tseitin import tseitin_encode
from ..instrument import NULL_RECORDER
from ..proof.store import ProofStore
from ..sat.solver import SAT, UNKNOWN, UNSAT, Solver
from .stitch import EquivLemma, StitchError, StructuralStitcher


class SweepOptions:
    """Tuning knobs for the sweeping engine.

    Attributes:
        sim_words: initial random-simulation words (64 patterns each).
        seed: RNG seed for simulation patterns.
        structural_mode: ``"resolution"`` derives structural merges by
            explicit resolution chains (the paper's construction, with a
            per-case SAT fallback); ``"sat"`` proves them with assumption
            SAT calls; ``"off"`` disables structural merging entirely
            (every merge goes through simulation candidates + SAT) — the
            ablation configurations.
        use_simulation: when false, no candidate classes are formed from
            simulation; only structural merging runs (ablation B). The
            final output check still falls back to SAT.
        cex_neighbors: when a SAT call refutes a candidate, also add this
            many single-bit perturbations of the counterexample pattern
            to the simulator (the classic distance-1 trick: neighbours of
            a distinguishing pattern distinguish many other near-misses).
        refine_batch: refinement batching policy. ``1`` (default) absorbs
            each counterexample *and* its distance-1 neighbours with one
            resimulation pass and updates the candidate classes
            incrementally. ``n > 1`` additionally defers flushing until
            *n* counterexamples have accumulated, so several SAT
            disproofs share one pass (a deferred node is registered as a
            provisional root and may merge later instead). ``0`` is the
            legacy mode: one full resimulation per pattern and a
            class-table rebuild over all processed nodes — kept for
            differential testing and as the benchmark baseline.
        max_conflicts: per-call conflict budget (None = unlimited). A
            budget-exhausted candidate is skipped, never mis-merged.
        proof: when false, skip all proof logging (timing baseline).
        validate_proof: validate every derivation at insertion (slow;
            tests only).
    """

    def __init__(
        self,
        sim_words=4,
        seed=2007,
        structural_mode="resolution",
        use_simulation=True,
        cex_neighbors=0,
        refine_batch=1,
        max_conflicts=None,
        proof=True,
        validate_proof=False,
    ):
        if structural_mode not in ("resolution", "sat", "off"):
            raise ValueError("bad structural_mode %r" % structural_mode)
        if not isinstance(refine_batch, int) or refine_batch < 0:
            raise ValueError("refine_batch must be a non-negative int")
        self.sim_words = sim_words
        self.seed = seed
        self.structural_mode = structural_mode
        self.use_simulation = use_simulation
        self.cex_neighbors = cex_neighbors
        self.refine_batch = refine_batch
        self.max_conflicts = max_conflicts
        self.proof = proof
        self.validate_proof = validate_proof


class SweepStats:
    """Counters describing one sweep run."""

    def __init__(self):
        self.nodes_processed = 0
        self.structural_merges = 0
        self.structural_fallbacks = 0
        self.sat_merges = 0
        self.const_merges = 0
        self.sat_calls = 0
        self.sat_calls_sat = 0
        self.sat_calls_unsat = 0
        self.sat_calls_unknown = 0
        self.refinements = 0
        # Resimulation flushes: how often the simulator actually re-ran
        # over the whole AIG for refinement (<= refinements when
        # batching/deferral is on; the initial random-pattern pass is
        # not counted here).
        self.refine_flushes = 0
        # Refinement patterns absorbed (counterexamples + neighbours).
        self.refine_patterns = 0
        # Total full-AIG simulation passes, initial pass included
        # (mirrors Simulator.num_resimulations at the end of the sweep).
        self.sim_passes = 0
        self.skipped_candidates = 0
        self.sweep_seconds = 0.0
        # Per-activity phase breakdown of sweep_seconds.
        self.sim_seconds = 0.0
        self.strash_seconds = 0.0
        self.sat_seconds = 0.0
        # True when candidates were skipped because a Budget ran out
        # (as opposed to per-call max_conflicts exhaustion).
        self.budget_exhausted = False

    def __repr__(self):
        return (
            "SweepStats(nodes=%d, structural=%d, sat_merges=%d, const=%d, "
            "sat_calls=%d [sat=%d unsat=%d unknown=%d], refinements=%d)"
            % (
                self.nodes_processed,
                self.structural_merges,
                self.sat_merges,
                self.const_merges,
                self.sat_calls,
                self.sat_calls_sat,
                self.sat_calls_unsat,
                self.sat_calls_unknown,
                self.refinements,
            )
        )


class SweepEngine:
    """SAT sweeping over one AIG (normally a miter), with proof logging.

    Args:
        aig: the AIG to sweep. Every node receives a CNF variable; the
            whole Tseitin encoding is loaded into one incremental solver.
        options: a :class:`SweepOptions` (defaults used when None).
        recorder: optional :class:`~repro.instrument.recorder.Recorder`
            receiving sweep phase timings (``sweep/sim``,
            ``sweep/strash``, ``sweep/sat``), candidate-outcome counters
            and (when tracing) per-candidate events.
        budget: optional :class:`~repro.instrument.budget.Budget`.
            Candidate SAT calls consult it; once exhausted, remaining
            candidates are *skipped* (never mis-merged) so the sweep
            terminates quickly with whatever was proved so far.
    """

    def __init__(self, aig, options=None, recorder=None, budget=None):
        self.aig = aig
        self.options = options or SweepOptions()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.budget = budget
        self.stats = SweepStats()
        with self.recorder.phase("sweep/encode"):
            self.enc = tseitin_encode(aig)
        self.proof = (
            ProofStore(
                validate=self.options.validate_proof,
                recorder=recorder,
            )
            if self.options.proof
            else None
        )
        self.solver = Solver(proof=self.proof, recorder=recorder)
        with self.recorder.phase("sweep/load"):
            for clause in self.enc.cnf.clauses:
                if not self.solver.add_clause(clause):
                    raise RuntimeError(
                        "miter CNF is inconsistent; encoder bug"
                    )
        with self.recorder.phase("sweep/sim"):
            self.sim = Simulator(
                aig,
                num_words=(
                    self.options.sim_words
                    if self.options.use_simulation
                    else 1
                ),
                seed=self.options.seed,
            )
        # Union-find (single level): AIG var -> representative AIG literal.
        self._parent = [2 * var for var in range(aig.num_vars)]
        # AIG var -> EquivLemma (None while the var is its own root).
        self._lemmas = [None] * aig.num_vars
        self._stitcher = None
        if self.proof is not None:
            self._stitcher = StructuralStitcher(
                self.proof, self.enc.defining_clauses, self._lemma_of
            )
        # Candidate classes: normalized signature -> root AIG var.
        self._class_table = {}
        # Normalized signature -> all processed roots sharing it (in
        # processed order; the class root is the first entry). Kept in
        # lockstep with _class_table so refinement can split existing
        # classes instead of re-scanning every processed node.
        self._class_members = {}
        # Refinement patterns awaiting one shared resimulation flush.
        self._pending_patterns = []
        self._pending_rounds = 0
        self._refine_batch_seconds = 0.0
        self._processed = []
        # Reduced structural hashing: (root_lit0, root_lit1) -> AIG var.
        self._reduced_strash = {}
        self._swept = False

    # ------------------------------------------------------------------
    # Representatives and lemmas
    # ------------------------------------------------------------------

    def rep_lit(self, aig_lit):
        """Class-representative literal of *aig_lit* (identity when root)."""
        parent = self._parent[aig_lit >> 1]
        return parent ^ (aig_lit & 1)

    def is_root(self, var):
        """True when *var* is its own class representative."""
        return self._parent[var] == 2 * var

    def _lemma_of(self, var):
        return self._lemmas[var]

    def _merge(self, var, root_lit, lemma):
        self._parent[var] = root_lit
        self._lemmas[var] = lemma

    def proven_equiv(self, lit_a, lit_b):
        """True when the two literals were merged into one class."""
        return self.rep_lit(lit_a) == self.rep_lit(lit_b)

    def equivalence_classes(self):
        """The proved classes as a dict root literal -> member literals.

        Every member literal equals its root literal on all inputs (as
        certified by the recorded lemmas). Singleton classes are omitted;
        members are in increasing variable order and include the root.
        """
        classes = {}
        for var in range(self.aig.num_vars):
            root = self.rep_lit(2 * var)
            if root != 2 * var:
                classes.setdefault(root, [root]).append(2 * var)
        return classes

    # ------------------------------------------------------------------
    # Simulation classes
    # ------------------------------------------------------------------

    def _norm_signature(self, var):
        sig = self.sim.signatures[var]
        mask = self.sim.mask
        if sig & 1:
            return sig ^ mask, 1
        return sig, 0

    def _register_root(self, var):
        self._processed.append(var)
        if self.options.use_simulation:
            norm, _ = self._norm_signature(var)
            self._class_table.setdefault(norm, var)
            members = self._class_members.get(norm)
            if members is None:
                self._class_members[norm] = [var]
            else:
                members.append(var)

    def _candidate_for(self, var):
        """Simulation candidate root for *var*, or None.

        Returns ``(root_var, phase)`` where ``var ≡ root_var ^ phase`` is
        conjectured.
        """
        if not self.options.use_simulation:
            return None
        norm, phase = self._norm_signature(var)
        root = self._class_table.get(norm)
        if root is None or root == var:
            return None
        if not self.is_root(root):
            return None
        _, root_phase = self._norm_signature(root)
        return root, phase ^ root_phase

    def _refine(self, model_result):
        """Queue a counterexample pattern (plus distance-1 neighbours when
        configured) and flush it according to ``options.refine_batch``.

        Returns True when the simulator/class table were refreshed, False
        when the patterns were deferred to a later shared flush (the
        caller must then stop retrying the disproved candidate).
        """
        bits = [
            model_result.model_value(self.enc.var_of[var])
            for var in self.aig.inputs
        ]
        batch = [bits]
        neighbors = min(self.options.cex_neighbors, len(bits))
        for offset in range(neighbors):
            position = (self.stats.refinements + offset) % len(bits)
            flipped = list(bits)
            flipped[position] ^= 1
            batch.append(flipped)
        self.stats.refinements += 1
        self.stats.refine_patterns += len(batch)
        if self.options.refine_batch == 0:
            # Legacy path: one full resimulation per pattern, then a
            # table rebuild over every processed node.
            for pattern in batch:
                self.sim.add_pattern(pattern)
            self.stats.refine_flushes += 1
            self._rebuild_class_table()
            return True
        self._pending_patterns.extend(batch)
        self._pending_rounds += 1
        if self._pending_rounds < self.options.refine_batch:
            return False
        self._flush_refinements()
        return True

    def _flush_refinements(self):
        """Absorb all queued patterns with one resimulation pass."""
        if not self._pending_patterns:
            return
        timing = self.recorder.enabled
        start = time.perf_counter() if timing else 0.0
        self.sim.add_patterns(self._pending_patterns)
        self._pending_patterns = []
        self._pending_rounds = 0
        self.stats.refine_flushes += 1
        self._update_class_table()
        if timing:
            self._refine_batch_seconds += time.perf_counter() - start

    def _rebuild_class_table(self):
        """Recompute candidate classes from scratch (legacy refinement)."""
        if not self.options.use_simulation:
            return
        self._class_table = {}
        self._class_members = {}
        for var in self._processed:
            if self.is_root(var):
                norm, _ = self._norm_signature(var)
                self._class_table.setdefault(norm, var)
                members = self._class_members.get(norm)
                if members is None:
                    self._class_members[norm] = [var]
                else:
                    members.append(var)

    def _update_class_table(self):
        """Split the existing candidate classes under the new patterns.

        Appending patterns only ever *refines* the partition (old
        signatures are preserved as low bits, so distinct classes stay
        distinct), which lets the table be re-derived class by class:
        singleton classes are re-keyed wholesale and only multi-member
        classes are regrouped. The result is bit-identical to the legacy
        full rebuild — within one old class the first processed root of
        each new signature wins, and new keys originating from different
        old classes can never collide.
        """
        if not self.options.use_simulation:
            return
        table = {}
        members_map = {}
        norm_signature = self._norm_signature
        is_root = self.is_root
        for old_members in self._class_members.values():
            if len(old_members) == 1:
                var = old_members[0]
                if not is_root(var):
                    continue
                norm, _ = norm_signature(var)
                table[norm] = var
                members_map[norm] = old_members
                continue
            for var in old_members:
                if not is_root(var):
                    continue
                norm, _ = norm_signature(var)
                group = members_map.get(norm)
                if group is None:
                    members_map[norm] = [var]
                    table[norm] = var
                else:
                    group.append(var)
        self._class_table = table
        self._class_members = members_map

    # ------------------------------------------------------------------
    # SAT-based equivalence proof
    # ------------------------------------------------------------------

    def _cnf_lit(self, aig_lit):
        return self.enc.lit_to_cnf(aig_lit)

    def _solve(self, assumptions, budgeted=True):
        """One assumption SAT call, optionally charged to the budget.

        Structural-merge fallback calls pass ``budgeted=False``: those
        queries are propositionally forced by already-installed lemma
        clauses, so they complete by propagation and must not be turned
        into spurious UNKNOWNs by an exhausted budget.
        """
        self.stats.sat_calls += 1
        limit = self.options.max_conflicts
        budget = self.budget if budgeted else None
        if budget is not None:
            remaining = budget.remaining_conflicts()
            if remaining is not None:
                limit = remaining if limit is None else min(limit, remaining)
        result = self.solver.solve(
            assumptions=assumptions, max_conflicts=limit, budget=budget
        )
        if result.status is SAT:
            self.stats.sat_calls_sat += 1
        elif result.status is UNSAT:
            self.stats.sat_calls_unsat += 1
        else:
            self.stats.sat_calls_unknown += 1
        return result

    def _budget_spent(self):
        return self.budget is not None and self.budget.exhausted

    def _prove_equiv_sat(self, var, root_lit, budgeted=True):
        """Prove ``var ≡ root_lit`` with two assumption SAT calls.

        Returns an :class:`EquivLemma` on success, the SAT
        :class:`~repro.sat.solver.SolveResult` on refutation-by-model,
        or None on conflict-budget exhaustion.
        """
        x = self.enc.var_of[var]
        y = self._cnf_lit(root_lit)
        fwd = self._solve([x, -y], budgeted)
        if fwd.status is SAT:
            return fwd
        if fwd.status is UNKNOWN:
            return None
        fwd_ok = self._install_lemma_clause(fwd)
        bwd = self._solve([-x, y], budgeted)
        if bwd.status is SAT:
            return bwd
        if bwd.status is UNKNOWN:
            return None
        bwd_ok = self._install_lemma_clause(bwd)
        return EquivLemma(fwd_id=fwd_ok, bwd_id=bwd_ok)

    def _install_lemma_clause(self, result):
        """Install an UNSAT final clause into the solver as a premise."""
        clause = result.final_clause
        if self.proof is not None:
            self.solver.add_clause(
                clause, axiom=False, proof_id=result.proof_id
            )
            return result.proof_id
        self.solver.add_clause(clause, axiom=True)
        return None

    def _install_derived(self, proof_id):
        """Install a stitched equivalence clause into the solver."""
        if proof_id is None:
            return None
        self.solver.add_clause(
            list(self.proof.clause(proof_id)), axiom=False, proof_id=proof_id
        )
        return proof_id

    # ------------------------------------------------------------------
    # Structural merging
    # ------------------------------------------------------------------

    @staticmethod
    def _reduced_key(p0, p1):
        """Order-normalized reduced-fanin pair (hash key)."""
        return (p0, p1) if p0 >= p1 else (p1, p0)

    def _try_structural(self, var):
        """Attempt a structural merge of AND node *var*.

        The node's fanins are rewritten to their class representatives;
        when the reduced pair is constant, equal, complementary, or equal
        to the reduced pair of an earlier root node, the merge is forced
        and its equivalence clauses are derived. Returns True when merged.
        """
        if self.options.structural_mode == "off":
            return False
        f0, f1 = self.aig.fanins(var)
        p0 = self.rep_lit(f0)
        p1 = self.rep_lit(f1)
        if p0 == FALSE:
            kind, target = "const0_fanin0", FALSE
        elif p1 == FALSE:
            kind, target = "const0_fanin1", FALSE
        elif p0 == lit_not_cond(p1, True):
            kind, target = "const0_complement", FALSE
        elif p0 == TRUE:
            kind, target = "copy_fanin1", p1
        elif p1 == TRUE:
            kind, target = "copy_fanin0", p0
        elif p0 == p1:
            kind, target = "copy_fanin0", p0
        else:
            other = self._reduced_strash.get(self._reduced_key(p0, p1))
            if other is None or other == var or not self.is_root(other):
                return False
            kind, target = "hash", 2 * other
        if self.options.structural_mode == "sat" or self.proof is None:
            return self._structural_via_sat(var, kind, target)
        try:
            return self._structural_via_resolution(
                var, kind, target, f0, f1, p0, p1
            )
        except StitchError:
            self.stats.structural_fallbacks += 1
            return self._structural_via_sat(var, kind, target)

    def _structural_via_sat(self, var, kind, target):
        outcome = self._prove_equiv_const_aware(var, target, budgeted=False)
        if isinstance(outcome, EquivLemma):
            self._merge(var, target, outcome)
            self.stats.structural_merges += 1
            if target <= TRUE:
                self.stats.const_merges += 1
            return True
        # A structural merge is propositionally forced by the installed
        # lemma clauses; a SAT/unknown answer here is an engine bug.
        raise RuntimeError(
            "structural %s merge of node %d failed in SAT fallback"
            % (kind, var)
        )

    def _structural_via_resolution(self, var, kind, target, f0, f1, p0, p1):
        stitcher = self._stitcher
        x = self.enc.var_of[var]
        l1 = self._cnf_lit(f0)
        l2 = self._cnf_lit(f1)
        v1 = lit_var(f0)
        v2 = lit_var(f1)
        if kind.startswith("const0"):
            which = kind[len("const0_"):]
            proof_id = stitcher.derive_const0(var, x, l1, l2, v1, v2, which)
            self._install_derived(proof_id)
            self._merge(var, FALSE, EquivLemma(fwd_id=proof_id, bwd_id=None))
            self.stats.const_merges += 1
        elif kind.startswith("copy"):
            through = kind[len("copy_"):]
            root_cnf = self._cnf_lit(target)
            fwd, bwd = stitcher.derive_copy(
                var, x, l1, l2, v1, v2, root_cnf, through
            )
            self._install_derived(fwd)
            self._install_derived(bwd)
            self._merge(var, target, EquivLemma(fwd, bwd))
        elif kind == "hash":
            other = target >> 1
            y = self.enc.var_of[other]
            g0, g1 = self.aig.fanins(other)
            # Align the other node's fanins with this node's reduced pair.
            if self.rep_lit(g0) == p0 and self.rep_lit(g1) == p1:
                pass
            elif self.rep_lit(g1) == p0 and self.rep_lit(g0) == p1:
                g0, g1 = g1, g0
            else:
                raise StitchError("reduced-strash table entry went stale")
            fwd, bwd = stitcher.derive_hash_merge(
                var,
                other,
                x,
                y,
                ((l1, v1), (l2, v2)),
                (
                    (self._cnf_lit(g0), lit_var(g0)),
                    (self._cnf_lit(g1), lit_var(g1)),
                ),
            )
            self._install_derived(fwd)
            self._install_derived(bwd)
            self._merge(var, target, EquivLemma(fwd, bwd))
        else:
            raise AssertionError(kind)
        self.stats.structural_merges += 1
        return True

    def _prove_equiv_const_aware(self, var, target_lit, budgeted=True):
        """Prove ``var ≡ target_lit`` by SAT, specializing constants.

        For constant targets a single call suffices and the lemma is a
        unit clause.
        """
        x = self.enc.var_of[var]
        if target_lit == FALSE:
            result = self._solve([x], budgeted)
            if result.status is not UNSAT:
                return result if result.status is SAT else None
            proof_id = self._install_lemma_clause(result)
            return EquivLemma(fwd_id=proof_id, bwd_id=None)
        if target_lit == TRUE:
            result = self._solve([-x], budgeted)
            if result.status is not UNSAT:
                return result if result.status is SAT else None
            proof_id = self._install_lemma_clause(result)
            return EquivLemma(fwd_id=None, bwd_id=proof_id)
        return self._prove_equiv_sat(var, target_lit, budgeted)

    # ------------------------------------------------------------------
    # Main sweep
    # ------------------------------------------------------------------

    def sweep(self):
        """Run the sweep over all AND nodes (idempotent)."""
        if self._swept:
            return self.stats
        stats = self.stats
        rec = self.recorder
        timing = rec.enabled
        # Live progress: observe-only updates at the top of each node's
        # turn (attribute writes plus a countdown tick); disabled runs
        # skip everything behind the one `progress is not None` check.
        progress = rec.progress if timing else None
        nodes_total = 0
        if progress is not None:
            progress.phase = "sweep"
            nodes_total = len(self.aig.and_vars())
        clock = time.perf_counter
        start = clock()
        strash_s = sat_s = sim_s = 0.0
        self._register_root(0)  # the constant
        for var in self.aig.inputs:
            self._register_root(var)
        for var in self.aig.and_vars():
            stats.nodes_processed += 1
            if progress is not None:
                progress.update_sweep(
                    wave=stats.refine_flushes,
                    nodes_processed=stats.nodes_processed,
                    nodes_total=nodes_total,
                    classes=len(self._class_table),
                    class_members=len(self._class_members),
                )
                progress.tick(self.solver.stats)
            t0 = clock() if timing else 0.0
            structural = self._try_structural(var)
            if timing:
                strash_s += clock() - t0
            if structural:
                rec.event("merge", var=var, how="structural")
                continue
            merged = False
            while True:
                if self._budget_spent():
                    # Degrade gracefully: skip the candidate rather than
                    # run SAT past the budget (never mis-merge).
                    if self._candidate_for(var) is not None:
                        stats.skipped_candidates += 1
                        stats.budget_exhausted = True
                        rec.event("candidate_skipped", var=var,
                                  reason=self.budget.exhausted_reason())
                    break
                candidate = self._candidate_for(var)
                if candidate is None:
                    break
                root, phase = candidate
                target = 2 * root ^ phase
                t0 = clock() if timing else 0.0
                if root == 0:
                    outcome = self._prove_equiv_const_aware(
                        var, FALSE if phase == 0 else TRUE
                    )
                else:
                    outcome = self._prove_equiv_const_aware(var, target)
                if timing:
                    sat_s += clock() - t0
                if isinstance(outcome, EquivLemma):
                    self._merge(var, target, outcome)
                    if root == 0:
                        stats.const_merges += 1
                    stats.sat_merges += 1
                    rec.event("merge", var=var, how="sat", target=target)
                    merged = True
                    break
                if outcome is None:
                    stats.skipped_candidates += 1
                    rec.event("candidate_skipped", var=var,
                              reason="max_conflicts")
                    break
                # SAT model: refine classes and retry with the new table.
                t0 = clock() if timing else 0.0
                flushed = self._refine(outcome)
                if timing:
                    sim_s += clock() - t0
                rec.event("refine", var=var, flushed=flushed,
                          patterns=self.sim.num_patterns)
                if not flushed:
                    # Deferred flush: the stale table would re-propose
                    # the disproved candidate, so register the node as a
                    # provisional root and move on.
                    break
            if not merged:
                self._register_root(var)
                f0, f1 = self.aig.fanins(var)
                p, q = self.rep_lit(f0), self.rep_lit(f1)
                if p < q:
                    p, q = q, p
                self._reduced_strash.setdefault((p, q), var)
        # Absorb any still-deferred counterexamples so downstream
        # consumers (cec's counterexample extraction, class queries) see
        # every pattern the SAT calls produced.
        t0 = clock() if timing else 0.0
        self._flush_refinements()
        if timing:
            sim_s += clock() - t0
        self._swept = True
        stats.sim_passes = self.sim.num_resimulations
        stats.sweep_seconds = clock() - start
        stats.sim_seconds += sim_s
        stats.strash_seconds += strash_s
        stats.sat_seconds += sat_s
        if timing:
            # Flush the per-activity accumulators; the keys are always
            # present (possibly at 0.0) so downstream schema consumers
            # can rely on them.
            rec.add_time("sweep/sim", sim_s)
            rec.add_time("sweep/strash", strash_s)
            rec.add_time("sweep/sat", sat_s)
            rec.add_time("sweep/total", stats.sweep_seconds)
            rec.add_time("sweep/refine-batch", self._refine_batch_seconds,
                         count=max(stats.refine_flushes, 1))
            rec.count("sweep/nodes", stats.nodes_processed)
            rec.count("sweep/structural_merges", stats.structural_merges)
            rec.count("sweep/sat_merges", stats.sat_merges)
            rec.count("sweep/const_merges", stats.const_merges)
            rec.count("sweep/sat_calls", stats.sat_calls)
            rec.count("sweep/sat_calls_sat", stats.sat_calls_sat)
            rec.count("sweep/sat_calls_unsat", stats.sat_calls_unsat)
            rec.count("sweep/sat_calls_unknown", stats.sat_calls_unknown)
            rec.count("sweep/refinements", stats.refinements)
            rec.count("sweep/refine_flushes", stats.refine_flushes)
            rec.count("sweep/refine_patterns", stats.refine_patterns)
            rec.count("sweep/sim_passes", stats.sim_passes)
            rec.count("sweep/skipped_candidates", stats.skipped_candidates)
            rec.gauge("sweep/patterns", self.sim.num_patterns)
            if self.proof is not None:
                rec.gauge("proof/clauses", len(self.proof))
                rec.gauge("proof/axioms", self.proof.num_axioms)
                rec.gauge("proof/derived", self.proof.num_derived)
                rec.gauge("proof/resolutions", self.proof.num_resolutions)
        return self.stats
