"""Canonical structural hashing of AIGs.

:func:`structural_hash` digests an AIG's *structure* — the DAG of AND
nodes over positionally numbered inputs, with complement edges, plus
the ordered output list — into a fixed-size hex string. The digest is
canonical in the sense that it is invariant under everything that does
not change the circuit function as this package compares circuits:

* **node creation order** — each node's digest is computed bottom-up
  from its fanins' digests, never from variable indices;
* **operand order** — the two (digest, complement) fanin pairs are
  sorted before hashing, so ``a & b`` and ``b & a`` collide by design;
* **names** — input/output/design names are ignored (the equivalence
  checker matches interfaces positionally; callers that match by name
  should permute first, exactly as :func:`repro.aig.miter.build_miter`
  does).

It deliberately *is* sensitive to input order, output order, and output
complementation, because those change which function the k-th output
computes over the k-th inputs — the identity the CEC service's result
cache must key on.

:func:`pair_key` extends the node digest to an (AIG, AIG) query key
that is symmetric in the two circuits: equivalence is a symmetric
relation and the service stores a self-contained certificate (miter
CNF + proof), so a cached answer for ``(A, B)`` is equally valid for
``(B, A)``.
"""

import hashlib

from .literal import lit_sign, lit_var

#: Per-node digest width in bytes. 16 bytes (128 bits) keeps the hash
#: table compact while making accidental collisions over the life of a
#: cache directory vanishingly unlikely.
_DIGEST_SIZE = 16

_INPUT_TAG = b"i"
_AND_TAG = b"a"
_CONST_TAG = b"0"


def _blake(*parts):
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    for part in parts:
        h.update(part)
    return h.digest()


def node_digests(aig):
    """Per-variable canonical digests, indexed by variable.

    The constant and each input get position-based leaf digests; every
    AND node hashes its fanins' ``(digest, complement)`` pairs in sorted
    order. Shared sub-structure therefore always produces identical
    digests regardless of how or when the nodes were created.
    """
    digests = [b""] * aig.num_vars
    digests[0] = _blake(_CONST_TAG)
    for position, var in enumerate(aig.inputs):
        digests[var] = _blake(_INPUT_TAG, position.to_bytes(4, "big"))
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        pair0 = digests[lit_var(f0)] + (b"~" if lit_sign(f0) else b".")
        pair1 = digests[lit_var(f1)] + (b"~" if lit_sign(f1) else b".")
        if pair1 < pair0:
            pair0, pair1 = pair1, pair0
        digests[var] = _blake(_AND_TAG, pair0, pair1)
    return digests


def structural_hash(aig):
    """Canonical hex digest of *aig*'s structure (names ignored).

    Two AIGs receive the same hash exactly when they have the same
    number of inputs and, output for output, structurally identical
    (modulo operand order and node numbering) fanin cones with the same
    output complementations.
    """
    digests = node_digests(aig)
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE * 2)
    h.update(b"aig-struct/1")
    h.update(aig.num_inputs.to_bytes(4, "big"))
    for lit in aig.outputs:
        h.update(digests[lit_var(lit)])
        h.update(b"~" if lit_sign(lit) else b".")
    return h.hexdigest()


def pair_key(aig_a, aig_b, salt=""):
    """Symmetric content key for an equivalence query over two AIGs.

    The two structural hashes are sorted before combining, so
    ``pair_key(a, b) == pair_key(b, a)``; *salt* folds in any extra
    context that changes the answer's artifact (e.g. a canonical
    encoding of the engine options).
    """
    ha = structural_hash(aig_a)
    hb = structural_hash(aig_b)
    if hb < ha:
        ha, hb = hb, ha
    h = hashlib.blake2b(digest_size=_DIGEST_SIZE * 2)
    h.update(b"cec-pair/1")
    h.update(ha.encode("ascii"))
    h.update(hb.encode("ascii"))
    h.update(salt.encode("utf-8"))
    return h.hexdigest()
