"""Ablation A — value of structural merging.

Runs the engine in its three structural modes on every suite pair:

* ``resolution`` — merges discharged by stitched derivations (the paper),
* ``sat``        — same merges proved by assumption SAT calls,
* ``off``        — no structural merging; every merge needs SAT.

The shape: disabling structural merging multiplies SAT calls; proving the
forced merges by SAT instead of stitching costs extra calls but no extra
conflicts (they close by propagation).
"""

import pytest

from repro.circuits import SUITE
from repro.core.cec import check_equivalence
from repro.core.fraig import SweepOptions

from conftest import report_table

_ROWS = {}


@pytest.mark.parametrize("pair", SUITE, ids=lambda p: p.name)
def test_structural_modes(benchmark, pair):
    def run_all():
        results = {}
        for mode in ("resolution", "sat", "off"):
            aig_a, aig_b = pair.build()
            results[mode] = check_equivalence(
                aig_a, aig_b, SweepOptions(structural_mode=mode)
            )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for mode, result in results.items():
        assert result.equivalent is True, (pair.name, mode)
    row = [pair.name]
    for mode in ("resolution", "sat", "off"):
        stats = results[mode].engine.stats
        row.extend([
            "%.3f" % results[mode].elapsed_seconds,
            stats.sat_calls,
        ])
    _ROWS[pair.name] = row
    report_table(
        "Ablation A: structural merging (resolution / sat / off)",
        ["pair", "res t(s)", "res calls", "sat t(s)", "sat calls",
         "off t(s)", "off calls"],
        [_ROWS[name] for name in sorted(_ROWS)],
        notes=["'off' forces every merge through candidate SAT proving"],
    )
