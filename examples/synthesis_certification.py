#!/usr/bin/env python
"""Certifying a synthesis step.

The motivating workflow of the paper: a logic-synthesis transformation
rewrites a design, and instead of trusting the tool, the equivalence of
the result against the original is certified by an independently
checkable resolution proof.

This example plays both roles: it "synthesizes" a comparator with the
package's own restructuring and balancing transforms, checks equivalence,
writes the trimmed proof in DRUP format next to the AIGER files, and
re-verifies everything from disk.

Run:
    python examples/synthesis_certification.py [output_dir]
"""

import os
import sys
import tempfile

from repro import certify, check_equivalence
from repro.aig import read_auto, write_aag
from repro.circuits import comparator
from repro.proof.drup import write_drup
from repro.proof.stats import proof_stats
from repro.proof.trim import trim
from repro.transforms import balance, restructure


def main(output_dir=None):
    output_dir = output_dir or tempfile.mkdtemp(prefix="repro-cert-")

    # 1. The "golden" design and its synthesized implementation.
    golden = comparator(12)
    synthesized = balance(
        restructure(golden, seed=42, intensity=0.4, redundancy=0.1)
    )
    print("golden:      %s" % golden)
    print("synthesized: %s (depth %d -> %d)" % (
        synthesized, golden.depth(), synthesized.depth()))

    # 2. Persist both as AIGER; the verification below runs from disk, as
    #    a third party would.
    golden_path = os.path.join(output_dir, "golden.aag")
    synth_path = os.path.join(output_dir, "synthesized.aag")
    write_aag(golden, golden_path)
    write_aag(synthesized, synth_path)

    # 3. Check equivalence and obtain the proof.
    result = check_equivalence(read_auto(golden_path), read_auto(synth_path))
    if not result.equivalent:
        raise SystemExit(
            "synthesis bug! counterexample: %r" % result.counterexample
        )
    full = proof_stats(result.proof)
    trimmed, _ = trim(result.proof)
    small = proof_stats(trimmed)
    print(
        "proof: %d resolutions, trimmed to %d (%.0f%%)"
        % (
            full.num_resolutions,
            small.num_resolutions,
            100.0 * small.num_resolutions / full.num_resolutions,
        )
    )

    # 4. Emit the certificate and re-check end to end.
    proof_path = os.path.join(output_dir, "equivalence.drup")
    write_drup(trimmed, proof_path)
    certify(result, rup=True)
    print("certificate written to %s and replayed successfully" % proof_path)
    print("artifacts in %s" % output_dir)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
