"""Fixed-bucket histograms and a mergeable metrics registry.

The :class:`Recorder` answers "how long did phase X take *this run*";
the :class:`MetricsRegistry` answers the distributional questions a
long-lived service gets asked — p50/p99 job latency, queue-wait spread,
how heavy the solver workload per job is. Histograms use **fixed
buckets** (Prometheus-style cumulative-on-export counters) so that:

* observation is O(log buckets) with no per-sample storage — safe for a
  server that lives for weeks;
* two histograms with the same bucket bounds **merge by addition**,
  which is how per-worker-process observations fold into the server's
  registry (:meth:`MetricsRegistry.merge_report`);
* quantiles are estimated the same way ``histogram_quantile`` does it:
  linear interpolation inside the bucket holding the target rank.

Everything serializes to the ``repro-metrics/1`` schema::

    {
      "schema": "repro-metrics/1",
      "histograms": {
        "service/job-seconds": {
          "unit": "seconds",
          "buckets": [0.001, 0.005, ...],      # finite upper bounds
          "counts":  [0, 3, ...],              # len(buckets)+1, +Inf last
          "count": 17, "sum": 4.21,
          "p50": 0.11, "p90": 0.52, "p99": 1.8
        }
      }
    }

:func:`to_prometheus_text` renders a metrics document (plus, optionally,
the counters and numeric gauges of a ``repro-stats/1`` report) in the
Prometheus text exposition format served by ``repro-serve``'s
``/metrics`` endpoint and ``metrics`` protocol verb.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..analyze.schemas import METRICS_SCHEMA as METRICS_SCHEMA  # registry

#: Default bounds for latency-shaped observations (seconds).
TIME_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: Default bounds for count-shaped observations (conflicts, clauses).
COUNT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
    2500.0, 5000.0, 10000.0, 25000.0, 50000.0, 100000.0, 250000.0,
    500000.0, 1000000.0,
)

#: Quantiles published in reports.
REPORT_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50), ("p90", 0.90), ("p99", 0.99),
)


class Histogram:
    """One fixed-bucket histogram (not thread-safe on its own; the
    registry serializes access).

    Args:
        name: metric name (``/``-separated like phase names).
        buckets: strictly increasing finite upper bounds; an implicit
            ``+Inf`` bucket is always appended.
        unit: unit suffix for Prometheus rendering (``"seconds"``,
            ``"clauses"``, ...).
    """

    __slots__ = ("name", "unit", "buckets", "counts", "count", "sum")

    def __init__(
        self, name: str, buckets: Sequence[float], unit: str = "",
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram %r needs at least one bucket" % name)
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError(
                "histogram %r bounds must be strictly increasing" % name
            )
        self.name = name
        self.unit = unit
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.buckets, float(value))] += 1
        self.count += 1
        self.sum += float(value)

    def merge(self, other: "Histogram") -> None:
        """Fold *other*'s observations into this histogram.

        Raises:
            ValueError: when the bucket bounds differ — silently
                re-bucketing would fabricate data.
        """
        if other.buckets != self.buckets:
            raise ValueError(
                "cannot merge histogram %r: bucket bounds differ"
                % self.name
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.count += other.count
        self.sum += other.sum

    def quantile(self, q: float) -> float:
        """Estimated value at quantile *q* (0..1).

        Linear interpolation within the bucket containing the target
        rank, Prometheus ``histogram_quantile`` style; observations in
        the ``+Inf`` bucket answer the largest finite bound. Returns
        0.0 for an empty histogram.
        """
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                if index >= len(self.buckets):
                    return self.buckets[-1]
                lower = self.buckets[index - 1] if index else 0.0
                upper = self.buckets[index]
                within = (rank - (cumulative - bucket_count)) / bucket_count
                return lower + (upper - lower) * min(max(within, 0.0), 1.0)
        return self.buckets[-1]

    def as_dict(self) -> Dict[str, Any]:
        """The histogram's block in a ``repro-metrics/1`` document."""
        block: Dict[str, Any] = {
            "unit": self.unit,
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
        }
        for label, q in REPORT_QUANTILES:
            block[label] = self.quantile(q)
        return block


class MetricsRegistry:
    """Thread-safe, mergeable collection of named histograms.

    A process observes into its own registry; registries from other
    processes arrive as ``repro-metrics/1`` documents and fold in via
    :meth:`merge_report` — this is how ``repro-serve`` aggregates its
    worker pool into one exposition.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._histograms: Dict[str, Histogram] = {}

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        unit: str = "",
    ) -> Histogram:
        """Get or create the histogram *name*.

        The first caller fixes the bounds (default
        :data:`TIME_BUCKETS`); later callers get the existing
        instrument regardless of arguments.
        """
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = Histogram(
                    name, buckets if buckets is not None else TIME_BUCKETS,
                    unit=unit,
                )
                self._histograms[name] = hist
            return hist

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Sequence[float]] = None,
        unit: str = "",
    ) -> None:
        """Record one observation into histogram *name* (auto-created)."""
        hist = self.histogram(name, buckets=buckets, unit=unit)
        with self._lock:
            hist.observe(value)

    def report(self) -> Dict[str, Any]:
        """Serialize to a ``repro-metrics/1`` document."""
        with self._lock:
            return {
                "schema": METRICS_SCHEMA,
                "histograms": {
                    name: hist.as_dict()
                    for name, hist in sorted(self._histograms.items())
                },
            }

    def merge_report(self, document: Any) -> None:
        """Fold a ``repro-metrics/1`` document into this registry.

        Unknown histograms are adopted with the document's bounds;
        known ones must have matching bounds (``ValueError`` otherwise,
        see :meth:`Histogram.merge`).
        """
        validate_metrics_report(document)
        for name, block in document["histograms"].items():
            incoming = Histogram(
                name, block["buckets"], unit=str(block.get("unit", "")),
            )
            incoming.counts = [int(c) for c in block["counts"]]
            incoming.count = int(block["count"])
            incoming.sum = float(block["sum"])
            with self._lock:
                existing = self._histograms.get(name)
                if existing is None:
                    self._histograms[name] = incoming
                else:
                    existing.merge(incoming)

    def quantile_gauges(self) -> Dict[str, float]:
        """``{"<name>/p50": value, ...}`` for every histogram.

        The server copies these into its ``repro-stats/1`` gauges so
        the plain ``stats`` report carries the latency percentiles.
        """
        gauges: Dict[str, float] = {}
        with self._lock:
            for name, hist in self._histograms.items():
                if not hist.count:
                    continue
                for label, q in REPORT_QUANTILES:
                    gauges["%s/%s" % (name, label)] = hist.quantile(q)
        return gauges


def validate_metrics_report(document: Any) -> Dict[str, Any]:
    """Check *document* against the ``repro-metrics/1`` schema.

    Raises ``ValueError`` with the first problem found; returns the
    document unchanged when valid.
    """
    if not isinstance(document, dict):
        raise ValueError("metrics document must be a dict")
    if document.get("schema") != METRICS_SCHEMA:
        raise ValueError("bad schema tag %r" % (document.get("schema"),))
    histograms = document.get("histograms")
    if not isinstance(histograms, dict):
        raise ValueError("histograms must be a dict")
    for name, block in histograms.items():
        if not isinstance(block, dict):
            raise ValueError("histogram %r must be a dict" % name)
        for key in ("buckets", "counts", "count", "sum"):
            if key not in block:
                raise ValueError("histogram %r missing key %r" % (name, key))
        buckets = block["buckets"]
        counts = block["counts"]
        if not isinstance(buckets, list) or not buckets:
            raise ValueError("histogram %r has no buckets" % name)
        if any(b >= c for b, c in zip(buckets, buckets[1:])):
            raise ValueError(
                "histogram %r bounds must be strictly increasing" % name
            )
        if not isinstance(counts, list) or len(counts) != len(buckets) + 1:
            raise ValueError(
                "histogram %r needs len(buckets)+1 counts" % name
            )
        if any((not isinstance(c, int)) or c < 0 for c in counts):
            raise ValueError(
                "histogram %r counts must be non-negative ints" % name
            )
        if block["count"] != sum(counts):
            raise ValueError(
                "histogram %r count %r != sum of bucket counts %d"
                % (name, block["count"], sum(counts))
            )
    return document


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------


def prometheus_name(name: str, suffix: str = "") -> str:
    """A ``repro-stats``/``repro-metrics`` name as a Prometheus metric.

    ``service/job-seconds`` becomes ``repro_service_job_seconds``;
    *suffix* (``"total"``, ``"bucket"``...) is appended with ``_``.
    """
    base = "repro_" + "".join(
        ch if ch.isalnum() else "_" for ch in name
    ).strip("_")
    while "__" in base:
        base = base.replace("__", "_")
    return base + ("_" + suffix if suffix else "")


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return "%d" % int(value)
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    """Prometheus label-value escaping (backslash, quote, newline)."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def to_prometheus_text(
    metrics_document: Dict[str, Any],
    stats_report: Optional[Dict[str, Any]] = None,
    build_info: Optional[Dict[str, str]] = None,
) -> str:
    """Render metrics (plus optional stats counters/gauges) for scraping.

    Histograms become standard Prometheus histograms with cumulative
    ``_bucket{le="..."}`` series, ``_sum`` and ``_count``. When a
    ``repro-stats/1`` *stats_report* is given, its counters are
    rendered as ``..._total`` counters and its numeric gauges as
    gauges (non-numeric gauges such as verdict strings are skipped —
    Prometheus samples are numbers). A *build_info* mapping becomes
    the conventional constant-1 ``repro_build_info`` gauge whose
    labels carry the version/component strings.
    """
    validate_metrics_report(metrics_document)
    lines: List[str] = []
    if build_info:
        labels = ",".join(
            '%s="%s"' % (key, _escape_label_value(str(value)))
            for key, value in sorted(build_info.items())
        )
        lines.append(
            "# HELP repro_build_info Build and version information."
        )
        lines.append("# TYPE repro_build_info gauge")
        lines.append("repro_build_info{%s} 1" % labels)
    for name, block in sorted(metrics_document["histograms"].items()):
        metric = prometheus_name(name)
        lines.append("# HELP %s repro histogram %s" % (metric, name))
        lines.append("# TYPE %s histogram" % metric)
        cumulative = 0
        for bound, count in zip(block["buckets"], block["counts"]):
            cumulative += count
            lines.append('%s_bucket{le="%s"} %d'
                         % (metric, _format_value(float(bound)), cumulative))
        cumulative += block["counts"][-1]
        lines.append('%s_bucket{le="+Inf"} %d' % (metric, cumulative))
        lines.append("%s_sum %s" % (metric, _format_value(block["sum"])))
        lines.append("%s_count %d" % (metric, block["count"]))
    if stats_report is not None:
        counters: Dict[str, int] = stats_report.get("counters", {})
        for name, value in sorted(counters.items()):
            metric = prometheus_name(name, "total")
            lines.append("# TYPE %s counter" % metric)
            lines.append("%s %d" % (metric, value))
        gauges: Dict[str, Any] = stats_report.get("gauges", {})
        for name, value in sorted(gauges.items()):
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            metric = prometheus_name(name)
            lines.append("# TYPE %s gauge" % metric)
            lines.append("%s %s" % (metric, _format_value(float(value))))
    return "\n".join(lines) + "\n"


def observe_stats_workload(
    registry: MetricsRegistry, stats_report: Dict[str, Any],
) -> None:
    """Fold one run's workload counters into distribution histograms.

    One completed job's ``repro-stats/1`` report contributes a single
    observation per workload metric — solver conflicts and proof
    clauses — so the histograms answer "how heavy is a typical job",
    not "how many conflicts total" (the counters already do that).
    """
    counters = stats_report.get("counters", {})
    if "solver/conflicts" in counters:
        registry.observe(
            "solver/conflicts", float(counters["solver/conflicts"]),
            buckets=COUNT_BUCKETS, unit="conflicts",
        )
    gauges = stats_report.get("gauges", {})
    clauses: Any = gauges.get("proof/clauses", counters.get("proof/clauses"))
    if isinstance(clauses, (int, float)) and not isinstance(clauses, bool):
        registry.observe(
            "proof/clauses", float(clauses),
            buckets=COUNT_BUCKETS, unit="clauses",
        )


def iter_histogram_names(document: Dict[str, Any]) -> Iterable[str]:
    """The histogram names present in a ``repro-metrics/1`` document."""
    return sorted(document.get("histograms", {}))
