"""Ablation C — the classical BDD engine against the SAT methods.

BDDs are the canonical pre-SAT equivalence checker: linear-time on
functions with compact BDDs (adders, comparators under an interleaved
order) and exponential on multipliers. This bench reports where each
engine stands — and that the BDD engine, unlike both SAT flows, produces
no checkable certificate.
"""

import pytest

from repro.baselines.bdd_cec import bdd_check
from repro.baselines.bdd_sweep import bdd_sweep_check
from repro.circuits import SUITE, multiplier_scaling_series

from conftest import report_table, run_monolithic, run_sweep

_ROWS = {}
_GROWTH = {}


@pytest.mark.parametrize("pair", SUITE, ids=lambda p: p.name)
def test_bdd_vs_sat(benchmark, pair, engine_cache):
    def run_all():
        aig_a, aig_b = pair.build()
        bdd = bdd_check(aig_a, aig_b, max_nodes=400_000)
        aig_a, aig_b = pair.build()
        sweep_bdd = bdd_sweep_check(aig_a, aig_b, max_nodes=400_000)
        mono = run_monolithic(engine_cache, pair)
        sweep = run_sweep(engine_cache, pair)
        return bdd, sweep_bdd, mono, sweep

    bdd, sweep_bdd, mono, sweep = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    assert mono.equivalent is True and sweep.equivalent is True
    assert bdd.equivalent is not False
    assert sweep_bdd.equivalent is not False
    _ROWS[pair.name] = [
        pair.name,
        "%.3f" % bdd.elapsed_seconds if bdd.equivalent else "blow-up",
        bdd.bdd_nodes,
        "%.3f" % sweep_bdd.elapsed_seconds
        if sweep_bdd.equivalent
        else "blow-up",
        sweep_bdd.merged_nodes,
        "%.3f" % mono.elapsed_seconds,
        "%.3f" % sweep.elapsed_seconds,
        "none" if bdd.equivalent else "-",
        "resolution",
    ]
    report_table(
        "Ablation C: BDD engines vs SAT methods",
        ["pair", "bdd(s)", "bdd nodes", "bddsweep(s)", "merges",
         "mono(s)", "cec(s)", "bdd certificate", "cec certificate"],
        [_ROWS[name] for name in sorted(_ROWS)],
        notes=["'blow-up' = node budget (400k) exceeded"],
    )


@pytest.mark.parametrize(
    "pair", multiplier_scaling_series(widths=(3, 4, 5, 6, 7, 8)),
    ids=lambda p: p.name,
)
def test_bdd_multiplier_growth(benchmark, pair):
    """BDD node growth on multipliers: the exponential wall."""
    def run():
        aig_a, aig_b = pair.build()
        return bdd_check(aig_a, aig_b, max_nodes=300_000)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    width = int(pair.name[3:])
    _GROWTH[width] = [
        width,
        result.bdd_nodes,
        "%.3f" % result.elapsed_seconds,
        "yes" if result.equivalent else "budget exceeded",
    ]
    report_table(
        "Ablation C (growth): BDD nodes vs multiplier width (budget 300k)",
        ["width", "bdd nodes", "time(s)", "completed"],
        [_GROWTH[w] for w in sorted(_GROWTH)],
        notes=["node counts grow ~4-5x per extra operand bit"],
    )
