"""Tests for DIMACS I/O."""

import io

import pytest

from repro.cnf import CNF, DimacsError, parse_dimacs, read_dimacs, write_dimacs


class TestWrite:
    def test_basic_format(self):
        cnf = CNF(clauses=[[1, -2], [2]])
        buffer = io.StringIO()
        write_dimacs(cnf, buffer, comments=["hello"])
        text = buffer.getvalue()
        assert text.startswith("c hello\np cnf 2 2\n")
        assert "-2 1 0" in text or "1 -2 0" in text

    def test_roundtrip(self):
        cnf = CNF(clauses=[[1, -2, 3], [-1], [2, 3]])
        buffer = io.StringIO()
        write_dimacs(cnf, buffer)
        buffer.seek(0)
        back = read_dimacs(buffer)
        assert back.num_vars == cnf.num_vars
        assert list(back) == list(cnf)


class TestParse:
    def test_comments_ignored(self):
        cnf = parse_dimacs("c comment\np cnf 2 1\n1 2 0\n")
        assert list(cnf) == [(1, 2)]

    def test_multiline_clause(self):
        cnf = parse_dimacs("p cnf 3 1\n1 2\n3 0\n")
        assert list(cnf) == [(1, 2, 3)]

    def test_multiple_clauses_one_line(self):
        cnf = parse_dimacs("p cnf 2 2\n1 0 -2 0\n")
        assert list(cnf) == [(1,), (-2,)]

    def test_declared_vars_kept(self):
        cnf = parse_dimacs("p cnf 9 1\n1 0\n")
        assert cnf.num_vars == 9

    def test_missing_problem_line(self):
        with pytest.raises(DimacsError, match="problem line"):
            parse_dimacs("1 2 0\n")

    def test_unterminated_clause(self):
        with pytest.raises(DimacsError, match="terminated"):
            parse_dimacs("p cnf 2 1\n1 2\n")

    def test_clause_count_mismatch(self):
        with pytest.raises(DimacsError, match="declared"):
            parse_dimacs("p cnf 2 2\n1 0\n")

    def test_var_overflow(self):
        with pytest.raises(DimacsError, match="beyond declared"):
            parse_dimacs("p cnf 1 1\n2 0\n")

    def test_bad_token(self):
        with pytest.raises(DimacsError, match="bad clause"):
            parse_dimacs("p cnf 1 1\nx 0\n")

    def test_bad_problem_line(self):
        with pytest.raises(DimacsError):
            parse_dimacs("p cnf x y\n")


class TestFileIO:
    def test_path_roundtrip(self, tmp_path):
        cnf = CNF(clauses=[[1, 2], [-1, -2]])
        path = tmp_path / "f.cnf"
        write_dimacs(cnf, str(path))
        back = read_dimacs(str(path))
        assert list(back) == list(cnf)
