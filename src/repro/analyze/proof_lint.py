"""Replay-free structural linting of resolution proofs.

:func:`lint_proof` walks a :class:`~repro.proof.store.ProofStore` once
and checks every invariant that can be decided *without* replaying
resolution chains:

* clause normal form (sorted, distinct, no complementary pair),
* chain structure and arity (``[first_id, (pivot, id), ...]``),
* antecedent acyclicity via the forward-reference discipline,
* pivot plausibility (pivot occurs in its antecedent; the first step's
  phases are opposed; the last pivot is eliminated from the claim),
* derivability of the claimed clause's variables from the chain,
* variable bounds and axiom membership against a source CNF,
* duplicate-clause and dead-clause (refutation-cone) accounting,
* empty-clause reachability.

Error-severity findings are *sound*: each one implies that a full
:func:`~repro.proof.checker.check_proof` replay of the same store must
fail (or, for CNF-relative rules, that certification against that CNF
must fail). The converse does not hold — a lint-clean proof can still be
rejected by replay — which is why :func:`repro.core.certify.certify`
uses linting only as a fast-reject pre-pass, never as the verdict.

The linter shares rule ids with the checker (``proof.forward-ref``,
``proof.chain-mismatch``, ...) so a defect is named identically whether
it is caught statically here or dynamically during replay; lint-only
rules (``proof.var-bounds``, ``proof.dead-clause``, ...) extend the same
namespace. The catalogue lives in ``docs/static-analysis.md``.

Performance: the per-chain fast path below is deliberately flat — one
fused loop, locals only, no slicing, set work that stops as soon as the
claimed clause's variables are all accounted for. Replay, by contrast,
must build each intermediate resolvent. The gap (several-fold on the
committed benchmark proofs, see ``benchmarks/bench_analyze_lint.py``)
is what makes linting viable as an always-on pre-flight. Malformed
chain *structure* is rare, so it is handled by exception: garbage
element types abort the fast path with a ``TypeError``/``ValueError``
and :func:`_chain_structure_findings` re-walks that chain alone.
"""

from __future__ import annotations

from operator import lt
from typing import Dict, List, Optional, Set

from ..cnf.clause import CNF
from ..proof.store import AXIOM, DERIVED, Chain, Clause, ProofError, \
    ProofStore
from ..proof.tracecheck import read_tracecheck
from .findings import ERROR, INFO, WARNING, Finding

#: Findings accumulated beyond this many error/warning entries are
#: dropped and summarized by one ``lint.truncated`` info finding, so a
#: thoroughly corrupted million-clause store cannot flood the report.
DEFAULT_FINDING_LIMIT = 1000


def lint_proof(
    store: ProofStore,
    cnf: Optional[CNF] = None,
    require_empty: bool = True,
    limit: Optional[int] = DEFAULT_FINDING_LIMIT,
) -> List[Finding]:
    """Lint a proof store; returns findings (empty list = fully clean).

    Args:
        store: the proof to analyze.
        cnf: optional source formula. When given, every clause variable
            must respect ``cnf.num_vars`` and every axiom must be a
            clause of *cnf* (the same contract as passing ``axioms=`` to
            the replay checker).
        require_empty: when true, a proof with no empty clause gets a
            ``proof.no-refutation`` error.
        limit: cap on error+warning findings (``None`` = unlimited);
            exceeding it appends a ``lint.truncated`` info finding.
    """
    findings: List[Finding] = []
    truncated = 0

    def emit(finding: Finding) -> None:
        nonlocal truncated
        if limit is not None and len(findings) >= limit:
            truncated += 1
            return
        findings.append(finding)

    num_clauses = len(store)
    clauses, kinds, chains = store.tables()
    allowed: Optional[Set[Clause]] = None
    # Sentinel bound: with no CNF every variable is in range, so the
    # per-clause bounds test short-circuits on the comparison alone.
    num_vars = 1 << 62
    if cnf is not None:
        # CNF.add_clause normalizes on insertion, so the clause tuples
        # are directly comparable to the store's.
        allowed = set(cnf.clauses)
        num_vars = cnf.num_vars
    # Tautological stored clauses weaken later pivot reasoning, so the
    # flag is remembered per clause for the chains that reference it.
    tautological = bytearray(num_clauses)
    # Variable set of each clause, reused by every chain that references
    # it (subset and pivot checks) — the cache is what keeps the
    # per-resolution-step work allocation-free.
    vars_of: List[Set[int]] = []
    first_seen: Dict[Clause, int] = {}
    empty_id: Optional[int] = None
    abs_ = abs

    for clause_id in range(num_clauses):
        clause = clauses[clause_id]
        kind = kinds[clause_id]

        # --- clause normal form -----------------------------------------
        n = len(clause)
        clause_vars = set(map(abs_, clause))
        vars_of.append(clause_vars)
        max_var = 0
        if len(clause_vars) == n:
            # All literals distinct on distinct variables: no duplicate
            # and no complementary pair. Normal form then reduces to a
            # strictly-increasing scan (C-level via map/all).
            if n:
                if 0 in clause_vars:
                    emit(Finding(
                        "proof.clause-form", ERROR,
                        "clause %d contains literal 0" % clause_id,
                        clause_id=clause_id,
                    ))
                elif not all(map(lt, clause, clause[1:])):
                    emit(Finding(
                        "proof.clause-form", ERROR,
                        "clause %d = %r is not a sorted tuple of distinct"
                        " literals" % (clause_id, clause),
                        clause_id=clause_id,
                    ))
                    max_var = max(clause_vars)
                else:
                    # Sorted: extreme literals carry the extreme vars.
                    max_var = clause[-1]
                    if -clause[0] > max_var:
                        max_var = -clause[0]
            elif empty_id is None:
                empty_id = clause_id
        else:
            distinct = set(clause)
            if 0 in distinct:
                emit(Finding(
                    "proof.clause-form", ERROR,
                    "clause %d contains literal 0" % clause_id,
                    clause_id=clause_id,
                ))
            elif tuple(sorted(distinct)) != clause:
                emit(Finding(
                    "proof.clause-form", ERROR,
                    "clause %d = %r is not a sorted tuple of distinct"
                    " literals" % (clause_id, clause),
                    clause_id=clause_id,
                ))
            if len(clause_vars) != len(distinct):
                tautological[clause_id] = 1
                emit(Finding(
                    "proof.tautology",
                    # A tautological *derived* clause cannot be replayed
                    # (resolve() refuses tautological resolvents); a
                    # tautological axiom is merely suspect.
                    ERROR if kind == DERIVED else WARNING,
                    "clause %d = %r contains a complementary literal pair"
                    % (clause_id, clause),
                    clause_id=clause_id,
                ))
            max_var = max(clause_vars) if clause_vars else 0
        if max_var > num_vars:
            emit(Finding(
                "proof.var-bounds", ERROR,
                "clause %d = %r uses a variable beyond the source CNF's"
                " %d variables" % (clause_id, clause, num_vars),
                clause_id=clause_id,
            ))

        # --- duplicates --------------------------------------------------
        original = first_seen.setdefault(clause, clause_id)
        if original != clause_id:
            emit(Finding(
                "proof.duplicate-clause", WARNING,
                "clause %d duplicates clause %d (%r)"
                % (clause_id, original, clause),
                clause_id=clause_id,
            ))

        # --- per-kind checks ---------------------------------------------
        if kind == AXIOM:
            if chains[clause_id] is not None:
                emit(Finding(
                    "proof.chain-arity", WARNING,
                    "axiom clause %d carries a derivation chain" % clause_id,
                    clause_id=clause_id,
                ))
            if allowed is not None and clause not in allowed:
                emit(Finding(
                    "proof.axiom-foreign", ERROR,
                    "axiom %d = %r is not a clause of the reference CNF"
                    % (clause_id, clause),
                    clause_id=clause_id,
                ))
            continue
        if kind != DERIVED:
            emit(Finding(
                "proof.unknown-kind", ERROR,
                "clause %d has unknown kind %r" % (clause_id, kind),
                clause_id=clause_id,
            ))
            continue

        # --- derivation chain (fused fast path) --------------------------
        chain = chains[clause_id]
        if chain is None:
            emit(Finding(
                "proof.chain-arity", ERROR,
                "derived clause %d has no chain" % clause_id,
                clause_id=clause_id,
            ))
            continue
        try:
            it = iter(chain)
            first = next(it, None)
            if first is None:
                raise ValueError
            if not 0 <= first < clause_id:
                emit(Finding(
                    "proof.forward-ref", ERROR,
                    "clause %d references antecedent %d that is not prior"
                    % (clause_id, first),
                    clause_id=clause_id,
                ))
                continue
            refs_ok = True
            leaky = tautological[first] != 0
            first_clause = clauses[first]
            # `missing` tracks claimed variables not yet seen in any
            # chain clause; once empty, the subset check is settled and
            # the per-step set work stops.
            missing = clause_vars.difference(vars_of[first])
            # First resolution step: the running resolvent IS the first
            # antecedent, so opposite pivot phases are fully decidable.
            step = next(it, None)
            if step is None:
                raise ValueError
            pivot, antecedent_id = step
            pv = pivot if pivot > 0 else -pivot
            if 0 <= antecedent_id < clause_id:
                if tautological[antecedent_id]:
                    leaky = True
                antecedent = clauses[antecedent_id]
                if not ((pv in first_clause and -pv in antecedent)
                        or (-pv in first_clause and pv in antecedent)):
                    emit(Finding(
                        "proof.pivot-phase", ERROR,
                        "clause %d: pivot %d lacks opposite phases in"
                        " antecedents %d and %d"
                        % (clause_id, pv, first, antecedent_id),
                        clause_id=clause_id,
                    ))
                if missing:
                    missing.difference_update(vars_of[antecedent_id])
            else:
                emit(Finding(
                    "proof.forward-ref", ERROR,
                    "clause %d references antecedent %d that is not prior"
                    % (clause_id, antecedent_id),
                    clause_id=clause_id,
                ))
                refs_ok = False
                leaky = True
            # After this loop `pv` holds the final step's pivot variable.
            for step in it:
                pivot, antecedent_id = step
                pv = pivot if pivot > 0 else -pivot
                if not 0 <= antecedent_id < clause_id:
                    emit(Finding(
                        "proof.forward-ref", ERROR,
                        "clause %d references antecedent %d that is not"
                        " prior" % (clause_id, antecedent_id),
                        clause_id=clause_id,
                    ))
                    refs_ok = False
                    leaky = True
                    continue
                if tautological[antecedent_id]:
                    leaky = True
                antecedent_vars = vars_of[antecedent_id]
                if pv not in antecedent_vars:
                    emit(Finding(
                        "proof.pivot-missing", ERROR,
                        "clause %d: pivot %d does not occur in antecedent"
                        " %d = %r"
                        % (clause_id, pv, antecedent_id,
                           clauses[antecedent_id]),
                        clause_id=clause_id,
                    ))
                if missing:
                    missing.difference_update(antecedent_vars)
            if refs_ok and missing:
                # Resolvent variables are a subset of the union of
                # antecedent variables, so leftovers are underivable.
                for var in sorted(missing):
                    emit(Finding(
                        "proof.pivot-unresolvable", ERROR,
                        "clause %d claims variable %d which appears in no"
                        " antecedent" % (clause_id, var),
                        clause_id=clause_id,
                    ))
            # With tautology-free antecedents the final resolution
            # removes both phases of its pivot, so the pivot variable
            # cannot survive into the claim. (A tautological antecedent
            # — already reported — can leak it, hence the guard.)
            if not leaky and pv in clause_vars:
                emit(Finding(
                    "proof.pivot-unresolvable", ERROR,
                    "clause %d retains its final pivot variable %d"
                    % (clause_id, pv),
                    clause_id=clause_id,
                ))
        except (TypeError, ValueError):
            for finding in _chain_structure_findings(clause_id, chain):
                emit(finding)

    # --- refutation and cone accounting ----------------------------------
    if empty_id is None:
        if require_empty:
            emit(Finding(
                "proof.no-refutation", ERROR,
                "proof does not derive the empty clause",
            ))
    else:
        cone = _refutation_cone_size(store, empty_id)
        dead = num_clauses - cone
        findings.append(Finding(
            "proof.refutation-report", INFO,
            "empty clause %d is derived; its cone spans %d of %d clauses"
            % (empty_id, cone, num_clauses),
            clause_id=empty_id,
            data={
                "empty_clause_id": empty_id,
                "cone_clauses": cone,
                "total_clauses": num_clauses,
            },
        ))
        if dead:
            findings.append(Finding(
                "proof.dead-clause", INFO,
                "%d clauses are outside the refutation cone"
                " (trim would remove them)" % dead,
                data={"dead_clauses": dead},
            ))
    if truncated:
        findings.append(Finding(
            "lint.truncated", INFO,
            "%d further findings were dropped (limit %d)"
            % (truncated, limit or 0),
            data={"dropped": truncated},
        ))
    return findings


def _chain_structure_findings(clause_id: int, chain: Chain) -> List[Finding]:
    """Explain why a chain aborted the fast path (malformed structure)."""
    findings: List[Finding] = []
    if len(chain) < 2 or not isinstance(chain[0], int):
        findings.append(Finding(
            "proof.chain-arity", ERROR,
            "clause %d: chain must be [first_id, (pivot, id), ...] with at"
            " least one step" % clause_id,
            clause_id=clause_id,
        ))
        return findings
    for step in chain[1:]:
        if (not isinstance(step, tuple) or len(step) != 2
                or not isinstance(step[0], int)
                or not isinstance(step[1], int)):
            findings.append(Finding(
                "proof.chain-arity", ERROR,
                "clause %d: chain step %r is not a (pivot, id) pair"
                % (clause_id, step),
                clause_id=clause_id,
            ))
    if not findings:
        # The fast path aborted but every step looks structurally fine —
        # report conservatively rather than crash.
        findings.append(Finding(
            "proof.chain-arity", ERROR,
            "clause %d: chain is not analyzable" % clause_id,
            clause_id=clause_id,
        ))
    return findings


def _refutation_cone_size(store: ProofStore, empty_id: int) -> int:
    """Number of clauses backward-reachable from the empty clause.

    A single reverse scan with a mark array: by the forward-reference
    discipline every antecedent id precedes its resolvent, so when the
    scan reaches a clause, everything that could mark it already has.
    Forward or out-of-range references — reported separately as errors —
    are ignored, keeping the count meaningful on corrupted stores.
    """
    chains = store.tables()[2]
    marked = bytearray(len(store))
    marked[empty_id] = 1
    count = 0
    for clause_id in range(empty_id, -1, -1):
        if not marked[clause_id]:
            continue
        count += 1
        chain = chains[clause_id]
        if chain is None:
            continue
        try:
            it = iter(chain)
            ref = next(it, None)
            if isinstance(ref, int) and 0 <= ref < clause_id:
                marked[ref] = 1
            for step in it:
                ref = step[1]
                if 0 <= ref < clause_id:
                    marked[ref] = 1
        except (TypeError, ValueError, IndexError):
            continue
    return count


def lint_tracecheck_file(
    path: str,
    cnf: Optional[CNF] = None,
    require_empty: bool = True,
    limit: Optional[int] = DEFAULT_FINDING_LIMIT,
) -> List[Finding]:
    """Parse a TraceCheck file and lint the resulting store.

    Parse-level defects (bad syntax, duplicate ids, chains that do not
    linearize) become a single error finding carrying the parser's rule
    id instead of an exception.
    """
    try:
        store, _ = read_tracecheck(path)
    except ProofError as exc:
        return [Finding(
            exc.rule_id or "trace.syntax", ERROR, str(exc),
            clause_id=exc.clause_id,
        )]
    return lint_proof(
        store, cnf=cnf, require_empty=require_empty, limit=limit,
    )


def lint_drup_file(
    path: str,
    cnf: Optional[CNF] = None,
    limit: Optional[int] = DEFAULT_FINDING_LIMIT,
) -> List[Finding]:
    """Syntactic lint of a DRUP file (no propagation).

    Checks numeric syntax, zero-termination, tautology-free clause
    lines, variable bounds against *cnf*, and that some non-deletion
    line asserts the empty clause (a DRUP refutation must).
    """
    findings: List[Finding] = []
    saw_empty = False
    num_vars = cnf.num_vars if cnf is not None else None
    with open(path) as handle:
        for lineno, raw in enumerate(handle, start=1):
            if limit is not None and len(findings) >= limit:
                findings.append(Finding(
                    "lint.truncated", INFO,
                    "stopped at line %d (limit %d)" % (lineno, limit),
                ))
                break
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            deletion = line.startswith("d ")
            if deletion:
                line = line[2:]
            try:
                numbers = [int(token) for token in line.split()]
            except ValueError:
                findings.append(Finding(
                    "drup.syntax", ERROR,
                    "line %d is not numeric: %r" % (lineno, raw.rstrip()),
                    line=lineno,
                ))
                continue
            if not numbers or numbers[-1] != 0 or 0 in numbers[:-1]:
                findings.append(Finding(
                    "drup.syntax", ERROR,
                    "line %d is not a zero-terminated clause" % lineno,
                    line=lineno,
                ))
                continue
            lits = numbers[:-1]
            if len(set(map(abs, lits))) != len(set(lits)):
                findings.append(Finding(
                    "proof.tautology", WARNING,
                    "line %d asserts a tautological clause" % lineno,
                    line=lineno,
                ))
            if num_vars is not None and lits and \
                    max(map(abs, lits)) > num_vars:
                findings.append(Finding(
                    "proof.var-bounds", ERROR,
                    "line %d uses a variable beyond the source CNF's %d"
                    % (lineno, num_vars),
                    line=lineno,
                ))
            if not lits and not deletion:
                saw_empty = True
    if not saw_empty:
        findings.append(Finding(
            "proof.no-refutation", ERROR,
            "DRUP file never asserts the empty clause",
        ))
    return findings
