"""DIMACS CNF reader/writer."""

from __future__ import annotations

from typing import IO, Iterable, List, Optional, Union

from .clause import CNF


class DimacsError(ValueError):
    """Raised on malformed DIMACS input."""


def write_dimacs(
    cnf: CNF,
    path_or_file: Union[str, IO[str]],
    comments: Iterable[str] = (),
) -> None:
    """Write *cnf* in DIMACS format, with optional comment lines."""
    if hasattr(path_or_file, "write"):
        _write(cnf, path_or_file, comments)
    else:
        with open(path_or_file, "w") as handle:
            _write(cnf, handle, comments)


def _write(cnf: CNF, out: IO[str], comments: Iterable[str]) -> None:
    for comment in comments:
        out.write("c %s\n" % comment)
    out.write("p cnf %d %d\n" % (cnf.num_vars, len(cnf.clauses)))
    for clause in cnf.clauses:
        out.write(" ".join(str(lit) for lit in clause))
        out.write(" 0\n")


def read_dimacs(path_or_file: Union[str, IO[str]]) -> CNF:
    """Parse a DIMACS file into a :class:`CNF`."""
    if hasattr(path_or_file, "read"):
        text = path_or_file.read()
    else:
        with open(path_or_file) as handle:
            text = handle.read()
    return parse_dimacs(text)


def parse_dimacs(text: str) -> CNF:
    """Parse DIMACS text into a :class:`CNF`."""
    declared_vars: Optional[int] = None
    declared_clauses: Optional[int] = None
    cnf = CNF()
    pending: List[int] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            fields = line.split()
            if len(fields) != 4 or fields[1] != "cnf":
                raise DimacsError("bad problem line %d: %r" % (lineno, raw))
            try:
                declared_vars = int(fields[2])
                declared_clauses = int(fields[3])
            except ValueError:
                raise DimacsError("non-numeric problem line %d" % lineno)
            continue
        try:
            numbers = [int(tok) for tok in line.split()]
        except ValueError:
            raise DimacsError("bad clause line %d: %r" % (lineno, raw))
        for num in numbers:
            if num == 0:
                cnf.add_clause(pending)
                pending = []
            else:
                pending.append(num)
    if pending:
        raise DimacsError("last clause not terminated by 0")
    if declared_vars is None:
        raise DimacsError("missing problem line")
    if cnf.num_vars > declared_vars:
        raise DimacsError(
            "clauses use variable %d beyond declared %d"
            % (cnf.num_vars, declared_vars)
        )
    cnf.num_vars = declared_vars
    if declared_clauses is not None and len(cnf.clauses) != declared_clauses:
        raise DimacsError(
            "declared %d clauses but found %d"
            % (declared_clauses, len(cnf.clauses))
        )
    return cnf
