"""Ablation B — candidate quality without simulation refinement.

Compares the default engine against a degenerate configuration whose
initial simulation is a single word (64 patterns) with no headroom, on
the pairs where candidate quality matters most (wide adders, whose
carry-chain signals collide under few patterns). Reports refuted SAT
calls — the direct cost of bad candidates.
"""

import pytest

from repro.circuits import adder_scaling_series
from repro.core.cec import check_equivalence
from repro.core.fraig import SweepOptions

from conftest import report_table

PAIRS = adder_scaling_series(widths=(8, 12, 16))
_ROWS = {}


@pytest.mark.parametrize("pair", PAIRS, ids=lambda p: p.name)
def test_candidate_quality(benchmark, pair):
    def run_both():
        aig_a, aig_b = pair.build()
        weak = check_equivalence(
            aig_a, aig_b, SweepOptions(sim_words=1)
        )
        aig_a, aig_b = pair.build()
        strong = check_equivalence(
            aig_a, aig_b, SweepOptions(sim_words=8)
        )
        return weak, strong

    weak, strong = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert weak.equivalent is True and strong.equivalent is True
    _ROWS[pair.name] = [
        pair.name,
        weak.engine.stats.sat_calls_sat,
        strong.engine.stats.sat_calls_sat,
        weak.engine.stats.refinements,
        strong.engine.stats.refinements,
        "%.3f" % weak.elapsed_seconds,
        "%.3f" % strong.elapsed_seconds,
    ]
    report_table(
        "Ablation B: simulation effort (64 vs 512 initial patterns)",
        ["pair", "refuted@64", "refuted@512", "refine@64", "refine@512",
         "t@64(s)", "t@512(s)"],
        [_ROWS[name] for name in sorted(_ROWS)],
        notes=["refuted calls and refinements drop with more patterns"],
    )
