"""Job bookkeeping for the CEC server: states, table, bounded admission.

A :class:`Job` tracks one submitted equivalence check from admission to
a terminal state. The :class:`JobTable` owns every job the server has
seen, enforces the bounded queue (admission fails with
:class:`QueueFullError` once the number of non-terminal jobs reaches
the limit — the server turns that into a structured ``queue-full``
response, never a crash), and is the single synchronization point
between handler threads and the worker pool's completion callbacks.
"""

import collections
import itertools
import threading
import time

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States from which a job can no longer change.
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


class QueueFullError(Exception):
    """Admission rejected: the bounded job queue is at capacity."""

    def __init__(self, limit):
        Exception.__init__(
            self, "job queue is full (%d jobs pending)" % limit
        )
        self.limit = limit


class Job:
    """One submitted equivalence check.

    Attributes:
        id: server-assigned job id (stable for the server's lifetime).
        key: structural-hash cache key of the query.
        state: one of the state constants above.
        cached: True when the answer came from the proof cache.
        verdict: ``"equivalent" | "not_equivalent" | "undecided"`` once
            done.
        result: the ``repro-cec-result/1`` document once done.
        error: ``{"code", "message"}`` once failed/cancelled.
        worker_stats: the worker's ``repro-stats/1`` report (None for
            cache hits — nothing ran).
        job_stats: the *server-side* ``repro-stats/1`` report for this
            job (cache lookup, queue wait, dispatch); on a cache hit
            this is the only stats block, and it records no solver
            phases.
        trace: the stitched ``repro-trace/1`` document once terminal
            (server-side spans plus the worker's), or None when the
            server records no spans for the job.
        progress_path: heartbeat spool file the worker appends
            ``repro-progress/1`` documents to while the job runs
            (None when progress is disabled or the job was cached).
        progress: the job's last observed heartbeat document; kept
            after the spool file is harvested at completion so late
            ``progress`` queries still see the final sample.
        recorder: the per-job server-side recorder; owned by the
            server, which uses it to assemble ``job_stats``/``trace``.
        span_id: span id of the job's root ``service/job`` span — the
            parent the worker's top-level phases attach under.
    """

    def __init__(self, job_id, key=None):
        self.id = job_id
        self.key = key
        self.state = QUEUED
        self.cached = False
        self.verdict = None
        self.result = None
        self.error = None
        self.worker_stats = None
        self.job_stats = None
        self.trace = None
        self.recorder = None
        self.span_id = None
        self.trace_parent = None
        self.progress_path = None
        self.progress = None
        self.future = None
        self.submitted_at = time.time()
        self.started_at = None
        self.finished_at = None
        self._terminal = threading.Event()

    # ------------------------------------------------------------------
    # Transitions (called under the table lock or from the completion
    # callback; the event makes terminal-state waits race-free).
    # ------------------------------------------------------------------

    def mark_running(self):
        self.state = RUNNING
        self.started_at = time.time()

    def finish(self, verdict, result, worker_stats=None, cached=False):
        self.verdict = verdict
        self.result = result
        self.worker_stats = worker_stats
        self.cached = cached
        self.state = DONE
        self.finished_at = time.time()
        self._terminal.set()

    def fail(self, code, message, cancelled=False):
        self.error = {"code": code, "message": message}
        self.state = CANCELLED if cancelled else FAILED
        self.finished_at = time.time()
        self._terminal.set()

    def wait(self, timeout=None):
        """Block until the job is terminal; True when it is."""
        return self._terminal.wait(timeout)

    @property
    def is_terminal(self):
        return self.state in TERMINAL_STATES

    def elapsed_seconds(self):
        """Wall time from submission to completion (or now)."""
        end = self.finished_at if self.finished_at is not None else time.time()
        return end - self.submitted_at

    def queue_wait_seconds(self):
        """Wall time the job spent admitted but not yet executing."""
        if self.started_at is None:
            return 0.0
        return max(0.0, self.started_at - self.submitted_at)

    def snapshot(self):
        """JSON-compatible status block (no result payload)."""
        return {
            "job": self.id,
            "state": self.state,
            "cached": self.cached,
            "verdict": self.verdict,
            "error": self.error,
            "elapsed_seconds": self.elapsed_seconds(),
        }


class JobTable:
    """Thread-safe registry of all jobs plus bounded admission.

    Args:
        queue_limit: maximum number of *non-terminal* jobs (queued or
            running, across the whole pool). ``admit`` raises
            :class:`QueueFullError` beyond it.
        retain_terminal: how many terminal jobs (with their full result
            documents) to keep for late ``status``/``result`` queries.
            Older terminal jobs are evicted so a persistent server's
            memory stays bounded over its lifetime; querying an evicted
            job answers ``unknown job``. Non-terminal jobs are never
            evicted.
    """

    #: Default number of finished jobs retained for late queries.
    DEFAULT_RETAIN_TERMINAL = 256

    def __init__(self, queue_limit=32, retain_terminal=None):
        self.queue_limit = queue_limit
        self.retain_terminal = (
            self.DEFAULT_RETAIN_TERMINAL
            if retain_terminal is None else retain_terminal
        )
        self._lock = threading.Lock()
        self._jobs = {}
        self._pending = 0
        self._terminal_order = collections.deque()
        self._ids = itertools.count(1)

    def new_job_id(self):
        return "j%06d" % next(self._ids)

    def admit(self, key=None):
        """Create, register, and return a new job (bounded).

        Raises:
            QueueFullError: when the pending-job cap is reached.
        """
        with self._lock:
            if self._pending >= self.queue_limit:
                raise QueueFullError(self.queue_limit)
            job = Job(self.new_job_id(), key=key)
            self._jobs[job.id] = job
            self._pending += 1
            return job

    def add_terminal(self, key=None):
        """Register a job that is already answered (cache hits).

        Cache hits never occupy queue capacity.
        """
        with self._lock:
            job = Job(self.new_job_id(), key=key)
            self._jobs[job.id] = job
            return job

    def release(self, job):
        """Account a job's transition to a terminal state (idempotent
        per job: call exactly once when the job leaves the queue)."""
        with self._lock:
            if self._pending > 0:
                self._pending -= 1

    def note_terminal(self, job):
        """Record that *job* reached a terminal state; evict the oldest
        terminal jobs beyond ``retain_terminal`` so the table (and the
        result payloads it holds) stays bounded on a long-lived server.
        """
        with self._lock:
            self._terminal_order.append(job.id)
            while len(self._terminal_order) > self.retain_terminal:
                old_id = self._terminal_order.popleft()
                old = self._jobs.get(old_id)
                if old is not None and old.is_terminal:
                    del self._jobs[old_id]

    def get(self, job_id):
        """The job registered under *job_id*, or ``None``."""
        with self._lock:
            return self._jobs.get(job_id)

    def active(self):
        """All non-terminal jobs, in admission order."""
        with self._lock:
            return [
                job for job in self._jobs.values() if not job.is_terminal
            ]

    def recent_terminal(self, limit=16):
        """The newest *limit* terminal jobs still retained, oldest
        first (the progress verb's listing includes them so pollers
        observe completions they would otherwise race)."""
        with self._lock:
            ids = list(self._terminal_order)[-limit:] if limit > 0 else []
            return [
                self._jobs[job_id] for job_id in ids
                if job_id in self._jobs
            ]

    def pending(self):
        """Number of queued/running jobs."""
        with self._lock:
            return self._pending

    def __len__(self):
        with self._lock:
            return len(self._jobs)
