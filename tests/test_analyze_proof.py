"""Tests for the replay-free proof linter.

The corpus tests pin the linter's soundness contract: every corruption
is flagged at error severity under a stable rule id, and the replay
checker rejects the identical store. The clean-proof tests pin the
converse direction the acceptance criteria require: engine-produced
certificates lint with zero error findings.
"""

import pytest

from proof_corpus import CORRUPTIONS, base_cnf, base_store, corrupted
from repro import check_equivalence
from repro.analyze import ERROR, INFO, WARNING, lint_proof
from repro.analyze.proof_lint import lint_drup_file, lint_tracecheck_file
from repro.baselines.monolithic import monolithic_check
from repro.circuits import kogge_stone_adder, parity_chain, parity_tree, \
    ripple_carry_adder
from repro.proof.checker import check_proof
from repro.proof.drup import write_drup
from repro.proof.store import ProofError
from repro.proof.tracecheck import write_tracecheck
from repro.proof.trim import trim


def error_rules(findings):
    return {f.rule_id for f in findings if f.severity == ERROR}


class TestCorpus:
    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_linter_flags_corruption(self, name):
        store, cnf, rule = corrupted(name)
        findings = lint_proof(store, cnf=cnf)
        assert rule in error_rules(findings), [f.render() for f in findings]

    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_checker_rejects_corruption(self, name):
        store, cnf, _ = corrupted(name)
        with pytest.raises(ProofError):
            check_proof(store, axioms=cnf.clauses, require_empty=True)

    def test_base_store_is_clean(self):
        findings = lint_proof(base_store(), cnf=base_cnf())
        assert not error_rules(findings)
        check_proof(
            base_store(), axioms=base_cnf().clauses, require_empty=True
        )

    def test_findings_carry_clause_ids(self):
        store, cnf, rule = corrupted("tautology")
        finding = next(
            f for f in lint_proof(store, cnf=cnf) if f.rule_id == rule
        )
        assert finding.clause_id == 4
        assert "clause 4" in finding.render()

    def test_finding_limit_truncates(self):
        store, cnf, _ = corrupted("out-of-range-var")
        findings = lint_proof(store, cnf=cnf, limit=1)
        assert len([f for f in findings if f.severity != INFO]) == 1
        assert any(f.rule_id == "lint.truncated" for f in findings)


class TestCleanProofs:
    @pytest.mark.parametrize("engine", ["sweep", "monolithic"])
    def test_engine_proofs_lint_clean(self, engine):
        if engine == "sweep":
            result = check_equivalence(
                ripple_carry_adder(4), kogge_stone_adder(4)
            )
        else:
            result = monolithic_check(
                ripple_carry_adder(4), kogge_stone_adder(4), proof=True
            )
        assert result.equivalent
        for proof in (result.proof, trim(result.proof)[0]):
            findings = lint_proof(proof, cnf=result.cnf)
            assert not error_rules(findings), \
                [f.render() for f in findings]

    def test_refutation_report_accounting(self):
        result = check_equivalence(parity_tree(5), parity_chain(5))
        trimmed, _ = trim(result.proof)
        findings = lint_proof(trimmed, cnf=result.cnf)
        report = next(
            f for f in findings if f.rule_id == "proof.refutation-report"
        )
        assert report.severity == INFO
        assert report.data["total_clauses"] == len(trimmed)
        assert 0 < report.data["cone_clauses"] <= len(trimmed)
        dead = [f for f in findings if f.rule_id == "proof.dead-clause"]
        expected_dead = len(trimmed) - report.data["cone_clauses"]
        if expected_dead:
            assert dead[0].data["dead_clauses"] == expected_dead
        else:
            assert not dead

    def test_missing_refutation_flagged_unless_allowed(self):
        store = base_store()
        store._clauses[5] = (2,)
        store._chains[5] = [0, (2, 2)]
        rules = error_rules(lint_proof(store))
        assert "proof.no-refutation" in rules
        rules = error_rules(lint_proof(store, require_empty=False))
        assert "proof.no-refutation" not in rules


class TestProofFiles:
    def test_tracecheck_file_clean(self, tmp_path):
        path = str(tmp_path / "proof.tc")
        write_tracecheck(base_store(), path)
        findings = lint_tracecheck_file(path, cnf=base_cnf())
        assert not error_rules(findings)

    def test_tracecheck_file_syntax_error(self, tmp_path):
        path = str(tmp_path / "broken.tc")
        with open(path, "w") as handle:
            handle.write("1 1 2 0 0\nnot a trace line\n")
        findings = lint_tracecheck_file(path)
        rules = error_rules(findings)
        assert rules, findings
        assert all(r.startswith(("trace.", "proof.")) for r in rules)

    def test_drup_file_clean(self, tmp_path):
        result = check_equivalence(parity_tree(4), parity_chain(4))
        trimmed, _ = trim(result.proof)
        path = str(tmp_path / "proof.drup")
        write_drup(trimmed, path)
        findings = lint_drup_file(path, cnf=result.cnf)
        assert not error_rules(findings)

    def test_drup_file_defects(self, tmp_path):
        path = str(tmp_path / "bad.drup")
        with open(path, "w") as handle:
            handle.write("1 2 0\nnonsense\n3 99 0\n1 2\n")
        findings = lint_drup_file(path, cnf=base_cnf())
        rules = error_rules(findings)
        assert "drup.syntax" in rules
        assert "proof.var-bounds" in rules
        assert "proof.no-refutation" in rules

    def test_drup_tautology_warning(self, tmp_path):
        path = str(tmp_path / "taut.drup")
        with open(path, "w") as handle:
            handle.write("-1 1 0\n0\n")
        findings = lint_drup_file(path)
        assert any(
            f.rule_id == "proof.tautology" and f.severity == WARNING
            for f in findings
        )
