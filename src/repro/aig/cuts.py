"""K-feasible cut enumeration.

A *cut* of node ``n`` is a set of nodes (leaves) such that every path
from the inputs to ``n`` passes through a leaf; it is k-feasible when it
has at most k leaves. Cuts are the unit of local resynthesis (technology
mapping, rewriting) and are computed bottom-up: the cuts of an AND node
are the pairwise unions of its fanins' cuts, filtered by size and
dominance, plus the trivial cut ``{n}``.

The enumerator also computes each cut's local truth table (over its
leaves, LSB-first), which is what cut-based rewriting consumes.
"""

from .literal import lit_sign, lit_var


class Cut:
    """One cut: a leaf tuple (sorted vars) plus the node's truth table.

    Attributes:
        leaves: sorted tuple of leaf variables.
        table: truth table of the node over the leaves (bit ``i`` is the
            node value when leaf ``j`` takes bit ``j`` of ``i``), masked
            to ``2**len(leaves)`` bits.
    """

    __slots__ = ("leaves", "table")

    def __init__(self, leaves, table):
        self.leaves = leaves
        self.table = table

    def __repr__(self):
        return "Cut(leaves=%r, table=0x%x)" % (self.leaves, self.table)

    def dominates(self, other):
        """True when this cut's leaves are a subset of *other*'s."""
        return set(self.leaves) <= set(other.leaves)


def _expand_table(cut, union_leaves):
    """Re-express *cut*'s table over the superset *union_leaves*."""
    table = cut.table
    # Insert missing variables one at a time, from low position up.
    positions = {leaf: pos for pos, leaf in enumerate(union_leaves)}
    result = 0
    bits = 1 << len(union_leaves)
    small_positions = [positions[leaf] for leaf in cut.leaves]
    for minterm in range(bits):
        small_index = 0
        for j, pos in enumerate(small_positions):
            if (minterm >> pos) & 1:
                small_index |= 1 << j
        if (table >> small_index) & 1:
            result |= 1 << minterm
    return result


def enumerate_cuts(aig, k=4, max_cuts=8):
    """Enumerate k-feasible cuts (with truth tables) for every variable.

    Args:
        aig: the AIG.
        k: maximum leaves per cut (1..6).
        max_cuts: per-node cut-set size limit (the trivial cut is always
            kept and does not count against the limit).

    Returns:
        List indexed by variable holding lists of :class:`Cut`. The
        constant variable has a single empty cut with table 0.
    """
    if not 1 <= k <= 6:
        raise ValueError("k must be between 1 and 6")
    cuts = [None] * aig.num_vars
    cuts[0] = [Cut((), 0)]
    for var in aig.inputs:
        cuts[var] = [Cut((var,), 0b10)]
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        candidates = {}
        for cut0 in cuts[lit_var(f0)]:
            table0_negated = lit_sign(f0)
            for cut1 in cuts[lit_var(f1)]:
                union = tuple(sorted(set(cut0.leaves) | set(cut1.leaves)))
                if len(union) > k:
                    continue
                mask = (1 << (1 << len(union))) - 1
                t0 = _expand_table(cut0, union)
                if table0_negated:
                    t0 = ~t0 & mask
                t1 = _expand_table(cut1, union)
                if lit_sign(f1):
                    t1 = ~t1 & mask
                table = t0 & t1
                existing = candidates.get(union)
                if existing is None:
                    candidates[union] = table
        merged = [Cut(leaves, table) for leaves, table in candidates.items()]
        merged = _filter_dominated(merged)
        merged.sort(key=lambda c: (len(c.leaves), c.leaves))
        merged = merged[:max_cuts]
        trivial = Cut((var,), 0b10)
        cuts[var] = merged + [trivial]
    return cuts


def _filter_dominated(cut_list):
    kept = []
    for cut in sorted(cut_list, key=lambda c: len(c.leaves)):
        if any(other.dominates(cut) for other in kept):
            continue
        kept.append(cut)
    return kept


def cut_function(aig, root_lit, leaves):
    """Truth table of *root_lit* over the ordered *leaves* (variable ids).

    Brute-force local evaluation: correct for any cut, used to cross-check
    the enumerator and by rewriting when it needs a specific leaf order.
    Leaves must actually cut the cone of *root_lit* (every path from the
    inputs passes through one) — otherwise unreached variables default to
    constant 0 and the table is not a function of the leaves only.
    """
    count = len(leaves)
    if count > 16:
        raise ValueError("cut_function limited to 16 leaves")
    position = {leaf: idx for idx, leaf in enumerate(leaves)}
    table = 0
    root_var = lit_var(root_lit)
    cone = _cone_to_leaves(aig, root_var, set(leaves))
    for minterm in range(1 << count):
        values = {0: 0}
        for leaf, idx in position.items():
            values[leaf] = (minterm >> idx) & 1
        for var in cone:
            f0, f1 = aig.fanins(var)
            v0 = values.get(lit_var(f0), 0) ^ (1 if lit_sign(f0) else 0)
            v1 = values.get(lit_var(f1), 0) ^ (1 if lit_sign(f1) else 0)
            values[var] = v0 & v1
        value = values.get(root_var, 0)
        if lit_sign(root_lit):
            value ^= 1
        if value:
            table |= 1 << minterm
    return table


def _cone_to_leaves(aig, root_var, leaves):
    """Topologically ordered AND vars between *leaves* and *root_var*."""
    order = []
    seen = set(leaves)
    seen.add(0)

    stack = [(root_var, False)]
    while stack:
        var, expanded = stack.pop()
        if var in seen:
            continue
        if not aig.is_and(var):
            seen.add(var)
            continue
        if expanded:
            seen.add(var)
            order.append(var)
            continue
        stack.append((var, True))
        f0, f1 = aig.fanins(var)
        stack.append((lit_var(f0), False))
        stack.append((lit_var(f1), False))
    return order
