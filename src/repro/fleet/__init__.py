"""The fleet tier: scale-out distribution over ``repro-serve`` shards.

One ``repro-serve`` process is the single-machine ceiling of the CEC
service. This package adds the distribution layer above it:

* :mod:`repro.fleet.ring` — deterministic consistent-hash ring with
  bounded key movement on membership changes.
* :mod:`repro.fleet.aioclient` — asyncio client for the line-JSON
  service/fleet protocols (used by the router and the load bench).
* :mod:`repro.fleet.router` — the ``repro-router`` front door:
  routes submits by proof-cache key, brokers cross-shard
  ``repro-fleet/1`` cache transfers, health-checks shards, stitches
  traces across the extra hop, and exposes Prometheus metrics.

See ``docs/fleet.md`` for the topology, failure modes, and retry
semantics.
"""

from .aioclient import AsyncServiceClient
from .ring import DEFAULT_REPLICAS, HashRing
from .router import FleetRouter

__all__ = [
    "AsyncServiceClient",
    "DEFAULT_REPLICAS",
    "FleetRouter",
    "HashRing",
]
