"""Tests for the function-preserving transforms."""

import pytest

from repro.aig import AIG, Simulator, lit_not
from repro.circuits import (
    alu,
    array_multiplier,
    comparator,
    majority,
    mux_tree,
    parity_chain,
    ripple_carry_adder,
)
from repro.transforms import balance, detect_mux, detect_xor, restructure

from conftest import assert_equivalent_exhaustive

SMALL_CIRCUITS = [
    ripple_carry_adder(3),
    array_multiplier(3),
    comparator(3),
    alu(2),
    majority(5),
    mux_tree(2),
]


class TestDetectors:
    def test_detect_xor_on_builder_output(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        xor_lit = aig.add_xor(a, b)
        shape = detect_xor(aig, xor_lit >> 1)
        assert shape is not None
        x, y = shape
        assert {x >> 1, y >> 1} == {a >> 1, b >> 1}

    def test_detect_xor_rejects_plain_and(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        node = aig.add_and(a, b)
        assert detect_xor(aig, node >> 1) is None

    def test_detect_mux_on_builder_output(self):
        aig = AIG()
        s, t, e = aig.add_inputs(3)
        mux_lit = aig.add_mux(s, t, e)
        shape = detect_mux(aig, mux_lit >> 1)
        assert shape is not None

    def test_detect_mux_rejects_unrelated(self):
        aig = AIG()
        a, b, c, d = aig.add_inputs(4)
        node = aig.add_and(
            lit_not(aig.add_and(a, b)), lit_not(aig.add_and(c, d))
        )
        assert detect_mux(aig, node >> 1) is None

    def test_xor_is_special_mux(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        xor_lit = aig.add_xor(a, b)
        # An XOR node also matches the MUX pattern (t = ~e).
        assert detect_mux(aig, xor_lit >> 1) is not None


class TestRestructure:
    @pytest.mark.parametrize(
        "aig", SMALL_CIRCUITS, ids=lambda a: a.name
    )
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_function_preserved(self, aig, seed):
        variant = restructure(aig, seed=seed, intensity=0.5, redundancy=0.25)
        assert_equivalent_exhaustive(aig, variant)

    def test_structure_changes(self):
        aig = parity_chain(8)
        variant = restructure(aig, seed=1, intensity=0.9)
        assert variant.num_ands != aig.num_ands

    def test_deterministic(self):
        aig = comparator(4)
        v1 = restructure(aig, seed=5)
        v2 = restructure(aig, seed=5)
        assert v1.num_ands == v2.num_ands
        assert list(v1.outputs) == list(v2.outputs)

    def test_zero_intensity_zero_redundancy_is_copy(self):
        aig = comparator(4)
        variant = restructure(aig, seed=0, intensity=0.0, redundancy=0.0)
        assert variant.num_ands == aig.num_ands

    def test_redundancy_grows_circuit(self):
        aig = array_multiplier(4)
        variant = restructure(aig, seed=0, intensity=0.0, redundancy=0.5)
        assert variant.num_ands > aig.num_ands

    def test_io_preserved(self):
        aig = alu(3)
        variant = restructure(aig, seed=2)
        assert variant.num_inputs == aig.num_inputs
        assert variant.num_outputs == aig.num_outputs
        assert variant.input_names == aig.input_names


class TestBalance:
    @pytest.mark.parametrize(
        "aig", SMALL_CIRCUITS, ids=lambda a: a.name
    )
    def test_function_preserved(self, aig):
        assert_equivalent_exhaustive(aig, balance(aig))

    def test_depth_never_worse_on_chains(self):
        aig = AIG()
        lits = aig.add_inputs(16)
        acc = lits[0]
        for lit in lits[1:]:
            acc = aig.add_and(acc, lit)
        aig.add_output(acc)
        balanced = balance(aig)
        assert balanced.depth() == 4
        assert aig.depth() == 15

    def test_balance_comparator_reduces_depth(self):
        aig = comparator(6)
        assert balance(aig).depth() <= aig.depth()

    def test_no_node_explosion(self):
        aig = array_multiplier(4)
        balanced = balance(aig)
        assert balanced.num_ands <= aig.num_ands * 1.2

    def test_simulation_equivalence_on_larger(self):
        aig = array_multiplier(5)
        balanced = balance(aig)
        sim_a = Simulator(aig, num_words=4, seed=1)
        sim_b = Simulator(balanced, num_words=4, seed=1)
        assert sim_a.output_signatures() == sim_b.output_signatures()
