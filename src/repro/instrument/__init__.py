"""Engine-wide instrumentation and resource budgeting.

Two small, dependency-free primitives shared by every layer of the
package (solver, sweep engine, proof store, trimmer, checker, CLIs,
benchmark harness):

* :class:`~repro.instrument.recorder.Recorder` — hierarchical phase
  timers, monotonic counters, gauges, and an optional JSONL event
  trace, all serialized by :meth:`~repro.instrument.recorder.Recorder.report`
  to one stable JSON schema (``repro-stats/1``, see
  ``docs/instrumentation.md``).
* :class:`~repro.instrument.budget.Budget` — cooperative wall-time /
  conflict / proof-clause limits. Components consult the budget at
  natural checkpoints and degrade to ``UNKNOWN`` verdicts instead of
  hanging; a budget never changes an answer, only whether one is given.

Both are opt-in: every instrumented API accepts ``recorder=None`` /
``budget=None`` and falls back to a shared no-op
:data:`~repro.instrument.recorder.NULL_RECORDER`, keeping the hot paths
free of instrumentation overhead when disabled.
"""

from .budget import Budget, BudgetExhausted
from .logs import JsonLogFormatter, configure_logging, get_logger
from .metrics import (
    METRICS_SCHEMA,
    Histogram,
    MetricsRegistry,
    to_prometheus_text,
    validate_metrics_report,
)
from .phases import PHASE_REGISTRY, is_registered
from .profiling import maybe_profile
from .progress import (
    PROGRESS_SCHEMA,
    ProgressTracker,
    estimate_eta_band,
    format_heartbeat,
    jsonl_sink,
    latest_heartbeat,
    read_heartbeats,
    validate_progress,
)
from .recorder import NULL_RECORDER, Recorder, STATS_SCHEMA
from .timeseries import (
    RingSeries,
    SLOTracker,
    TailSampler,
    TimeSeriesStore,
)
from .tracing import (
    TRACE_SCHEMA,
    TraceContext,
    to_chrome_trace,
    to_collapsed_stacks,
    validate_trace_report,
)

__all__ = [
    "Budget",
    "BudgetExhausted",
    "Histogram",
    "JsonLogFormatter",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "NULL_RECORDER",
    "PHASE_REGISTRY",
    "PROGRESS_SCHEMA",
    "ProgressTracker",
    "Recorder",
    "RingSeries",
    "SLOTracker",
    "STATS_SCHEMA",
    "TRACE_SCHEMA",
    "TailSampler",
    "TimeSeriesStore",
    "TraceContext",
    "configure_logging",
    "estimate_eta_band",
    "format_heartbeat",
    "get_logger",
    "is_registered",
    "jsonl_sink",
    "latest_heartbeat",
    "maybe_profile",
    "read_heartbeats",
    "to_chrome_trace",
    "to_collapsed_stacks",
    "to_prometheus_text",
    "validate_metrics_report",
    "validate_progress",
    "validate_trace_report",
]
