"""A corpus of deliberately corrupted resolution proofs.

Each entry starts from a small valid refutation and applies one
targeted mutation directly to the :class:`ProofStore` internals. The
public construction API refuses malformed proofs and the TraceCheck
parser re-derives pivots while reading, so file-level corruption cannot
express every defect class — in-memory mutation can.

Every entry records the rule id the static linter must report at error
severity; ``test_analyze_proof`` additionally asserts that the replay
checker rejects the very same store, which is the linter's soundness
contract (lint error implies replay failure).

Base proof (over variables 1, 2)::

    0: (1, 2)     axiom
    1: (-1, 2)    axiom
    2: (1, -2)    axiom
    3: (-1, -2)   axiom
    4: (-2,)      derived  [2, (1, 3)]
    5: ()         derived  [0, (1, 1), (2, 4)]
"""

from repro.cnf.clause import CNF
from repro.proof.store import ProofStore


def base_cnf():
    """The unsatisfiable 2-variable formula the base proof refutes."""
    return CNF(clauses=[(1, 2), (-1, 2), (1, -2), (-1, -2)])


def base_store():
    """A fresh, valid refutation of :func:`base_cnf`."""
    store = ProofStore()
    for clause in base_cnf().clauses:
        store.add_axiom(clause)
    store.add_derived((-2,), [2, (1, 3)])
    store.add_derived((), [0, (1, 1), (2, 4)])
    return store


def _shuffled_chain(store):
    # Rotate the antecedents of the final chain: the first resolution
    # now pairs (-2,) against pivot 1, whose phases it lacks.
    store._chains[5] = [4, (1, 1), (2, 0)]


def _out_of_range_var(store):
    store._clauses[4] = (-2, 99)


def _duplicated_literal(store):
    store._clauses[4] = (-2, -2)


def _tautology(store):
    store._clauses[4] = (-2, 2)


def _forward_ref(store):
    store._chains[4] = [2, (1, 5)]


def _foreign_axiom(store):
    store._clauses[0] = (1,)


def _pivot_missing(store):
    # Second step resolves on variable 1, absent from antecedent 4.
    store._chains[5] = [0, (1, 1), (1, 4)]


def _chain_arity(store):
    store._chains[4] = [2]


def _dangling_chain(store):
    store._chains[4] = None


def _retained_pivot(store):
    # The final resolvent keeps its last pivot variable.
    store._clauses[5] = (2,)


def _no_refutation(store):
    store._clauses[5] = (1, 2)


#: name -> (mutation, rule id the linter must flag at error severity)
CORRUPTIONS = {
    "shuffled-chain": (_shuffled_chain, "proof.pivot-phase"),
    "out-of-range-var": (_out_of_range_var, "proof.var-bounds"),
    "duplicated-literal": (_duplicated_literal, "proof.clause-form"),
    "tautology": (_tautology, "proof.tautology"),
    "forward-ref": (_forward_ref, "proof.forward-ref"),
    "foreign-axiom": (_foreign_axiom, "proof.axiom-foreign"),
    "pivot-missing": (_pivot_missing, "proof.pivot-missing"),
    "chain-arity": (_chain_arity, "proof.chain-arity"),
    "dangling-chain": (_dangling_chain, "proof.chain-arity"),
    "retained-pivot": (_retained_pivot, "proof.pivot-unresolvable"),
    "no-refutation": (_no_refutation, "proof.no-refutation"),
}


def corrupted(name):
    """Build ``(store, cnf, expected_rule)`` for one corpus entry."""
    mutate, rule = CORRUPTIONS[name]
    store = base_store()
    mutate(store)
    return store, base_cnf(), rule
