"""Tests for DRUP export and the RUP checker."""

import io

import pytest

from repro.proof import ProofError, ProofStore, check_rup_proof, write_drup
from repro.proof.drup import _Propagator


def refutation_store():
    store = ProofStore()
    c1 = store.add_axiom([1, 2])
    c2 = store.add_axiom([1, -2])
    c3 = store.add_axiom([-1, 2])
    c4 = store.add_axiom([-1, -2])
    u1 = store.add_derived([1], [c1, (2, c2)])
    u2 = store.add_derived([-1], [c3, (2, c4)])
    store.add_derived([], [u1, (1, u2)])
    return store


class TestPropagator:
    def test_unit_conflict(self):
        prop = _Propagator(2)
        prop.add_clause((1,))
        assert prop.propagate([-1])
        # State rolled back: propagation again behaves identically.
        assert prop.propagate([-1])
        assert not prop.propagate([1])

    def test_chain_propagation(self):
        prop = _Propagator(4)
        prop.add_clause((-1, 2))
        prop.add_clause((-2, 3))
        prop.add_clause((-3, 4))
        prop.add_clause((-4,))
        assert prop.propagate([1])

    def test_no_conflict(self):
        prop = _Propagator(3)
        prop.add_clause((1, 2, 3))
        assert not prop.propagate([-1, -2])

    def test_empty_clause_rejected(self):
        prop = _Propagator(1)
        with pytest.raises(ProofError):
            prop.add_clause(())

    def test_grows_variables(self):
        prop = _Propagator(0)
        prop.add_clause((5, 6))
        assert not prop.propagate([-5])


class TestRupChecker:
    def test_accepts_valid(self):
        assert check_rup_proof(refutation_store()) == 3

    def test_axiom_filtering(self):
        axioms = [[1, 2], [1, -2], [-1, 2], [-1, -2]]
        assert check_rup_proof(refutation_store(), axioms=axioms) == 3

    def test_foreign_axiom(self):
        with pytest.raises(ProofError, match="not in reference"):
            check_rup_proof(refutation_store(), axioms=[[1, 2]])

    def test_rejects_non_rup(self):
        store = ProofStore()
        store.add_axiom([1, 2])
        store._clauses.append((3,))
        store._kinds.append("derived")
        store._chains.append([0, (1, 0)])
        with pytest.raises(ProofError, match="not RUP"):
            check_rup_proof(store)


class TestWriter:
    def test_derived_clauses_only(self):
        buffer = io.StringIO()
        write_drup(refutation_store(), buffer)
        lines = buffer.getvalue().splitlines()
        assert lines == ["1 0", "-1 0", "0"]

    def test_path_output(self, tmp_path):
        path = tmp_path / "p.drup"
        write_drup(refutation_store(), str(path))
        assert path.read_text().endswith("0\n")
