"""The fleet observability plane: aggregator, exporter, dashboard.

The integration half runs two real in-process ``CecServer`` instances
on Unix sockets with progress enabled, drives jobs through one of
them, and asserts that one ``poll_once`` round produces merged
histograms, live SLO status, tail samples, a valid ``repro-obs/1``
snapshot, and a renderable ``repro-top`` frame.
"""

import io
import json

import pytest

from repro.aig.aiger import write_aag
from repro.circuits import kogge_stone_adder, ripple_carry_adder
from repro.obs import ObsAggregator, validate_obs_snapshot
from repro.obs.aggregator import ObsTarget
from repro.obs.cli import build_parser, parse_targets, write_outputs
from repro.obs.top import render_dashboard
from repro.service import CecServer, ServiceClient


def aag_text(aig):
    buffer = io.StringIO()
    write_aag(aig, buffer)
    return buffer.getvalue()


@pytest.fixture()
def shard_pair(tmp_path):
    """Two live in-process servers with progress enabled."""
    servers = []
    for index in range(2):
        server = CecServer(
            str(tmp_path / ("shard%d.sock" % index)), workers=0,
            cache_dir=str(tmp_path / ("cache%d" % index)),
            progress_interval=0.001,
        )
        server.start()
        servers.append(server)
    yield servers
    for server in servers:
        server.close()


class TestParseTargets:
    def test_bare_addresses_are_named_in_order(self):
        assert parse_targets(["a:1", "b:2"], "shard") == [
            ("shard0", "a:1"), ("shard1", "b:2"),
        ]

    def test_name_equals_address(self):
        assert parse_targets(["edge=host:9"], "shard") == [
            ("edge", "host:9"),
        ]


class TestAggregatorUnits:
    def test_needs_a_target(self):
        with pytest.raises(ValueError):
            ObsAggregator(shards=[])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            ObsAggregator(shards=[("s", "a:1"), ("s", "a:2")])

    def test_down_target_is_survived(self):
        aggregator = ObsAggregator(
            shards=[("gone", "/nonexistent/path.sock")],
        )
        assert aggregator.poll_once(now=100.0) == 0
        target = aggregator.targets[0]
        assert target.up is False
        assert target.failures == 1
        assert target.last_error is not None
        snapshot = validate_obs_snapshot(aggregator.snapshot(now=100.0))
        assert snapshot["targets"][0]["up"] is False
        # The poll-health SLO saw the failure.
        aggregator.poll_once(now=101.0)
        burn = aggregator.slos["polls"].burn_rate(101.0, 300.0)
        assert burn is not None and burn > 0

    def test_target_snapshot_shape(self):
        block = ObsTarget("s0", "a:1").snapshot()
        assert block["name"] == "s0"
        assert block["role"] == "shard"
        assert block["up"] is False
        assert block["queue_depth"] == 0

    def test_validate_rejects_malformed(self):
        aggregator = ObsAggregator(shards=[("s", "a:1")])
        good = aggregator.snapshot(now=0.0)
        for mutate in (
            lambda d: d.__setitem__("schema", "nope"),
            lambda d: d.pop("slos"),
            lambda d: d.__setitem__("targets", [{}]),
            lambda d: d["samples"].pop("kept"),
        ):
            document = json.loads(json.dumps(good))
            mutate(document)
            with pytest.raises(ValueError):
                validate_obs_snapshot(document)
        with pytest.raises(ValueError):
            validate_obs_snapshot("not a dict")


class TestAggregatorIntegration:
    def test_poll_merges_and_samples(self, shard_pair, tmp_path):
        addresses = [server.address for server in shard_pair]
        # Drive one equivalent check and one cache hit through shard 0.
        aag_a = aag_text(ripple_carry_adder(6))
        aag_b = aag_text(kogge_stone_adder(6))
        with ServiceClient(addresses[0]) as client:
            for _ in range(2):
                submitted = client.submit(aag_a, aag_b)
                client.result(submitted["job"], wait=True)
        aggregator = ObsAggregator(
            shards=[("s0", addresses[0]), ("s1", addresses[1])],
            slow_sample_seconds=0.0,  # every terminal job is "slow"
        )
        assert aggregator.poll_once() == 2
        assert all(target.up for target in aggregator.targets)

        # Merged exposition: shard histograms + obs gauges + build info.
        text = aggregator.prometheus_text()
        assert 'repro_build_info{component="repro-obs"' in text
        assert "repro_service_job_seconds_bucket" in text
        assert "repro_obs_targets_up 2" in text
        assert "repro_obs_polls_total 1" in text

        # The finished jobs were tail-sampled (slow threshold 0).
        assert aggregator.sampler.kept >= 1
        sample = aggregator.sampler.samples()[0]
        assert sample["record"]["target"] == "s0"
        assert sample["kept_because"] == "slow"

        # Availability SLO is fed with the shard's cumulative counters.
        series = aggregator.series.series("s0/service/jobs-completed")
        assert series is not None and series.latest()[1] >= 1.0

        snapshot = validate_obs_snapshot(aggregator.snapshot())
        assert snapshot["polls"] == 1
        assert {t["name"] for t in snapshot["targets"]} == {"s0", "s1"}
        assert snapshot["samples"]["kept"] >= 1
        assert "availability" in snapshot["slos"]

    def test_second_poll_computes_rates(self, shard_pair):
        aggregator = ObsAggregator(
            shards=[("s%d" % i, s.address)
                    for i, s in enumerate(shard_pair)],
        )
        aggregator.poll_once(now=1000.0)
        aggregator.poll_once(now=1002.0)
        burn = aggregator.slos["polls"].burn_rate(1002.0, 300.0)
        assert burn == 0.0  # every scrape answered

    def test_dashboard_renders_live_fleet(self, shard_pair):
        aggregator = ObsAggregator(
            shards=[("s%d" % i, s.address)
                    for i, s in enumerate(shard_pair)],
        )
        aggregator.poll_once()
        lines = render_dashboard(aggregator, width=100)
        frame = "\n".join(lines)
        assert "2/2 targets up" in frame
        assert "slo availability" in frame
        assert "shard  s0" in frame
        assert "jobs in flight:" in frame
        assert "tail samples:" in frame
        assert all(len(line) <= 100 for line in lines)

    def test_write_outputs(self, shard_pair, tmp_path):
        aggregator = ObsAggregator(
            shards=[("s0", shard_pair[0].address)],
        )
        aggregator.poll_once()
        args = build_parser().parse_args([
            "--shard", shard_pair[0].address,
            "--snapshot-json", str(tmp_path / "obs.json"),
            "--prometheus-out", str(tmp_path / "obs.prom"),
        ])
        write_outputs(aggregator, args)
        with open(tmp_path / "obs.json") as handle:
            snapshot = json.load(handle)
        validate_obs_snapshot(snapshot)
        with open(tmp_path / "obs.prom") as handle:
            assert "repro_build_info" in handle.read()


class TestDashboardUnits:
    def test_in_flight_jobs_render_heartbeats(self):
        aggregator = ObsAggregator(shards=[("s0", "a:1")])
        target = aggregator.targets[0]
        target.up = True
        target.last_queue_depth = 1
        target.last_jobs = [
            {
                "job": "j000001", "state": "running",
                "elapsed_seconds": 1.0,
                "progress": {
                    "schema": "repro-progress/1", "seq": 4,
                    "phase": "solve", "elapsed_seconds": 0.9,
                    "budget_fraction": 0.5,
                    "counters": {"conflicts": 10, "decisions": 20,
                                 "restarts": 0},
                    "rates": {"conflicts": 11.0},
                },
            },
            {"job": "j000002", "state": "queued", "elapsed_seconds": 0.1,
             "progress": None},
        ]
        lines = render_dashboard(aggregator, now=0.0)
        frame = "\n".join(lines)
        assert "jobs in flight: 2" in frame
        assert "j000001 @s0" in frame
        assert "conflicts=10" in frame
        assert "j000002 @s0 queued" in frame

    def test_overflow_is_elided(self):
        aggregator = ObsAggregator(shards=[("s0", "a:1")])
        aggregator.targets[0].last_jobs = [
            {"job": "j%06d" % i, "state": "running",
             "elapsed_seconds": 0.0}
            for i in range(20)
        ]
        lines = render_dashboard(aggregator, now=0.0, max_jobs=3)
        assert any("and 17 more" in line for line in lines)
