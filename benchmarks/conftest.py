"""Benchmark-harness infrastructure.

Each ``bench_*.py`` module regenerates one table or figure of the
evaluation (see DESIGN.md §3). Modules compute their rows, register them
with :func:`report_table`, and the tables are printed in the terminal
summary at the end of the run — so ``pytest benchmarks/ --benchmark-only``
shows both pytest-benchmark's timing panel and the paper-style tables.

Engine results are memoized per session (`engine_cache`) so the
comparison table reuses the runs already performed by the per-engine
tables instead of re-solving every miter.
"""

import pytest

_TABLES = {}


def report_table(title, header, rows, notes=()):
    """Register (or replace) a formatted table for the end-of-run summary.

    Re-registering under the same title replaces the previous rows, so
    benches can update their table incrementally after every case and the
    summary still prints each table once.
    """
    _TABLES[title] = (header, [list(map(str, row)) for row in rows],
                      list(notes))


def format_table(header, rows):
    """Plain-text aligned table."""
    widths = [len(h) for h in header]
    for row in rows:
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    def line(cells):
        return "  ".join(cell.ljust(widths[k]) for k, cell in enumerate(cells))
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([line(header), sep] + [line(r) for r in rows])


def pytest_terminal_summary(terminalreporter):
    if not _TABLES:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 78)
    write("EVALUATION TABLES (paper reproduction)")
    write("=" * 78)
    for title, (header, rows, notes) in _TABLES.items():
        write("")
        write(title)
        write("")
        for text_line in format_table(header, rows).splitlines():
            write(text_line)
        for note in notes:
            write("  note: %s" % note)
    write("")


@pytest.fixture(scope="session")
def engine_cache():
    """Session-wide memo of engine runs keyed by (engine, pair name)."""
    return {}


def run_sweep(cache, pair, **options):
    """Memoized proof-producing CEC run on a benchmark pair."""
    from repro.core.cec import check_equivalence
    from repro.core.fraig import SweepOptions

    key = ("sweep", pair.name, tuple(sorted(options.items())))
    if key not in cache:
        aig_a, aig_b = pair.build()
        cache[key] = check_equivalence(aig_a, aig_b, SweepOptions(**options))
    return cache[key]


def run_monolithic(cache, pair, **options):
    """Memoized monolithic-SAT run on a benchmark pair."""
    from repro.baselines.monolithic import monolithic_check

    key = ("mono", pair.name, tuple(sorted(options.items())))
    if key not in cache:
        aig_a, aig_b = pair.build()
        cache[key] = monolithic_check(aig_a, aig_b, **options)
    return cache[key]


def stats_phase_seconds(stats, name):
    """Seconds charged to phase *name* in a ``repro-stats/1`` report.

    The engines attach their instrumentation report to the result
    (``CecResult.stats``); benches consume it through this helper so the
    schema is validated once per lookup and missing phases read as 0.0.
    """
    from repro.instrument.recorder import validate_report

    validate_report(stats)
    cell = stats["phases"].get(name)
    return cell["seconds"] if cell else 0.0


def stats_gauge(stats, name, default=None):
    """Gauge *name* from a ``repro-stats/1`` report (validated)."""
    from repro.instrument.recorder import validate_report

    validate_report(stats)
    return stats["gauges"].get(name, default)


def geometric_mean(values):
    """Geometric mean of positive values (1.0 for empty input)."""
    cleaned = [v for v in values if v > 0]
    if not cleaned:
        return 1.0
    product = 1.0
    for value in cleaned:
        product *= value
    return product ** (1.0 / len(cleaned))
