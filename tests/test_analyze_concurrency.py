"""Tests for the concurrency-hazard AST rules.

Each known-bad fixture is the smallest snippet that trips exactly one
rule; the paired clean fixture differs only in the guarded/owned
detail, pinning down what the rule actually keys on.
"""

from repro.analyze.concurrency import lint_package, lint_source


def hits(source, rule_id, filename="x.py"):
    return [
        f for f in lint_source(source, filename) if f.rule_id == rule_id
    ]


class TestUnguardedMutation:
    RULE = "concurrency.unguarded-mutation"

    def test_rebind_outside_lock_fires_once(self):
        source = (
            "import threading\n"
            "\n"
            "class Table:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._state = {}\n"
            "\n"
            "    def reset(self):\n"
            "        self._state = {}\n"
        )
        findings = hits(source, self.RULE)
        assert len(findings) == 1
        assert findings[0].line == 9
        assert "_state" in findings[0].message

    def test_rebind_under_lock_is_clean(self):
        source = (
            "import threading\n"
            "\n"
            "class Table:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "\n"
            "    def reset(self):\n"
            "        with self._lock:\n"
            "            self._state = {}\n"
        )
        assert hits(source, self.RULE) == []

    def test_constructor_is_exempt(self):
        source = (
            "import threading\n"
            "\n"
            "class Table:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._state = {}\n"
        )
        assert hits(source, self.RULE) == []

    def test_locked_suffix_documents_caller_held_lock(self):
        source = (
            "import threading\n"
            "\n"
            "class Table:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "\n"
            "    def _reset_locked(self):\n"
            "        self._state = {}\n"
        )
        assert hits(source, self.RULE) == []

    def test_nested_def_leaves_lock_scope(self):
        # The closure runs later, when the with-block's lock is long
        # released: its writes are unguarded even though the def sits
        # lexically inside `with self._lock`.
        source = (
            "import threading\n"
            "\n"
            "class Table:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "\n"
            "    def reset(self):\n"
            "        with self._lock:\n"
            "            def later():\n"
            "                self._state = {}\n"
            "            return later\n"
        )
        assert len(hits(source, self.RULE)) == 1

    def test_classes_without_locks_are_ignored(self):
        source = (
            "class Plain:\n"
            "    def reset(self):\n"
            "        self._state = {}\n"
        )
        assert hits(source, self.RULE) == []


class TestBlockingUnderLock:
    RULE = "concurrency.blocking-under-lock"

    def test_zero_arg_get_under_lock_fires_once(self):
        source = (
            "def drain(lock, queue):\n"
            "    with lock:\n"
            "        return queue.get()\n"
        )
        findings = hits(source, self.RULE)
        assert len(findings) == 1
        assert "get()" in findings[0].message

    def test_sleep_under_lock_fires_once(self):
        source = (
            "import time\n"
            "\n"
            "def hold(lock):\n"
            "    with lock:\n"
            "        time.sleep(1)\n"
        )
        assert len(hits(source, self.RULE)) == 1

    def test_get_with_timeout_is_clean(self):
        source = (
            "def drain(lock, queue):\n"
            "    with lock:\n"
            "        return queue.get(timeout=1)\n"
        )
        assert hits(source, self.RULE) == []

    def test_blocking_call_outside_lock_is_clean(self):
        source = (
            "def drain(lock, queue):\n"
            "    item = queue.get()\n"
            "    with lock:\n"
            "        return item\n"
        )
        assert hits(source, self.RULE) == []

    def test_nested_def_under_lock_is_clean(self):
        # The nested function body runs after the lock is released.
        source = (
            "def make(lock, queue):\n"
            "    with lock:\n"
            "        def worker():\n"
            "            return queue.get()\n"
            "        return worker\n"
        )
        assert hits(source, self.RULE) == []


class TestArenaLifecycle:
    RULE = "concurrency.arena-lifecycle"

    def test_leaked_attach_fires_once(self):
        source = (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "\n"
            "def peek(name):\n"
            "    shm = SharedMemory(name=name)\n"
            "    size = shm.size\n"
        )
        findings = hits(source, self.RULE)
        assert len(findings) == 1
        assert "shm" in findings[0].message

    def test_close_in_finally_is_clean(self):
        source = (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "\n"
            "def peek(name):\n"
            "    shm = SharedMemory(name=name)\n"
            "    try:\n"
            "        size = shm.size\n"
            "    finally:\n"
            "        shm.close()\n"
            "    return size\n"
        )
        assert hits(source, self.RULE) == []

    def test_returned_handle_transfers_ownership(self):
        source = (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "\n"
            "def attach(name):\n"
            "    shm = SharedMemory(name=name)\n"
            "    return shm\n"
        )
        assert hits(source, self.RULE) == []

    def test_handle_stored_on_object_transfers_ownership(self):
        source = (
            "from multiprocessing.shared_memory import SharedMemory\n"
            "\n"
            "def attach(owner, name):\n"
            "    shm = SharedMemory(name=name)\n"
            "    owner.arena = shm\n"
        )
        assert hits(source, self.RULE) == []


class TestPoolShutdown:
    RULE = "concurrency.pool-shutdown"

    def test_local_pool_without_shutdown_fires_once(self):
        source = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "\n"
            "def start(work):\n"
            "    pool = ProcessPoolExecutor(2)\n"
            "    pool.submit(work)\n"
        )
        findings = hits(source, self.RULE)
        assert len(findings) == 1
        assert "ProcessPoolExecutor" in findings[0].message

    def test_with_block_is_clean(self):
        source = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "\n"
            "def start(work):\n"
            "    with ProcessPoolExecutor(2) as pool:\n"
            "        pool.submit(work)\n"
        )
        assert hits(source, self.RULE) == []

    def test_explicit_shutdown_is_clean(self):
        source = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "\n"
            "def start(work):\n"
            "    pool = ProcessPoolExecutor(2)\n"
            "    pool.submit(work)\n"
            "    pool.shutdown()\n"
        )
        assert hits(source, self.RULE) == []

    def test_class_attr_with_close_method_is_clean(self):
        source = (
            "from multiprocessing import Pool\n"
            "\n"
            "class Runner:\n"
            "    def __init__(self):\n"
            "        self._pool = Pool(2)\n"
            "\n"
            "    def close(self):\n"
            "        self._pool.terminate()\n"
        )
        assert hits(source, self.RULE) == []

    def test_atexit_hook_is_clean(self):
        source = (
            "import atexit\n"
            "from multiprocessing import Pool\n"
            "\n"
            "pool = Pool(2)\n"
            "atexit.register(pool.terminate)\n"
        )
        assert hits(source, self.RULE) == []


class TestForkAfterThread:
    RULE = "concurrency.fork-after-thread"

    def test_threaded_module_with_fork_pool_fires_once(self):
        source = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "from threading import Thread\n"
            "\n"
            "def serve(handler):\n"
            "    Thread(target=handler).start()\n"
            "    with ProcessPoolExecutor(2) as pool:\n"
            "        pool.submit(handler)\n"
        )
        assert len(hits(source, self.RULE)) == 1

    def test_spawn_context_is_clean(self):
        source = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "from multiprocessing import get_context\n"
            "from threading import Thread\n"
            "\n"
            "def serve(handler):\n"
            "    Thread(target=handler).start()\n"
            "    ctx = get_context('spawn')\n"
            "    with ProcessPoolExecutor(2, mp_context=ctx) as pool:\n"
            "        pool.submit(handler)\n"
        )
        assert hits(source, self.RULE) == []

    def test_threadless_module_is_clean(self):
        source = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "\n"
            "def run(work):\n"
            "    with ProcessPoolExecutor(2) as pool:\n"
            "        pool.submit(work)\n"
        )
        assert hits(source, self.RULE) == []

    def test_threading_mixin_counts_as_threads(self):
        source = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "from socketserver import TCPServer, ThreadingMixIn\n"
            "\n"
            "class Server(ThreadingMixIn, TCPServer):\n"
            "    pass\n"
            "\n"
            "def run(work):\n"
            "    with ProcessPoolExecutor(2) as pool:\n"
            "        pool.submit(work)\n"
        )
        assert len(hits(source, self.RULE)) == 1


class TestPragmas:
    def test_rule_scoped_pragma_waives(self):
        source = (
            "import threading\n"
            "\n"
            "class Table:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "\n"
            "    def reset(self):\n"
            "        self._state = {}"
            "  # repro-lint: ignore[concurrency.unguarded-mutation]\n"
        )
        assert lint_source(source, "x.py") == []

    def test_bare_pragma_waives_all_rules_on_line(self):
        source = (
            "def drain(lock, queue):\n"
            "    with lock:\n"
            "        return queue.get()  # repro-lint: ignore\n"
        )
        assert lint_source(source, "x.py") == []

    def test_pragma_on_other_line_does_not_waive(self):
        source = (
            "# repro-lint: ignore[concurrency.blocking-under-lock]\n"
            "def drain(lock, queue):\n"
            "    with lock:\n"
            "        return queue.get()\n"
        )
        assert len(lint_source(source, "x.py")) == 1


class TestSyntaxAndGate:
    def test_syntax_error_reported(self):
        findings = lint_source("def broken(:\n", "bad.py")
        assert [f.rule_id for f in findings] == ["code.syntax"]

    def test_repro_package_is_clean(self):
        findings = lint_package()
        assert findings == [], [f.render() for f in findings]
