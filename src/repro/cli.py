"""Command-line interface: ``repro-cec``.

Check two AIGER files for combinational equivalence and optionally emit
the resolution proof::

    repro-cec a.aag b.aag --proof out.drup --engine sweep
    repro-cec a.aag b.aag --engine monolithic
    repro-cec a.aag b.aag --engine bdd
"""

import argparse
import sys

from . import __version__
from .aig.aiger import read_auto
from .baselines.bdd_cec import bdd_check
from .baselines.monolithic import monolithic_check
from .core.cec import check_equivalence
from .core.certify import certify
from .core.fraig import SweepOptions
from .exit_codes import (
    EXIT_INVALID_INPUT,
    EXIT_NEGATIVE,
    EXIT_OK,
    EXIT_UNDECIDED,
)
from .instrument import Budget, Recorder, maybe_profile
from .proof.drup import write_drup
from .proof.stats import proof_stats
from .proof.trim import trim


def build_parser():
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-cec",
        description="Combinational equivalence checking with resolution proofs",
    )
    parser.add_argument(
        "--version", action="version", version="%(prog)s " + __version__,
    )
    parser.add_argument("file_a", help="first circuit (AIGER .aag/.aig)")
    parser.add_argument("file_b", help="second circuit (AIGER .aag/.aig)")
    parser.add_argument(
        "--server",
        metavar="ADDR",
        help="route the check through a running repro-serve instance "
        "(host:port or Unix socket path) instead of checking locally; "
        "the returned certificate still honours --proof and --certify",
    )
    parser.add_argument(
        "--engine",
        choices=("sweep", "monolithic", "bdd", "bddsweep"),
        default="sweep",
        help="checking engine (default: proof-producing SAT sweeping)",
    )
    parser.add_argument(
        "--proof",
        metavar="FILE",
        help="write the (trimmed) resolution proof in DRUP format",
    )
    parser.add_argument(
        "--no-trim",
        action="store_true",
        help="emit the untrimmed proof",
    )
    parser.add_argument(
        "--certify",
        action="store_true",
        help="replay the proof with the independent checker before exiting",
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="pre-flight the input netlists with the static linter "
        "(exit 3 on error findings) and, with --certify, lint the "
        "proof before replaying it (see repro-lint)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="with --certify, replay the proof across N worker "
        "processes (0 = one per CPU; default: sequential). Requests "
        "are clamped to the CPUs available, and single-CPU hosts "
        "replay sequentially rather than fork uselessly",
    )
    parser.add_argument(
        "--sim-words",
        type=int,
        default=4,
        help="initial simulation words of 64 patterns (sweep engine)",
    )
    parser.add_argument(
        "--seed", type=int, default=2007, help="simulation seed"
    )
    parser.add_argument(
        "--per-output",
        action="store_true",
        help="report a verdict for every output pair individually",
    )
    parser.add_argument(
        "--match-names",
        action="store_true",
        help="match the circuits' interfaces by port names instead of "
        "position (sweep engine only; requires fully named ports)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress statistics output"
    )
    parser.add_argument(
        "--stats-json",
        metavar="PATH",
        help="write the run's repro-stats/1 JSON report (phase timings, "
        "counters, proof sizes, budget status) to PATH",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        help="append JSONL instrumentation events to PATH",
    )
    parser.add_argument(
        "--chrome-trace",
        metavar="PATH",
        help="record every phase as a span and write Chrome "
        "trace-event JSON to PATH (loadable in Perfetto / "
        "chrome://tracing); with --server, the stitched client/"
        "server/worker trace",
    )
    parser.add_argument(
        "--profile",
        metavar="PATH",
        help="profile the local run with cProfile and dump pstats data "
        "to PATH (see docs/instrumentation.md)",
    )
    parser.add_argument(
        "--time-limit",
        type=float,
        metavar="SECONDS",
        help="wall-clock budget; an undecided check exits 2 instead of "
        "running on (sweep/monolithic engines)",
    )
    parser.add_argument(
        "--conflict-limit",
        type=int,
        metavar="N",
        help="total SAT-conflict budget across the whole run "
        "(sweep/monolithic engines)",
    )
    return parser


def main(argv=None):
    """CLI entry point. Returns the process exit code.

    Exit codes: 0 = equivalent, 1 = not equivalent, 2 = undecided
    (budget exhausted or engine gave up), 3 = invalid input (missing or
    malformed files, lint-rejected netlists, bad flag combinations).
    """
    args = build_parser().parse_args(argv)
    if args.server:
        return _run_remote(args)
    try:
        aig_a = read_auto(args.file_a)
        aig_b = read_auto(args.file_b)
    except (OSError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return EXIT_INVALID_INPUT
    recorder = Recorder(trace_path=args.trace)
    recorder.meta.update({
        "tool": "repro-cec",
        "engine": args.engine,
        "file_a": args.file_a,
        "file_b": args.file_b,
    })
    if args.chrome_trace:
        recorder.start_trace()
    budget = None
    if args.time_limit is not None or args.conflict_limit is not None:
        budget = Budget(
            time_limit=args.time_limit, conflict_limit=args.conflict_limit
        )
    try:
        with maybe_profile(args.profile):
            code = _dispatch(aig_a, aig_b, args, recorder, budget)
        recorder.meta["exit_code"] = code
    finally:
        if args.stats_json:
            recorder.write_json(args.stats_json, budget=budget)
        if args.chrome_trace:
            _write_chrome_trace(args.chrome_trace, recorder.trace_report())
        recorder.close()
    return code


def _write_chrome_trace(path, trace_document):
    """Export *trace_document* (repro-trace/1) as Chrome trace JSON."""
    import json

    from .instrument import to_chrome_trace

    if trace_document is None:
        return
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(trace_document), handle, sort_keys=True)
        handle.write("\n")


def _to_aag_text(aig):
    """Serialize *aig* as ASCII AIGER text for the service wire."""
    import io

    from .aig.aiger import write_aag

    buffer = io.StringIO()
    write_aag(aig, buffer)
    return buffer.getvalue()


def _run_remote(args):
    """Route the check through a running repro-serve (``--server``)."""
    from .core.serialize import result_from_dict
    from .service.client import ServiceClient, ServiceError

    unsupported = []
    if args.engine != "sweep":
        unsupported.append("--engine %s" % args.engine)
    if args.per_output:
        unsupported.append("--per-output")
    if args.match_names:
        unsupported.append("--match-names")
    if unsupported:
        print(
            "error: %s not supported with --server"
            % ", ".join(unsupported),
            file=sys.stderr,
        )
        return EXIT_INVALID_INPUT
    # Parse locally via read_auto (which handles binary .aig too) and
    # re-emit canonical ASCII AIGER for the wire, so --server accepts
    # exactly the same inputs as a local run.
    try:
        aag_a = _to_aag_text(read_auto(args.file_a))
        aag_b = _to_aag_text(read_auto(args.file_b))
    except (OSError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return EXIT_INVALID_INPUT
    try:
        client = ServiceClient(args.server)
    except ValueError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return EXIT_INVALID_INPUT
    trace_recorder = Recorder() if args.chrome_trace else None
    try:
        with client:
            if trace_recorder is not None:
                result, response = client.check(
                    aag_a, aag_b, recorder=trace_recorder,
                    options={"sim_words": args.sim_words,
                             "seed": args.seed, "proof": True},
                    time_limit=args.time_limit,
                    conflict_limit=args.conflict_limit,
                    lint=args.lint,
                )
            else:
                submitted = client.submit(
                    aag_a, aag_b,
                    options={"sim_words": args.sim_words,
                             "seed": args.seed, "proof": True},
                    time_limit=args.time_limit,
                    conflict_limit=args.conflict_limit,
                    lint=args.lint,
                )
                response = client.result(submitted["job"], wait=True)
                result = result_from_dict(response["result"])
    except ServiceError as exc:
        print("error: server: %s" % exc, file=sys.stderr)
        return (EXIT_INVALID_INPUT if exc.code == "bad-input"
                else EXIT_UNDECIDED)
    except OSError as exc:
        print(
            "error: cannot reach server %s: %s" % (args.server, exc),
            file=sys.stderr,
        )
        return EXIT_INVALID_INPUT
    if args.chrome_trace:
        _write_chrome_trace(args.chrome_trace, response.get("trace"))
    if not args.quiet and response.get("cached"):
        print("c served from proof cache (job %s)" % response.get("job"))
    if args.certify and result.equivalent:
        certify(result, jobs=args.jobs, lint=args.lint)
        if not args.quiet:
            print("certified: proof replayed successfully")
    if args.stats_json:
        import json

        stats = response.get("worker_stats") or response.get("job_stats")
        with open(args.stats_json, "w") as handle:
            json.dump(stats, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return _report(
        result.equivalent, result.counterexample, result.proof,
        result.cnf, args,
    )


def _dispatch(aig_a, aig_b, args, recorder, budget):
    """Run the selected engine and report; returns the exit code."""
    if args.lint:
        code = _preflight_lint(aig_a, aig_b, args, recorder)
        if code is not None:
            return code
    if args.engine == "bdd":
        return _run_bdd(aig_a, aig_b, args)
    if args.engine == "bddsweep":
        return _run_bdd_sweep(aig_a, aig_b, args)
    if args.engine == "monolithic":
        result = monolithic_check(
            aig_a, aig_b, proof=True, recorder=recorder, budget=budget
        )
        return _report(
            result.equivalent, result.counterexample, result.proof,
            result.cnf, args, recorder=recorder, budget=budget,
        )
    options = SweepOptions(sim_words=args.sim_words, seed=args.seed)
    if args.match_names:
        from .aig.miter import match_interfaces_by_name

        try:
            aig_b = match_interfaces_by_name(aig_a, aig_b)
        except ValueError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return EXIT_INVALID_INPUT
    if args.per_output:
        return _run_per_output(aig_a, aig_b, options, recorder, budget)
    result = check_equivalence(
        aig_a, aig_b, options, recorder=recorder, budget=budget
    )
    if args.certify and result.equivalent:
        certify(result, jobs=args.jobs, lint=args.lint)
        if not args.quiet:
            print("certified: proof replayed successfully")
    return _report(
        result.equivalent, result.counterexample, result.proof,
        result.cnf, args, recorder=recorder, budget=budget,
    )


def _preflight_lint(aig_a, aig_b, args, recorder):
    """Lint both netlists; exit 3 (invalid input) on errors, else None."""
    from .analyze.aig_lint import lint_aig

    with recorder.phase("lint/aig"):
        findings = lint_aig(aig_a, name=args.file_a) \
            + lint_aig(aig_b, name=args.file_b)
    errors = [f for f in findings if f.severity == "error"]
    for finding in errors:
        print("lint: %s" % finding.render(), file=sys.stderr)
    if errors:
        print(
            "error: input netlists failed lint (%d errors)" % len(errors),
            file=sys.stderr,
        )
        return EXIT_INVALID_INPUT
    if not args.quiet:
        print("c lint clean: both netlists well-formed")
    return None


def _run_bdd_sweep(aig_a, aig_b, args):
    from .baselines.bdd_sweep import bdd_sweep_check

    result = bdd_sweep_check(aig_a, aig_b)
    if result.equivalent is None:
        print("UNDECIDED (BDD node budget exceeded)")
        return EXIT_UNDECIDED
    if result.equivalent:
        if not args.quiet:
            print(
                "c %d merged nodes, %d BDD nodes"
                % (result.merged_nodes, result.bdd_nodes)
            )
        print("EQUIVALENT (no proof artifact from the BDD-sweep engine)")
        return EXIT_OK
    print("NOT EQUIVALENT")
    print(
        "counterexample: %s" % "".join(str(b) for b in result.counterexample)
    )
    return EXIT_NEGATIVE


def _run_per_output(aig_a, aig_b, options, recorder=None, budget=None):
    from .core.outputs import check_outputs

    report = check_outputs(
        aig_a, aig_b, options, recorder=recorder, budget=budget
    )
    for verdict in report.verdicts:
        label = verdict.name or ("output %d" % verdict.index)
        if verdict.equivalent is True:
            print("  %-16s EQUIVALENT" % label)
        elif verdict.equivalent is False:
            print(
                "  %-16s DIFFERS (cex %s)"
                % (
                    label,
                    "".join(str(b) for b in verdict.counterexample),
                )
            )
        else:
            print("  %-16s UNDECIDED" % label)
    if report.equivalent:
        print("EQUIVALENT")
        return EXIT_OK
    failing = report.failing()
    if not failing:
        print("UNDECIDED (some outputs unresolved under the budget)")
        return EXIT_UNDECIDED
    print("NOT EQUIVALENT (%d outputs differ)" % len(failing))
    return EXIT_NEGATIVE


def _run_bdd(aig_a, aig_b, args):
    result = bdd_check(aig_a, aig_b)
    if result.equivalent is None:
        print("UNDECIDED (BDD node budget exceeded)")
        return EXIT_UNDECIDED
    if result.equivalent:
        print("EQUIVALENT (no proof artifact from the BDD engine)")
        return EXIT_OK
    print("NOT EQUIVALENT")
    print("counterexample: %s" % "".join(str(b) for b in result.counterexample))
    return EXIT_NEGATIVE


def _report(equivalent, counterexample, proof, cnf, args, recorder=None,
            budget=None):
    if equivalent is None:
        reason = budget.exhausted_reason() if budget is not None else None
        if reason is not None:
            print("UNDECIDED (budget exhausted: %s)" % reason)
        else:
            print("UNDECIDED")
        return EXIT_UNDECIDED
    if not equivalent:
        print("NOT EQUIVALENT")
        print(
            "counterexample: %s" % "".join(str(b) for b in counterexample)
        )
        return EXIT_NEGATIVE
    print("EQUIVALENT")
    if proof is not None and not args.quiet:
        stats = proof_stats(proof)
        print(
            "proof: %d clauses (%d axioms, %d derived), %d resolutions"
            % (
                stats.num_clauses,
                stats.num_axioms,
                stats.num_derived,
                stats.num_resolutions,
            )
        )
    if args.proof and proof is not None:
        to_write = proof
        if not args.no_trim:
            to_write, _ = trim(proof, recorder=recorder)
        write_drup(to_write, args.proof)
        if not args.quiet:
            print("proof written to %s" % args.proof)
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
