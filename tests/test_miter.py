"""Tests for miter construction."""

import itertools

import pytest

from repro.aig import build_miter, lit_not
from repro.circuits import (
    carry_lookahead_adder,
    comparator,
    comparator_subtract,
    ripple_carry_adder,
)


class TestBuildMiter:
    def test_interface_checks(self):
        with pytest.raises(ValueError, match="input counts"):
            build_miter(ripple_carry_adder(2), ripple_carry_adder(3))

    def test_output_count_check(self):
        a = ripple_carry_adder(2)
        b = ripple_carry_adder(2).copy()
        b.add_output(b.outputs[0])
        with pytest.raises(ValueError, match="output counts"):
            build_miter(a, b)

    def test_single_output(self):
        miter = build_miter(ripple_carry_adder(2), carry_lookahead_adder(2))
        assert miter.aig.num_outputs == 1

    def test_output_pairs_count(self):
        miter = build_miter(comparator(3), comparator_subtract(3))
        assert len(miter.output_pairs) == 3
        assert len(miter.xor_lits) == 3

    def test_miter_zero_on_equivalent(self):
        miter = build_miter(ripple_carry_adder(3), carry_lookahead_adder(3))
        for bits in itertools.product([0, 1], repeat=6):
            assert miter.aig.evaluate(list(bits)) == [0]

    def test_miter_fires_on_difference(self):
        a = ripple_carry_adder(3)
        b = ripple_carry_adder(3).copy()
        b.set_output(1, lit_not(b.outputs[1]))
        miter = build_miter(a, b)
        for bits in itertools.product([0, 1], repeat=6):
            assert miter.aig.evaluate(list(bits)) == [1]

    def test_miter_partial_difference(self):
        a = comparator(2)
        b = comparator_subtract(2).copy()
        b.set_output(0, lit_not(b.outputs[0]))
        miter = build_miter(a, b)
        fired = [
            miter.aig.evaluate(list(bits))[0]
            for bits in itertools.product([0, 1], repeat=4)
        ]
        assert all(fired)  # lt flipped everywhere -> always differs

    def test_structural_sharing_between_copies(self):
        a = ripple_carry_adder(4)
        miter = build_miter(a, a.copy())
        # Identical circuits share all logic; only XOR/OR glue is added,
        # and it folds to constants, so the miter has no more nodes than
        # one copy.
        assert miter.aig.num_ands <= a.num_ands

    def test_maps_cover_all_vars(self):
        a = ripple_carry_adder(2)
        b = carry_lookahead_adder(2)
        miter = build_miter(a, b)
        assert len(miter.map_a) == a.num_vars
        assert len(miter.map_b) == b.num_vars
        assert all(entry is not None for entry in miter.map_a)
        assert all(entry is not None for entry in miter.map_b)

    def test_input_names_carried(self):
        miter = build_miter(ripple_carry_adder(2), carry_lookahead_adder(2))
        assert miter.aig.input_names[0] == "a0"
