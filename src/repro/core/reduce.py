"""Fraig-based AIG reduction.

The classical *consumer* of SAT sweeping: merge all functionally
equivalent internal nodes of one circuit and rebuild it, yielding a
smaller functionally identical AIG. (The equivalence-checking flow is the
same engine run on a miter; here it runs on a single network.)

Optionally the reduction is self-certifying: with ``proof=True`` every
merge's equivalence clauses carry resolution derivations over the
circuit's own Tseitin encoding, and :func:`certified_reduce` re-checks
them before returning.
"""

from ..aig.aig import AIG
from ..aig.literal import lit_not_cond, lit_sign, lit_var
from ..proof.checker import check_proof
from .fraig import SweepEngine, SweepOptions


class ReduceResult:
    """Outcome of :func:`fraig_reduce`.

    Attributes:
        aig: the reduced circuit.
        engine: the sweep engine (stats, proof store when enabled).
        nodes_before: AND count of the input.
        nodes_after: AND count of the result.
    """

    def __init__(self, aig, engine, nodes_before):
        self.aig = aig
        self.engine = engine
        self.nodes_before = nodes_before
        self.nodes_after = aig.num_ands

    @property
    def reduction(self):
        """Fraction of AND nodes removed (0.0 when nothing merged)."""
        if not self.nodes_before:
            return 0.0
        return 1.0 - self.nodes_after / float(self.nodes_before)

    def __repr__(self):
        return "ReduceResult(%d -> %d ands)" % (
            self.nodes_before,
            self.nodes_after,
        )


def fraig_reduce(aig, options=None):
    """Merge functionally equivalent nodes of *aig* and rebuild it.

    Args:
        aig: the circuit to reduce.
        options: :class:`~repro.core.fraig.SweepOptions`; defaults to a
            proof-free configuration (pass ``SweepOptions(proof=True)``
            for a certifiable reduction).

    Returns:
        A :class:`ReduceResult` whose ``aig`` is functionally identical
        to the input (same inputs/outputs, usually fewer AND nodes).
    """
    options = options or SweepOptions(proof=False)
    engine = SweepEngine(aig, options)
    engine.sweep()
    reduced = AIG(aig.name)
    lit_map = [None] * aig.num_vars
    lit_map[0] = 0
    for var, name in zip(aig.inputs, aig.input_names):
        lit_map[var] = reduced.add_input(name)

    def mapped(lit):
        return lit_not_cond(lit_map[lit >> 1], lit & 1)

    for var in aig.and_vars():
        rep = engine.rep_lit(2 * var)
        if lit_var(rep) != var:
            # Merged away: reuse the representative's construction.
            lit_map[var] = lit_not_cond(
                lit_map[lit_var(rep)], lit_sign(rep)
            )
            continue
        f0, f1 = aig.fanins(var)
        lit_map[var] = reduced.add_and(mapped(f0), mapped(f1))
    for lit, name in zip(aig.outputs, aig.output_names):
        reduced.add_output(mapped(lit), name)
    compacted, _ = reduced.rebuild()
    return ReduceResult(compacted, engine, aig.num_ands)


def certified_reduce(aig, options=None):
    """:func:`fraig_reduce` with mandatory proof logging and re-checking.

    Every equivalence used by the reduction is re-verified by the
    independent resolution checker against the circuit's Tseitin clauses
    before the result is returned.

    Returns:
        ``(ReduceResult, CheckResult)``.
    """
    options = options or SweepOptions()
    if not options.proof:
        raise ValueError("certified_reduce requires proof logging")
    result = fraig_reduce(aig, options)
    check = check_proof(
        result.engine.proof,
        axioms=result.engine.enc.cnf.clauses,
        require_empty=False,
    )
    return result, check
