"""Observability through the service: traces, metrics, structured logs.

The acceptance path of the tracing subsystem: one submitted job must
yield ONE stitched trace — client request span, server queue-wait and
cache spans, worker solve phases — under a single trace id, in both
in-process (``--workers 0``) and multiprocess worker modes.
"""

import io
import json
import urllib.request

import pytest

from repro.aig.aiger import write_aag
from repro.circuits import kogge_stone_adder, ripple_carry_adder
from repro.instrument import (
    Recorder,
    to_chrome_trace,
    validate_metrics_report,
    validate_trace_report,
)
from repro.instrument.recorder import validate_report
from repro.service import CecServer, ServiceClient
from repro.service.worker import execute_job


def aag_text(aig):
    buffer = io.StringIO()
    write_aag(aig, buffer)
    return buffer.getvalue()


@pytest.fixture(scope="module")
def adder_pair():
    return (
        aag_text(ripple_carry_adder(4)), aag_text(kogge_stone_adder(4))
    )


@pytest.fixture()
def server(tmp_path):
    instance = CecServer(
        str(tmp_path / "cec.sock"), workers=0,
        cache_dir=str(tmp_path / "cache"),
    )
    instance.start()
    yield instance
    instance.close()


def _span_names(trace):
    return [span["name"] for span in trace["spans"]]


def _assert_stitched(trace):
    """One trace id; client -> job -> worker parentage all linked."""
    validate_trace_report(trace)
    assert len({span["trace_id"] for span in trace["spans"]}) == 1
    spans = {span["name"]: span for span in trace["spans"]}
    request = spans["client/request"]
    job = spans["service/job"]
    check = spans["service/check"]
    assert request["parent_id"] is None
    assert job["parent_id"] == request["span_id"]
    assert check["parent_id"] == job["span_id"]
    assert spans["service/queue-wait"]["parent_id"] == job["span_id"]
    assert spans["cache/store"]["parent_id"] == job["span_id"]


class TestTracePropagation:
    def test_one_stitched_trace_in_process(self, server, adder_pair):
        with ServiceClient(server.address) as client:
            _, response = client.check(
                *adder_pair, recorder=Recorder()
            )
        _assert_stitched(response["trace"])
        # The stitched trace exports to valid Chrome trace JSON.
        chrome = to_chrome_trace(response["trace"])
        assert any(e["ph"] == "X" for e in chrome["traceEvents"])
        json.dumps(chrome)

    def test_one_stitched_trace_multiprocess(self, tmp_path, adder_pair):
        instance = CecServer(
            str(tmp_path / "mp.sock"), workers=1,
            cache_dir=str(tmp_path / "cache"),
        )
        instance.start()
        try:
            with ServiceClient(instance.address) as client:
                _, response = client.check(
                    *adder_pair, recorder=Recorder()
                )
            trace = response["trace"]
            _assert_stitched(trace)
            # The worker spans really crossed a process boundary.
            pids = {span["pid"] for span in trace["spans"]}
            assert len(pids) >= 2
        finally:
            instance.close()

    def test_cache_hit_trace_has_no_worker_spans(
        self, server, adder_pair,
    ):
        with ServiceClient(server.address) as client:
            client.check(*adder_pair, recorder=Recorder())
            _, warm = client.check(*adder_pair, recorder=Recorder())
        assert warm["cached"]
        names = _span_names(warm["trace"])
        assert "cache/lookup" in names
        assert "service/job" in names
        assert "service/check" not in names
        assert "service/queue-wait" not in names

    def test_untraced_submit_yields_server_side_trace(
        self, server, adder_pair,
    ):
        # No client trace: the server still records its own spans
        # under a fresh trace id.
        with ServiceClient(server.address) as client:
            submitted = client.submit(*adder_pair)
            response = client.result(submitted["job"], wait=True)
        trace = response["trace"]
        validate_trace_report(trace)
        assert "service/job" in _span_names(trace)

    def test_malformed_trace_header_degrades_never_errors(
        self, server, adder_pair,
    ):
        with ServiceClient(server.address) as client:
            submitted = client.submit(
                *adder_pair, trace={"trace_id": "NOT-HEX"},
            )
            response = client.result(submitted["job"], wait=True)
        assert response["verdict"] == "equivalent"
        trace = response["trace"]
        validate_trace_report(trace)
        assert trace["trace_id"] != "NOT-HEX"
        assert server.recorder.counter("service/trace-degraded") == 1

    def test_worker_degrades_on_malformed_trace(self, adder_pair):
        request = {
            "aag_a": adder_pair[0], "aag_b": adder_pair[1],
            "trace": "garbage",
        }
        response = execute_job(request)
        assert response["ok"]
        validate_trace_report(response["trace"])


class TestMetricsSurface:
    def test_metrics_verb(self, server, adder_pair):
        with ServiceClient(server.address) as client:
            client.check(*adder_pair, recorder=Recorder())
            document, prometheus = client.metrics()
        validate_metrics_report(document)
        histograms = document["histograms"]
        assert "service/job-seconds" in histograms
        assert "service/queue-wait-seconds" in histograms
        assert "cache/lookup-seconds" in histograms
        # Worker-side observations folded in (satellite: cross-process
        # registry).
        assert "service/check-seconds" in histograms
        assert "solver/conflicts" in histograms
        assert histograms["service/job-seconds"]["count"] == 1
        assert "repro_service_job_seconds_bucket" in prometheus
        assert 'le="+Inf"' in prometheus

    def test_http_metrics_endpoint(self, tmp_path, adder_pair):
        instance = CecServer(
            str(tmp_path / "cec.sock"), workers=0,
            cache_dir=str(tmp_path / "cache"),
            metrics_address="127.0.0.1:0",
        )
        instance.start()
        try:
            with ServiceClient(instance.address) as client:
                client.check(*adder_pair, recorder=Recorder())
            base = "http://%s" % instance.metrics_address
            body = urllib.request.urlopen(base + "/metrics").read()
            text = body.decode("utf-8")
            assert "repro_service_job_seconds_bucket" in text
            assert "repro_service_jobs_completed_total 1" in text
            health = urllib.request.urlopen(base + "/healthz").read()
            assert health == b"ok\n"
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(base + "/nope")
        finally:
            instance.close()

    def test_metrics_endpoint_requires_tcp(self, tmp_path):
        with pytest.raises(ValueError):
            CecServer(
                str(tmp_path / "cec.sock"), workers=0,
                metrics_address=str(tmp_path / "metrics.sock"),
            )

    def test_stats_report_carries_quantile_gauges(
        self, server, adder_pair,
    ):
        with ServiceClient(server.address) as client:
            client.check(*adder_pair, recorder=Recorder())
            stats = client.stats()
        validate_report(stats)
        assert stats["gauges"]["service/job-seconds/p50"] > 0
        assert "service/job-seconds/p99" in stats["gauges"]

    def test_worker_stats_folded_into_server_stats(
        self, server, adder_pair,
    ):
        # Satellite: --stats-json (the server's stats report) includes
        # the worker pool's phases and counters via merge_report.
        with ServiceClient(server.address) as client:
            client.check(*adder_pair, recorder=Recorder())
            stats = client.stats()
        assert "service/check" in stats["phases"]
        assert stats["counters"]["sweep/sat_calls"] > 0
        assert stats["counters"]["solver/conflicts"] >= 0
        assert "service/queue-wait" in stats["phases"]


class TestJobStatsSchema:
    def test_job_stats_phase_cells_carry_self_seconds(
        self, server, adder_pair,
    ):
        with ServiceClient(server.address) as client:
            _, response = client.check(*adder_pair)
        for report in (response["job_stats"], response["worker_stats"]):
            validate_report(report)
            for cell in report["phases"].values():
                assert "self_seconds" in cell
