"""Tests for per-output equivalence analysis."""

import pytest

from repro.aig import lit_not
from repro.circuits import (
    comparator,
    comparator_subtract,
    ripple_carry_adder,
    kogge_stone_adder,
)
from repro.core import SweepOptions, check_outputs
from repro.proof import check_proof


class TestAllEquivalent:
    def test_report(self):
        report = check_outputs(
            ripple_carry_adder(4), kogge_stone_adder(4)
        )
        assert report.equivalent
        assert len(report.verdicts) == 5
        assert report.failing() == []
        for verdict in report.verdicts:
            assert verdict.equivalent is True
            assert verdict.counterexample is None

    def test_names_carried(self):
        report = check_outputs(comparator(3), comparator_subtract(3))
        assert [v.name for v in report.verdicts] == ["lt", "eq", "gt"]

    def test_repr(self):
        report = check_outputs(comparator(3), comparator_subtract(3))
        assert "3/3" in repr(report)


class TestPartialFaults:
    def _faulty(self, index):
        bad = comparator_subtract(4).copy()
        bad.set_output(index, lit_not(bad.outputs[index]))
        return bad

    @pytest.mark.parametrize("index", [0, 1, 2])
    def test_single_flip_isolated(self, index):
        good = comparator(4)
        report = check_outputs(good, self._faulty(index))
        assert not report.equivalent
        failing = report.failing()
        assert [v.index for v in failing] == [index]
        bad = self._faulty(index)
        for verdict in failing:
            cex = verdict.counterexample
            assert (
                good.evaluate(cex)[verdict.index]
                != bad.evaluate(cex)[verdict.index]
            )

    def test_good_outputs_still_proved(self):
        good = comparator(4)
        report = check_outputs(good, self._faulty(1))
        statuses = [v.equivalent for v in report.verdicts]
        assert statuses == [True, False, True]

    def test_multiple_faults(self):
        bad = comparator_subtract(4).copy()
        bad.set_output(0, lit_not(bad.outputs[0]))
        bad.set_output(2, lit_not(bad.outputs[2]))
        report = check_outputs(comparator(4), bad)
        assert [v.index for v in report.failing()] == [0, 2]


class TestEngineSharing:
    def test_single_engine_used(self):
        report = check_outputs(
            ripple_carry_adder(6), kogge_stone_adder(6)
        )
        # The sweep proved output equality; the report's engine carries a
        # proof with all the lemmas; the proof must check.
        check_proof(report.engine.proof, require_empty=False)

    def test_options_forwarded(self):
        report = check_outputs(
            comparator(3),
            comparator_subtract(3),
            SweepOptions(proof=False),
        )
        assert report.engine.proof is None
        assert report.equivalent


class TestEquivalenceClasses:
    def test_classes_are_sound(self):
        from repro.aig import build_miter
        from repro.core.fraig import SweepEngine, SweepOptions as Opts
        from repro.aig import Simulator

        miter = build_miter(comparator(4), comparator_subtract(4))
        engine = SweepEngine(miter.aig, Opts())
        engine.sweep()
        classes = engine.equivalence_classes()
        assert classes, "sweeping these circuits must merge something"
        # Validate membership semantically on fresh random patterns.
        sim = Simulator(miter.aig, num_words=4, seed=999)
        for root, members in classes.items():
            root_sig = sim.lit_signature(root)
            for member in members:
                assert sim.lit_signature(member) == root_sig

    def test_singletons_omitted(self):
        from repro.aig import build_miter
        from repro.core.fraig import SweepEngine

        miter = build_miter(comparator(3), comparator_subtract(3))
        engine = SweepEngine(miter.aig)
        engine.sweep()
        classes = engine.equivalence_classes()
        for members in classes.values():
            assert len(members) >= 2


class TestCoreAxioms:
    def test_core_subset_of_axioms(self):
        from repro import check_equivalence
        from repro.proof import AXIOM
        from repro.proof.stats import core_axioms

        result = check_equivalence(comparator(4), comparator_subtract(4))
        core = core_axioms(result.proof)
        assert core
        for clause_id in core:
            assert result.proof.kind(clause_id) == AXIOM
        total_axioms = result.proof.num_axioms
        assert len(core) <= total_axioms
