"""Tests for DOT export."""

import io

import pytest

from repro.aig import AIG
from repro.aig.dot import write_dot
from repro.circuits import ripple_carry_adder


def render(aig):
    buffer = io.StringIO()
    write_dot(aig, buffer)
    return buffer.getvalue()


class TestWriteDot:
    def test_structure(self, tiny_aig):
        text = render(tiny_aig)
        assert text.startswith("digraph aig {")
        assert text.rstrip().endswith("}")
        assert '"a" shape=box' in text
        assert '"y" shape=invhouse' in text

    def test_every_and_node_present(self):
        aig = ripple_carry_adder(2)
        text = render(aig)
        for var in aig.and_vars():
            assert "n%d [" % var in text

    def test_complement_edges_dashed(self, tiny_aig):
        text = render(tiny_aig)
        assert "style=dashed" in text

    def test_dead_nodes_skipped(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        live = aig.add_and(a, b)
        aig.add_and(a, b ^ 1)  # dead
        aig.add_output(live)
        text = render(aig)
        dead_var = aig.num_vars - 1
        assert "n%d [" % dead_var not in text

    def test_size_guard(self):
        aig = ripple_carry_adder(4)
        with pytest.raises(ValueError):
            write_dot(aig, io.StringIO(), max_nodes=10)

    def test_path_output(self, tmp_path, tiny_aig):
        path = tmp_path / "aig.dot"
        write_dot(tiny_aig, str(path))
        assert path.read_text().startswith("digraph")

    def test_edge_count_matches(self):
        aig = ripple_carry_adder(2)
        text = render(aig)
        arrow_lines = [l for l in text.splitlines() if "->" in l]
        assert len(arrow_lines) == 2 * aig.num_ands + aig.num_outputs
