"""Monolithic SAT baseline: one proof-logging solve of the whole miter.

This is the comparison point the paper measures against: encode the miter
to CNF, assert the output unit clause, and hand everything to a CDCL
solver with proof logging. Correct and certificate-producing, but blind
to the structural similarity of the two circuits — the sweeping engine's
advantage is exactly that it exploits it.
"""

import time

from ..aig.miter import build_miter
from ..cnf.tseitin import tseitin_encode
from ..instrument import Recorder
from ..proof.store import ProofStore
from ..sat.solver import SAT, UNKNOWN, Solver


class MonolithicResult:
    """Outcome of a monolithic miter solve.

    Attributes:
        equivalent: True / False / None (budget exhausted).
        counterexample: input assignment on non-equivalence.
        proof: :class:`~repro.proof.store.ProofStore` on equivalence
            (when logging was enabled).
        cnf: the refuted axiom set (miter CNF + output unit).
        solver_stats: the solver's counters.
        elapsed_seconds: wall-clock solve time (encoding included).
        stats: the run's ``repro-stats/1`` report dict.
    """

    def __init__(
        self, equivalent, counterexample, proof, cnf, solver_stats,
        elapsed_seconds, stats=None,
    ):
        self.equivalent = equivalent
        self.counterexample = counterexample
        self.proof = proof
        self.cnf = cnf
        self.solver_stats = solver_stats
        self.elapsed_seconds = elapsed_seconds
        self.stats = stats

    def __repr__(self):
        return "MonolithicResult(equivalent=%r)" % (self.equivalent,)


def monolithic_check(aig_a, aig_b, proof=True, max_conflicts=None,
                     validate_proof=False, recorder=None, budget=None):
    """Check equivalence with a single monolithic SAT call.

    Args:
        aig_a, aig_b: input-compatible circuits.
        proof: enable resolution-proof logging.
        max_conflicts: optional conflict budget (None = unlimited).
        validate_proof: validate derivations at insertion (tests only).
        recorder: optional :class:`~repro.instrument.Recorder` receiving
            encode/solve phase timings and solver counters.
        budget: optional :class:`~repro.instrument.Budget`; exhaustion
            yields ``equivalent=None``.

    Returns:
        A :class:`MonolithicResult`.
    """
    rec = recorder if recorder is not None else Recorder()
    start = time.perf_counter()
    with rec.phase("monolithic/encode"):
        miter = build_miter(aig_a, aig_b)
        enc = tseitin_encode(miter.aig)
    store = ProofStore(validate=validate_proof, recorder=rec) \
        if proof else None
    solver = Solver(proof=store, recorder=rec, budget=budget)
    consistent = True
    with rec.phase("monolithic/load"):
        for clause in enc.cnf.clauses:
            if not solver.add_clause(clause):
                consistent = False
                break
    out_cnf = enc.lit_to_cnf(miter.output)
    cnf = enc.cnf.copy()
    cnf.add_clause([out_cnf])
    if consistent:
        consistent = solver.add_clause([out_cnf])
    if consistent:
        with rec.phase("monolithic/solve"):
            result = solver.solve(max_conflicts=max_conflicts)
        status = result.status
    else:
        status = False
    elapsed = time.perf_counter() - start
    if status is SAT:
        cex = [
            result.model_value(enc.var_of[var]) for var in miter.aig.inputs
        ]
        out_a = aig_a.evaluate(cex)
        out_b = aig_b.evaluate(cex)
        if out_a == out_b:
            raise RuntimeError("monolithic counterexample invalid")
        outcome = MonolithicResult(
            False, cex, None, cnf, solver.stats, elapsed
        )
    elif status is UNKNOWN:
        outcome = MonolithicResult(
            None, None, None, cnf, solver.stats, elapsed
        )
    else:
        outcome = MonolithicResult(
            True, None, store, cnf, solver.stats, elapsed
        )
    if store is not None:
        rec.gauge("proof/clauses", len(store))
        rec.gauge("proof/axioms", store.num_axioms)
        rec.gauge("proof/derived", store.num_derived)
        rec.gauge("proof/resolutions", store.num_resolutions)
    outcome.stats = rec.report(budget=budget)
    return outcome
