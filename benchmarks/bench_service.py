"""Service benchmark: job throughput and proof-cache hit rate.

Runnable standalone (used by the CI service-smoke job) or under the
benchmark harness::

    PYTHONPATH=src python benchmarks/bench_service.py --out BENCH_service.json
    PYTHONPATH=src python benchmarks/bench_service.py --small --out /tmp/b.json

One in-process server (Unix socket, ``workers=0`` so numbers measure
the service layer, not process-pool forking) is driven through two
passes over a workload of distinct adder pairs:

* **cold** — every query is new: full solve, trim, cache store;
* **warm** — the same queries again, plus each pair once more in the
  *symmetric* orientation: every job must be answered from the
  structural-hash proof cache with no solver phase.

The document records jobs/sec for both passes, the cold/warm speedup,
and the server's final ``repro-stats/1`` report (embedded for CI
validation). The warm pass must achieve a 100% hit rate and every
returned certificate must replay locally via ``certify``.
"""

import argparse
import io
import json
import sys
import tempfile
import time

from repro.aig.aiger import write_aag
from repro.circuits import kogge_stone_adder, ripple_carry_adder
from repro.core.certify import certify
from repro.instrument.recorder import validate_report
from repro.service import CecServer, ServiceClient


def _aag(aig):
    buffer = io.StringIO()
    write_aag(aig, buffer)
    return buffer.getvalue()


def build_workload(small=False):
    """Distinct (name, aag_a, aag_b) queries of growing size."""
    widths = range(2, 6) if small else range(2, 10)
    return [
        (
            "rca%d-vs-ks%d" % (width, width),
            _aag(ripple_carry_adder(width)),
            _aag(kogge_stone_adder(width)),
        )
        for width in widths
    ]


def run(small=False):
    """Drive one server through a cold and a warm pass; measure both."""
    workload = build_workload(small=small)
    with tempfile.TemporaryDirectory() as scratch:
        server = CecServer(
            scratch + "/bench.sock", workers=0,
            cache_dir=scratch + "/cache",
        )
        server.start()
        try:
            with ServiceClient(server.address) as client:
                cold = _pass(client, workload, expect_cached=False)
                warm = _pass(client, workload, expect_cached=True,
                             symmetric_extra=True)
                stats = client.stats()
        finally:
            server.close()
    validate_report(stats)
    counters = stats["counters"]
    hit_rate = stats["gauges"]["service/hit-rate"]
    assert counters["service/cache-misses"] == len(workload)
    assert counters["service/cache-hits"] == 2 * len(workload)
    speedup = cold["seconds"] / max(warm["seconds"], 1e-9)
    # Serving stored certificates must beat re-solving comfortably.
    assert warm["jobs_per_second"] > cold["jobs_per_second"], (
        warm, cold,
    )
    return {
        "bench": "service",
        "mode": "small" if small else "full",
        "pairs": [name for name, _, _ in workload],
        "cold": cold,
        "warm": warm,
        "cache_speedup": round(speedup, 2),
        "hit_rate": round(hit_rate, 4),
        "server_stats": stats,
    }


def _pass(client, workload, expect_cached, symmetric_extra=False):
    """Submit every query once (plus flipped copies); verify and time."""
    queries = [(a, b) for _, a, b in workload]
    if symmetric_extra:
        queries += [(b, a) for _, a, b in workload]
    start = time.perf_counter()
    jobs = 0
    for aag_a, aag_b in queries:
        result, response = client.check(aag_a, aag_b)
        jobs += 1
        assert response["verdict"] == "equivalent", response
        assert response["cached"] is expect_cached, response
        if expect_cached:
            # A cache hit must not have run any engine: the only
            # server-side phase is the cache lookup itself.
            assert set(response["job_stats"]["phases"]) \
                == {"cache/lookup"}, response["job_stats"]
            assert response["worker_stats"] is None
        certify(result)
    seconds = time.perf_counter() - start
    return {
        "jobs": jobs,
        "seconds": round(seconds, 4),
        "jobs_per_second": round(jobs / max(seconds, 1e-9), 2),
        "cached": expect_cached,
    }


def test_service_bench_smoke():
    """Harness entry: the small configuration must hold end to end."""
    from conftest import report_table

    document = run(small=True)
    report_table(
        "Service: cold vs warm (proof cache)",
        ["pass", "jobs", "seconds", "jobs/sec"],
        [
            ["cold (solve)", document["cold"]["jobs"],
             document["cold"]["seconds"],
             document["cold"]["jobs_per_second"]],
            ["warm (cached)", document["warm"]["jobs"],
             document["warm"]["seconds"],
             document["warm"]["jobs_per_second"]],
        ],
        notes=[
            "cache speedup: %.1fx, hit rate %.0f%%"
            % (document["cache_speedup"], 100 * document["hit_rate"]),
        ],
    )


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="CEC service throughput / cache hit-rate benchmark"
    )
    parser.add_argument(
        "--small", action="store_true",
        help="CI-sized configuration (4 pairs instead of 8)",
    )
    parser.add_argument(
        "--out", metavar="PATH",
        help="write the JSON result document (with the embedded server "
        "repro-stats/1 report) to PATH",
    )
    args = parser.parse_args(argv)
    document = run(small=args.small)
    print(
        "service bench (%s): cold %d jobs in %.3fs (%.1f/s), "
        "warm %d jobs in %.3fs (%.1f/s), %.1fx cache speedup, "
        "hit rate %.0f%%"
        % (
            document["mode"],
            document["cold"]["jobs"], document["cold"]["seconds"],
            document["cold"]["jobs_per_second"],
            document["warm"]["jobs"], document["warm"]["seconds"],
            document["warm"]["jobs_per_second"],
            document["cache_speedup"],
            100 * document["hit_rate"],
        )
    )
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("results written to %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
