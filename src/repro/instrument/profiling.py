"""cProfile capture for the CLIs (``--profile PATH``).

The hot-path work on this codebase is profile-driven: every perf PR
starts from a ``pstats`` dump, not a guess. ``maybe_profile`` wraps a
CLI run in a :class:`cProfile.Profile` when a path is given and is a
no-op otherwise, so the flag costs nothing when unused::

    with maybe_profile(args.profile):
        code = run(...)

Inspect the dump with the standard tooling::

    python -m pstats out.pstats        # interactive: sort cumtime, stats 20
    python -c "import pstats; pstats.Stats('out.pstats').sort_stats('tottime').print_stats(15)"
"""

import cProfile
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = ["maybe_profile"]


@contextmanager
def maybe_profile(path: Optional[str]) -> Iterator[Optional[cProfile.Profile]]:
    """Profile the enclosed block into *path*; no-op when *path* is falsy.

    The ``pstats`` dump is written even when the block raises, so a
    crashing run still leaves its profile behind for diagnosis.
    """
    if not path:
        yield None
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        profiler.dump_stats(path)
