"""``repro-top``: live terminal dashboard over the fleet aggregator.

Renders, once per poll round:

* a header with targets up, summed queue depth, cache hit rate and
  poll count;
* one line per SLO with its fast/slow burn rates and alert flag;
* one line per target (role, health, queue depth, active jobs);
* the in-flight jobs across every shard, each with its live
  ``repro-progress/1`` heartbeat rendered as a progress bar;
* the newest tail-sampled slow/failed jobs.

Runs under ``curses`` when a real terminal is attached; ``--plain``
prints the same frames to stdout (and is the automatic fallback when
stdout is not a TTY), ``--once`` renders a single frame and exits —
both modes exist so CI and scripts can drive the dashboard headless.

Rendering is a pure function of the aggregator
(:func:`render_dashboard`), so tests assert on frames without a
terminal.
"""

import sys
import time

from ..exit_codes import EXIT_INVALID_INPUT, EXIT_OK
from ..instrument import configure_logging
from ..instrument.progress import format_heartbeat, progress_bar
from .cli import build_aggregator, write_outputs
from .cli import build_parser as _build_obs_parser


def _format_burn(value):
    return "-" if value is None else "%.2f" % value


def render_dashboard(aggregator, now=None, width=100, max_jobs=16):
    """One dashboard frame as a list of lines (pure; no terminal)."""
    now = time.time() if now is None else now
    lines = []
    up = sum(1 for target in aggregator.targets if target.up)
    hit_rate = aggregator.cache_hit_rate()
    lines.append(
        "repro-top  %d/%d targets up  queue=%d  polls=%d  cache=%s" % (
            up, len(aggregator.targets), aggregator.queue_depth(),
            aggregator.polls,
            "-" if hit_rate is None else "%.0f%%" % (100.0 * hit_rate),
        )
    )
    for name, tracker in sorted(aggregator.slos.items()):
        status = tracker.status(now)
        lines.append(
            "slo %-12s obj=%.2f%%  burn fast=%s slow=%s  %s" % (
                name, 100.0 * status["objective"],
                _format_burn(status["burn_rate_fast"]),
                _format_burn(status["burn_rate_slow"]),
                "ALERT" if status["alerting"] else "ok",
            )
        )
    for target in aggregator.targets:
        block = target.snapshot()
        lines.append(
            "%-6s %-10s %-4s queue=%-3d active=%-3d %s" % (
                target.role, target.name,
                "UP" if target.up else "DOWN",
                block["queue_depth"], block["active_jobs"],
                target.last_error or target.address,
            )
        )
    in_flight = [
        entry for entry in aggregator.fleet_jobs()
        if entry.get("state") in ("queued", "running")
    ]
    lines.append("jobs in flight: %d" % len(in_flight))
    for entry in in_flight[:max_jobs]:
        progress = entry.get("progress")
        if isinstance(progress, dict):
            detail = format_heartbeat(progress)
        else:
            detail = "%-8s [%s] %.1fs" % (
                entry.get("state"), progress_bar(None),
                float(entry.get("elapsed_seconds") or 0.0),
            )
        lines.append("  %s @%s %s" % (
            entry.get("job"), entry.get("target"), detail,
        ))
    if len(in_flight) > max_jobs:
        lines.append("  ... and %d more" % (len(in_flight) - max_jobs))
    samples = aggregator.sampler.samples()
    stats = aggregator.sampler.stats()
    lines.append(
        "tail samples: kept=%d dropped=%d" % (
            stats["kept"], stats["dropped"],
        )
    )
    for sample in samples[-4:]:
        record = sample.get("record") or {}
        lines.append("  %s @%s %s %.2fs (%s)" % (
            record.get("job"), record.get("target"),
            record.get("state"), float(sample["elapsed_seconds"]),
            sample["kept_because"],
        ))
    return [line[:width] for line in lines]


def build_parser():
    parser = _build_obs_parser()
    parser.prog = "repro-top"
    parser.description = (
        "Live terminal dashboard over a CEC fleet: per-shard queue "
        "depth, in-flight jobs with progress bars, cache hit rate, "
        "and SLO burn status."
    )
    parser.add_argument(
        "--plain", action="store_true",
        help="print frames to stdout instead of the curses screen "
        "(automatic when stdout is not a terminal)",
    )
    parser.add_argument(
        "--width", type=int, default=100, metavar="COLS",
        help="frame width in plain mode (default %(default)s)",
    )
    return parser


def _run_plain(aggregator, args, rounds):
    completed = 0
    while True:
        aggregator.poll_once()
        completed += 1
        for line in render_dashboard(aggregator, width=args.width):
            print(line)
        if rounds and completed >= rounds:
            return EXIT_OK
        print("")
        sys.stdout.flush()
        time.sleep(args.interval)


def _run_curses(aggregator, args, rounds):
    import curses

    def loop(screen):
        curses.curs_set(0)
        screen.nodelay(True)
        completed = 0
        while True:
            aggregator.poll_once()
            completed += 1
            height, width = screen.getmaxyx()
            screen.erase()
            lines = render_dashboard(aggregator, width=width - 1)
            for row, line in enumerate(lines[: height - 1]):
                screen.addstr(row, 0, line)
            screen.refresh()
            if rounds and completed >= rounds:
                return
            deadline = time.monotonic() + args.interval
            while time.monotonic() < deadline:
                key = screen.getch()
                if key in (ord("q"), ord("Q")):
                    return
                time.sleep(0.05)

    curses.wrapper(loop)
    return EXIT_OK


def main(argv=None):
    args = build_parser().parse_args(argv)
    configure_logging(json_logs=args.log_json, level="warning")
    if not args.shard and not args.router:
        print("repro-top: need at least one --shard or --router",
              file=sys.stderr)
        return EXIT_INVALID_INPUT
    if args.interval <= 0:
        print("repro-top: --interval must be > 0", file=sys.stderr)
        return EXIT_INVALID_INPUT
    rounds = 1 if args.once else args.rounds
    try:
        aggregator = build_aggregator(args)
    except ValueError as exc:
        print("repro-top: %s" % exc, file=sys.stderr)
        return EXIT_INVALID_INPUT
    plain = args.plain or not sys.stdout.isatty()
    try:
        if plain:
            code = _run_plain(aggregator, args, rounds)
        else:
            code = _run_curses(aggregator, args, rounds)
    except KeyboardInterrupt:
        code = EXIT_OK
    if args.snapshot_json or args.prometheus_out:
        write_outputs(aggregator, args)
    return code


if __name__ == "__main__":
    sys.exit(main())
