"""Table 4 — head-to-head: monolithic baseline vs. the CEC engine.

The paper's headline result: per pair, the time ratio and proof-size
ratio (monolithic / engine), with geometric means. Ratios above 1 mean
the sweeping engine wins. Reuses the session-cached runs from Tables 2
and 3 when available.
"""

import pytest

from repro.circuits import SUITE
from repro.proof.stats import proof_stats

from conftest import geometric_mean, report_table, run_monolithic, run_sweep

_ROWS = {}


@pytest.mark.parametrize("pair", SUITE, ids=lambda p: p.name)
def test_comparison(benchmark, pair, engine_cache):
    def both():
        return (
            run_monolithic(engine_cache, pair),
            run_sweep(engine_cache, pair),
        )

    mono, sweep = benchmark.pedantic(both, rounds=1, iterations=1)
    assert mono.equivalent is True and sweep.equivalent is True
    mono_stats = proof_stats(mono.proof)
    sweep_stats = proof_stats(sweep.proof)
    time_ratio = mono.elapsed_seconds / max(sweep.elapsed_seconds, 1e-9)
    res_ratio = mono_stats.num_resolutions / max(
        sweep_stats.num_resolutions, 1
    )
    clause_ratio = mono_stats.num_derived / max(sweep_stats.num_derived, 1)
    _ROWS[pair.name] = (
        [
            pair.name,
            "%.3f" % mono.elapsed_seconds,
            "%.3f" % sweep.elapsed_seconds,
            "%.2fx" % time_ratio,
            mono_stats.num_resolutions,
            sweep_stats.num_resolutions,
            "%.2fx" % res_ratio,
            "%.2fx" % clause_ratio,
        ],
        (time_ratio, res_ratio, clause_ratio),
    )
    rows = [_ROWS[name][0] for name in sorted(_ROWS)]
    ratios = [_ROWS[name][1] for name in sorted(_ROWS)]
    rows.append([
        "geo-mean", "", "",
        "%.2fx" % geometric_mean([r[0] for r in ratios]),
        "", "",
        "%.2fx" % geometric_mean([r[1] for r in ratios]),
        "%.2fx" % geometric_mean([r[2] for r in ratios]),
    ])
    report_table(
        "Table 4: monolithic vs. CEC engine (ratios > 1 = engine wins)",
        ["pair", "mono(s)", "cec(s)", "time ratio", "mono res", "cec res",
         "res ratio", "clause ratio"],
        rows,
        notes=["paper's qualitative claim: both geo-means exceed 1"],
    )
