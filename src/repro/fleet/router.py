"""The fleet front door: an asyncio router over ``repro-serve`` shards.

:class:`FleetRouter` binds one listening socket and speaks plain
``repro-service/1`` to clients — an unmodified ``repro-client`` (or
:class:`~repro.service.client.ServiceClient`) pointed at the router
sees one big server. Behind it, every submit is consistent-hashed by
its proof-cache key (:func:`repro.service.cache.cache_key`, the same
structural pair hash the shards key their caches by) onto the
:class:`~repro.fleet.ring.HashRing` of backend shards, so repeated and
symmetric queries land on the shard that already holds their
certificate.

Job identity across the fleet: the router suffixes shard job ids with
the shard's address (``j000007@127.0.0.1:7801``) before they reach the
client, and strips the suffix when forwarding ``status`` / ``result``
/ ``cancel``. Clients treat job ids as opaque strings, so the routed
form rides the existing protocol unchanged.

Replay safety mirrors the client's no-retry-after-send rule: a
``submit`` is idempotent (cache-keyed, content-addressed answer), so
a shard failure mid-submit fails over to the next shard on the ring;
job verbs are bound to the shard that owns the job's state and are
*never* re-routed — a dead shard answers ``shard-down`` instead.

Cross-shard cache tier (``repro-fleet/1``): before forwarding a
submit, the router probes the home shard's cache and, on a miss, the
other shards in ring order; a peer hit is transferred home with
``cache-get`` / ``cache-put`` so the home shard answers from its own
disk. N private caches behave as one logical cache while every shard
stays ignorant of its peers.

Health: a background task pings every shard each ``health_interval``
seconds; ``down_after`` consecutive failures (pings and forwarded
requests both count) remove the shard from the ring, the first
successful ping re-adds it. Ring membership changes move only the
affected shard's keys (see :mod:`repro.fleet.ring`).

Threading model: everything runs on one event loop; the only other
thread is the optional Prometheus ``/metrics`` endpoint, which reads
nothing but the thread-safe :class:`~repro.instrument.Recorder` and
:class:`~repro.instrument.MetricsRegistry`.
"""

import asyncio
import collections
import io
import os
import time

from .. import __version__
from ..aig.aiger import AigerError, read_aag
from ..instrument import MetricsRegistry, Recorder, get_logger
from ..instrument.metrics import TIME_BUCKETS, to_prometheus_text
from ..instrument.tracing import (
    TraceContext,
    merge_trace_documents,
    new_span_id,
)
from ..service import protocol
from ..service.cache import cache_key
from ..service.metrics_http import MetricsHTTPServer
from ..service.worker import build_options
from .aioclient import AsyncServiceClient
from .ring import DEFAULT_REPLICAS, HashRing

log = get_logger("fleet.router")

DEFAULT_HEALTH_INTERVAL = 2.0
#: Consecutive probe/request failures before a shard leaves the ring.
DEFAULT_DOWN_AFTER = 2
DEFAULT_SHARD_TIMEOUT = 60.0

#: Separator between a shard job id and the owning shard's address in
#: the routed ids handed to clients.
JOB_SEPARATOR = "@"

#: Router-side span stashes kept for jobs whose result has not been
#: fetched yet (bounds memory under clients that never collect).
RETAIN_JOB_SPANS = 512

#: Job states after which a result will never change again.
_TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: Transport-level failures that mark a shard unhealthy.
_TRANSPORT_ERRORS = (OSError, asyncio.TimeoutError, protocol.ProtocolError)


class ShardState:
    """Health and identity of one backend shard (loop-thread only)."""

    __slots__ = ("address", "up", "failures")

    def __init__(self, address):
        self.address = address
        self.up = True
        self.failures = 0


class FleetRouter:
    """Consistent-hash router and cross-shard cache broker.

    Args:
        address: listen address (``host:port`` or Unix socket path).
        shards: backend ``repro-serve`` addresses (>= 1; must not
            contain ``@``, which delimits routed job ids).
        replicas: ring points per shard (see :class:`HashRing`).
        cache_fetch: enable the cross-shard cache transfer before
            forwarding a submit (disable to measure its effect).
        health_interval: seconds between background shard pings.
        down_after: consecutive failures that mark a shard down.
        shard_timeout: seconds allowed per shard connect/response line.
        recorder: router-level :class:`Recorder` (created when
            omitted); serves the ``stats`` verb and the gauges.
        metrics_address: optional ``host:port`` for the Prometheus
            ``/metrics`` endpoint.
    """

    def __init__(
        self,
        address,
        shards,
        replicas=DEFAULT_REPLICAS,
        cache_fetch=True,
        health_interval=DEFAULT_HEALTH_INTERVAL,
        down_after=DEFAULT_DOWN_AFTER,
        shard_timeout=DEFAULT_SHARD_TIMEOUT,
        recorder=None,
        metrics_address=None,
    ):
        if not shards:
            raise ValueError("a fleet needs at least one shard")
        for shard in shards:
            if JOB_SEPARATOR in shard:
                raise ValueError(
                    "shard address %r may not contain %r"
                    % (shard, JOB_SEPARATOR)
                )
        self.family, self.target = protocol.parse_address(address)
        self.address = address
        self.shards = {address: ShardState(address) for address in shards}
        self.ring = HashRing(self.shards, replicas=replicas)
        self.cache_fetch = cache_fetch
        self.health_interval = health_interval
        self.down_after = down_after
        self.shard_timeout = shard_timeout
        self.recorder = recorder if recorder is not None else Recorder()
        self.metrics = MetricsRegistry()
        self._metrics_address = metrics_address
        self._metrics_http = None
        self._server = None
        self._health_task = None
        self._stopping = asyncio.Event()
        self._job_spans = collections.OrderedDict()
        self._started_monotonic = time.monotonic()
        self._update_ring_gauges()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self):
        """Bind the socket, start health checks and metrics; returns
        self."""
        if self.family == "unix":
            self._server = await asyncio.start_unix_server(
                self._serve_connection, self.target,
                limit=protocol.MAX_LINE_BYTES + 1,
            )
        else:
            host, port = self.target
            self._server = await asyncio.start_server(
                self._serve_connection, host, port,
                limit=protocol.MAX_LINE_BYTES + 1,
            )
        self._health_task = asyncio.ensure_future(self._health_loop())
        if self._metrics_address is not None:
            family, target = protocol.parse_address(self._metrics_address)
            if family != "tcp":
                raise ValueError(
                    "metrics endpoint needs host:port, got %r"
                    % self._metrics_address
                )
            host, port = target
            self._metrics_http = MetricsHTTPServer(
                host, port, self.prometheus_text,
            ).start()
        log.info(
            "router listening on %s over %d shard(s)",
            self.address, len(self.shards),
        )
        return self

    @property
    def listen_port(self):
        """The bound TCP port (useful with port 0); None for Unix."""
        if self.family != "tcp" or self._server is None:
            return None
        return self._server.sockets[0].getsockname()[1]

    @property
    def metrics_port(self):
        """The bound ``/metrics`` port, or None when disabled."""
        if self._metrics_http is None:
            return None
        return self._metrics_http.port

    def request_stop(self):
        """Ask :meth:`serve_forever` to wind down (signal-handler
        safe when called via ``loop.call_soon_threadsafe``)."""
        self._stopping.set()

    async def serve_forever(self):
        """Run until :meth:`request_stop` (or a ``shutdown`` verb)."""
        if self._server is None:
            await self.start()
        try:
            await self._stopping.wait()
        finally:
            await self.close()

    async def close(self):
        """Stop accepting, cancel health checks, release the metrics
        endpoint (idempotent)."""
        self._stopping.set()
        if self._health_task is not None:
            self._health_task.cancel()
            try:
                # Bounded: asyncio.wait_for on Python < 3.12 can swallow
                # a cancellation that races with an inner completion, so
                # a ping inside the health loop may eat the cancel. The
                # loop also watches ``_stopping`` and exits within one
                # interval on its own; wait for that instead of hanging.
                await asyncio.wait_for(
                    self._health_task,
                    timeout=self.health_interval + 5.0,
                )
            except (asyncio.CancelledError, asyncio.TimeoutError):
                pass
            self._health_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
            if self.family == "unix":
                try:
                    os.unlink(self.target)
                except OSError:
                    pass
        if self._metrics_http is not None:
            self._metrics_http.close()
            self._metrics_http = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _serve_connection(self, reader, writer):
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # StreamReader.readline signals a limit overrun
                    # (line longer than MAX_LINE_BYTES) as ValueError.
                    await self._send(writer, protocol.error_response(
                        protocol.ERR_INVALID_REQUEST,
                        "request line exceeds %d bytes"
                        % protocol.MAX_LINE_BYTES,
                    ))
                    return
                except OSError:
                    return
                if not line:
                    return
                try:
                    request = protocol.decode(line)
                except protocol.ProtocolError as exc:
                    await self._send(writer, protocol.error_response(
                        exc.code, str(exc),
                    ))
                    continue
                try:
                    done = await self._dispatch(request, writer)
                except (OSError, ConnectionResetError):
                    return
                if done:
                    return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass

    @staticmethod
    async def _send(writer, response):
        writer.write(protocol.encode(response))
        await writer.drain()

    async def _dispatch(self, request, writer):
        """Answer one request; True when the connection should close."""
        verb = request.get("verb")
        if not isinstance(verb, str):
            await self._send(writer, protocol.error_response(
                protocol.ERR_INVALID_REQUEST, "request needs a 'verb'",
            ))
            return False
        self.recorder.count("fleet/requests")
        if verb == "ping":
            await self._send(writer, protocol.ping_response())
            return False
        if verb == "submit":
            await self._send(writer, await self._handle_submit(request))
            return False
        if verb in ("status", "result", "cancel"):
            await self._forward_job_verb(request, verb, writer)
            return False
        if verb == "progress":
            if isinstance(request.get("job"), str):
                await self._forward_job_verb(request, verb, writer)
            else:
                await self._send(
                    writer, await self._handle_progress_listing()
                )
            return False
        if verb in protocol.FLEET_VERBS:
            await self._send(
                writer, await self._handle_cache_verb(request, verb)
            )
            return False
        if verb == "stats":
            await self._send(writer, protocol.ok_response(
                "stats", stats=self.stats_report(),
            ))
            return False
        if verb == "metrics":
            await self._send(writer, protocol.ok_response(
                "metrics", metrics=self.metrics.report(),
                prometheus=self.prometheus_text(),
            ))
            return False
        if verb == "shutdown":
            # Stops the router only; shards are independent processes
            # with their own lifecycles.
            await self._send(writer, protocol.ok_response("shutdown"))
            self.request_stop()
            return True
        await self._send(writer, protocol.error_response(
            protocol.ERR_INVALID_REQUEST, "unknown verb %r" % verb,
            verb=verb,
        ))
        return False

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _preferred_shards(self, key):
        """Up shards in failover order for *key* (ring holds only up
        members, so preference order is already health-filtered)."""
        return [self.shards[name] for name in self.ring.preference(key)]

    def _routed_id(self, job_id, shard):
        return "%s%s%s" % (job_id, JOB_SEPARATOR, shard.address)

    def _rewrite_job(self, response, shard):
        job_id = response.get("job")
        if isinstance(job_id, str) and JOB_SEPARATOR not in job_id:
            response["job"] = self._routed_id(job_id, shard)

    async def _shard_request(self, shard, message, on_update=None):
        """One request/response exchange with *shard* on a fresh
        connection; transport failures mark the shard and re-raise."""
        client = AsyncServiceClient(
            shard.address, timeout=self.shard_timeout,
        )
        try:
            async with client:
                response = await client.request(
                    message, on_update=on_update, raise_on_error=False,
                )
        except _TRANSPORT_ERRORS:
            self._note_shard_failure(shard)
            raise
        self._note_shard_success(shard)
        return response

    async def _handle_submit(self, request):
        loop = asyncio.get_event_loop()
        started = loop.time()
        try:
            aig_a = read_aag(io.StringIO(request["aag_a"]))
            aig_b = read_aag(io.StringIO(request["aag_b"]))
            build_options(request.get("options"))
        except (AigerError, ValueError, KeyError, TypeError) as exc:
            self.recorder.count("fleet/jobs-rejected")
            return protocol.error_response(
                protocol.ERR_BAD_INPUT, str(exc), verb="submit",
            )
        key = cache_key(aig_a, aig_b, request.get("options"))
        order = self._preferred_shards(key)
        if not order:
            self.recorder.count("fleet/jobs-rejected")
            return protocol.error_response(
                protocol.ERR_SHARD_DOWN,
                "no shard is up to accept the job", verb="submit",
            )
        # Trace rider: the router becomes one hop of the client's
        # trace — its spans parent under the client's request span and
        # the shard's spans parent under the router's route span.
        message = dict(request)
        context = route_span_id = None
        if "trace" in request:
            context, propagated = TraceContext.from_wire(
                request.get("trace")
            )
            if not propagated:
                self.recorder.count("fleet/trace-degraded")
            route_span_id = new_span_id()
            message["trace"] = context.child(route_span_id).to_wire()
        spans = []
        if self.cache_fetch and len(order) > 1:
            transfer_span = await self._fetch_across_shards(key, order)
            if transfer_span is not None and context is not None:
                transfer_span.update(
                    trace_id=context.trace_id, parent_id=route_span_id,
                )
                spans.append(transfer_span)
        response = None
        for attempt, shard in enumerate(order):
            try:
                response = await self._shard_request(shard, message)
            except _TRANSPORT_ERRORS as exc:
                log.warning(
                    "submit to shard %s failed (%s); trying next",
                    shard.address, exc,
                )
                self.recorder.count("fleet/submit-failovers")
                continue
            if attempt:
                # The job ran on a fallback shard: replay-safe because
                # a submit is cache-keyed and idempotent.
                self.recorder.count("fleet/resubmits")
            break
        if response is None:
            self.recorder.count("fleet/jobs-rejected")
            return protocol.error_response(
                protocol.ERR_SHARD_DOWN,
                "every shard in preference order failed", verb="submit",
            )
        elapsed = loop.time() - started
        self.metrics.observe(
            "fleet/route-seconds", elapsed,
            buckets=TIME_BUCKETS, unit="seconds",
        )
        self.recorder.add_time("fleet/route", elapsed)
        if response.get("ok"):
            self.recorder.count("fleet/jobs-routed")
            self.recorder.count("fleet/jobs-to/%s" % shard.address)
            if response.get("cached"):
                self.recorder.count("fleet/jobs-cached")
            self._update_hit_gauges()
        job_id = response.get("job")
        if isinstance(job_id, str):
            routed = self._routed_id(job_id, shard)
            response["job"] = routed
            if context is not None:
                spans.append(self._span(
                    context.trace_id, "fleet/route", route_span_id,
                    context.parent_id, started, elapsed,
                    job=routed, shard=shard.address,
                ))
                self._stash_spans(routed, spans)
        return response

    async def _fetch_across_shards(self, key, order):
        """Pull *key*'s certificate to its home shard from a peer.

        Best effort: probe the home shard, then each peer in ring
        order; on a peer hit, copy the result document home so the
        forwarded submit is a local cache hit there. Returns the
        transfer span (sans trace identity) when a transfer happened.
        """
        loop = asyncio.get_event_loop()
        home = order[0]
        try:
            found, _ = await self._probe_cache(home, key)
        except _TRANSPORT_ERRORS:
            return None
        if found:
            self.recorder.count("fleet/cache-home-hits")
            return None
        for peer in order[1:]:
            try:
                found, _ = await self._probe_cache(peer, key)
            except _TRANSPORT_ERRORS:
                continue
            if not found:
                continue
            started = loop.time()
            try:
                async with AsyncServiceClient(
                    peer.address, timeout=self.shard_timeout,
                ) as source:
                    result, meta = await source.cache_get(key)
                if result is None:
                    continue
                async with AsyncServiceClient(
                    home.address, timeout=self.shard_timeout,
                ) as target:
                    await target.cache_put(key, result, meta=meta)
            except _TRANSPORT_ERRORS:
                self.recorder.count("fleet/cache-transfer-failures")
                continue
            elapsed = loop.time() - started
            self.recorder.count("fleet/cache-transfers")
            self.recorder.add_time("fleet/cache-transfer", elapsed)
            self.metrics.observe(
                "fleet/transfer-seconds", elapsed,
                buckets=TIME_BUCKETS, unit="seconds",
            )
            log.info(
                "transferred cache entry %s from %s to %s",
                key[:12], peer.address, home.address,
            )
            return self._span(
                None, "fleet/cache-transfer", new_span_id(), None,
                started, elapsed, shard=home.address, source=peer.address,
            )
        return None

    async def _probe_cache(self, shard, key):
        """``(found, meta)`` for *key* on *shard*; cache-less shards
        read as a miss. Transport failures propagate (callers skip)."""
        response = await self._shard_request(
            shard, {"verb": "cache", "key": key},
        )
        if not response.get("ok"):
            # A shard without a cache (or any protocol-level refusal)
            # is simply not a source or target for transfers.
            return False, None
        return bool(response.get("found")), response.get("meta")

    async def _forward_job_verb(self, request, verb, writer):
        """Forward ``status``/``result``/``cancel``/``progress`` to
        the owning shard, streaming heartbeats through and
        re-suffixing job ids.

        Job verbs are never re-routed: the job's state lives on one
        shard, and asking any other shard would invent an
        ``unknown-job`` answer for a job that still exists.
        """
        routed = request.get("job")
        if not isinstance(routed, str) or JOB_SEPARATOR not in routed:
            await self._send(writer, protocol.error_response(
                protocol.ERR_UNKNOWN_JOB,
                "job id %r carries no shard suffix" % (routed,),
                verb=verb,
            ))
            return
        raw_id, _, shard_address = routed.rpartition(JOB_SEPARATOR)
        shard = self.shards.get(shard_address)
        if shard is None:
            await self._send(writer, protocol.error_response(
                protocol.ERR_UNKNOWN_JOB,
                "job %r names no configured shard" % (routed,),
                verb=verb,
            ))
            return
        if not shard.up:
            await self._send(writer, protocol.error_response(
                protocol.ERR_SHARD_DOWN,
                "shard %s owning job %s is down"
                % (shard.address, routed),
                verb=verb,
            ))
            return
        message = dict(request)
        message["job"] = raw_id

        async def relay(update):
            self._rewrite_job(update, shard)
            await self._send(writer, update)

        try:
            response = await self._shard_request(
                shard, message, on_update=relay,
            )
        except _TRANSPORT_ERRORS as exc:
            await self._send(writer, protocol.error_response(
                protocol.ERR_SHARD_DOWN,
                "shard %s failed mid-%s: %s"
                % (shard.address, verb, exc),
                verb=verb,
            ))
            return
        self._rewrite_job(response, shard)
        if verb == "result":
            self._stitch_result_trace(routed, response)
        await self._send(writer, response)

    async def _handle_progress_listing(self):
        """Fleet-wide ``progress`` listing: every up shard's active and
        recently finished jobs, ids re-suffixed with the owning shard,
        plus the summed queue depth. A shard failing mid-poll is simply
        absent from this round's listing — observation never blocks on
        a sick shard."""
        jobs = []
        queue_depth = 0
        for shard in self.shards.values():
            if not shard.up:
                continue
            try:
                response = await self._shard_request(
                    shard, {"verb": "progress"},
                )
            except _TRANSPORT_ERRORS:
                continue
            if not response.get("ok"):
                continue
            for entry in response.get("jobs") or []:
                entry = dict(entry)
                self._rewrite_job(entry, shard)
                jobs.append(entry)
            depth = response.get("queue_depth")
            if isinstance(depth, (int, float)):
                queue_depth += int(depth)
        return protocol.ok_response(
            "progress", jobs=jobs, queue_depth=queue_depth,
        )

    # ------------------------------------------------------------------
    # Trace stitching
    # ------------------------------------------------------------------

    @staticmethod
    def _span(trace_id, name, span_id, parent_id, ts, dur, **attrs):
        span = {
            "trace_id": trace_id,
            "span_id": span_id,
            "parent_id": parent_id,
            "name": name,
            "ts": ts,
            "dur": dur,
            "pid": os.getpid(),
            "process": "repro-router",
            "thread": "event-loop",
        }
        span.update(attrs)
        return span

    def _stash_spans(self, routed_id, spans):
        if not spans:
            return
        self._job_spans[routed_id] = spans
        while len(self._job_spans) > RETAIN_JOB_SPANS:
            self._job_spans.popitem(last=False)

    def _stitch_result_trace(self, routed_id, response):
        """Merge the router's stashed spans into a terminal result's
        trace document (client, router, shard, and worker spans then
        share one trace id)."""
        spans = self._job_spans.get(routed_id)
        if spans is None:
            return
        trace = response.get("trace")
        if isinstance(trace, dict):
            response["trace"] = merge_trace_documents(
                trace, {"spans": spans},
            )
        if response.get("state") in _TERMINAL_STATES:
            self._job_spans.pop(routed_id, None)

    # ------------------------------------------------------------------
    # Cache verbs through the router
    # ------------------------------------------------------------------

    async def _handle_cache_verb(self, request, verb):
        """Route a client's ``repro-fleet/1`` verb onto the fleet.

        Keyed requests go to the key's home shard (failing over along
        the ring); a keyless ``cache`` aggregates every up shard's
        statistics into one fleet-wide answer.
        """
        key = request.get("key")
        if key is None and verb == "cache":
            return await self._aggregate_cache_stats()
        if not isinstance(key, str) or not key:
            return protocol.fleet_error(
                protocol.ERR_INVALID_REQUEST,
                "cache verbs need a string 'key'", verb=verb,
            )
        order = self._preferred_shards(key)
        for shard in order:
            try:
                return await self._shard_request(shard, dict(request))
            except _TRANSPORT_ERRORS:
                continue
        return protocol.fleet_error(
            protocol.ERR_SHARD_DOWN,
            "no shard is up to answer %r" % verb, verb=verb,
        )

    async def _aggregate_cache_stats(self):
        entries = hits = misses = stores = 0
        reached = False
        for shard in self.shards.values():
            if not shard.up:
                continue
            try:
                response = await self._shard_request(
                    shard, {"verb": "cache"},
                )
            except _TRANSPORT_ERRORS:
                continue
            if not response.get("ok"):
                continue
            reached = True
            entries += int(response.get("entries") or 0)
            hits += int(response.get("hits") or 0)
            misses += int(response.get("misses") or 0)
            stores += int(response.get("stores") or 0)
        if not reached:
            return protocol.fleet_error(
                protocol.ERR_SHARD_DOWN,
                "no shard is up to report cache statistics",
                verb="cache",
            )
        return protocol.fleet_response(
            "cache", entries=entries, hits=hits, misses=misses,
            stores=stores,
        )

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------

    async def _health_loop(self):
        while not self._stopping.is_set():
            try:
                await asyncio.wait_for(
                    self._stopping.wait(), self.health_interval,
                )
                return
            except asyncio.TimeoutError:
                pass
            for shard in list(self.shards.values()):
                if self._stopping.is_set():
                    return
                await self._ping_shard(shard)

    async def _ping_shard(self, shard):
        client = AsyncServiceClient(
            shard.address, timeout=self.shard_timeout,
        )
        try:
            async with client:
                await client.ping()
        except _TRANSPORT_ERRORS:
            self._note_shard_failure(shard)
            return False
        self._note_shard_success(shard)
        return True

    def _note_shard_failure(self, shard):
        shard.failures += 1
        self.recorder.count("fleet/shard-errors")
        if shard.up and shard.failures >= self.down_after:
            shard.up = False
            self.ring.remove(shard.address)
            self.recorder.count("fleet/shard-downs")
            self._update_ring_gauges()
            log.warning(
                "shard %s marked down after %d consecutive failures; "
                "ring now %d shard(s)",
                shard.address, shard.failures, len(self.ring),
            )

    def _note_shard_success(self, shard):
        shard.failures = 0
        if not shard.up:
            shard.up = True
            self.ring.add(shard.address)
            self.recorder.count("fleet/shard-ups")
            self._update_ring_gauges()
            log.info(
                "shard %s marked up; ring now %d shard(s)",
                shard.address, len(self.ring),
            )

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def _update_ring_gauges(self):
        occupancy = self.ring.occupancy()
        for address in self.shards:
            self.recorder.gauge(
                "fleet/ring-occupancy/%s" % address,
                occupancy.get(address, 0.0),
            )
        self.recorder.gauge("fleet/shards-up", len(self.ring))
        self.recorder.gauge("fleet/shards-configured", len(self.shards))

    def _update_hit_gauges(self):
        routed = self.recorder.counter("fleet/jobs-routed")
        if not routed:
            return
        self.recorder.gauge(
            "fleet/cache-hit-rate",
            self.recorder.counter("fleet/jobs-cached") / routed,
        )
        self.recorder.gauge(
            "fleet/cache-transfer-rate",
            self.recorder.counter("fleet/cache-transfers") / routed,
        )

    def stats_report(self):
        """Router-level ``repro-stats/1`` report (counters, ring and
        hit-rate gauges; uptime re-gauged per report so scrapes always
        see a fresh value)."""
        self.recorder.gauge(
            "fleet/uptime-seconds",
            time.monotonic() - self._started_monotonic,
        )
        return self.recorder.report()

    def prometheus_text(self):
        """The ``/metrics`` exposition: histograms plus stats counters
        and gauges (thread-safe; called from the scrape thread)."""
        return to_prometheus_text(
            self.metrics.report(), self.stats_report(),
            build_info={
                "component": "repro-router", "version": __version__,
            },
        )
