"""Tests for the independent resolution checker (and its mutation-hardness)."""

import pytest

from repro.proof import (
    ProofError,
    ProofStore,
    check_proof,
    check_refutation_of,
    proof_stats,
)
from repro.cnf import CNF


def refutation_store():
    """A small complete refutation of {(1 2), (1 -2), (-1 2), (-1 -2)}."""
    store = ProofStore()
    c1 = store.add_axiom([1, 2])
    c2 = store.add_axiom([1, -2])
    c3 = store.add_axiom([-1, 2])
    c4 = store.add_axiom([-1, -2])
    u1 = store.add_derived([1], [c1, (2, c2)])
    u2 = store.add_derived([-1], [c3, (2, c4)])
    store.add_derived([], [u1, (1, u2)])
    return store


AXIOMS = [[1, 2], [1, -2], [-1, 2], [-1, -2]]


class TestAccepts:
    def test_valid_refutation(self):
        result = check_proof(refutation_store(), axioms=AXIOMS)
        assert result.num_axioms == 4
        assert result.num_derived == 3
        assert result.num_resolutions == 3
        assert result.empty_clause_id is not None

    def test_without_axiom_set(self):
        check_proof(refutation_store())

    def test_non_refutation_allowed_when_not_required(self):
        store = ProofStore()
        a = store.add_axiom([1, 2])
        b = store.add_axiom([-1, 2])
        store.add_derived([2], [a, (1, b)])
        result = check_proof(store, require_empty=False)
        assert result.empty_clause_id is None

    def test_check_refutation_of_cnf(self):
        cnf = CNF(clauses=AXIOMS)
        check_refutation_of(refutation_store(), cnf)


class TestRejects:
    def test_foreign_axiom(self):
        with pytest.raises(ProofError, match="not a clause"):
            check_proof(refutation_store(), axioms=AXIOMS[:3])

    def test_missing_empty_clause(self):
        store = ProofStore()
        a = store.add_axiom([1, 2])
        b = store.add_axiom([-1, 2])
        store.add_derived([2], [a, (1, b)])
        with pytest.raises(ProofError, match="empty clause"):
            check_proof(store)

    def test_mutated_clause_detected(self):
        store = refutation_store()
        # Corrupt a derived clause behind the store's back.
        store._clauses[4] = (1, 2)
        with pytest.raises(ProofError, match="chain yields"):
            check_proof(store, axioms=AXIOMS)

    def test_mutated_pivot_detected(self):
        store = refutation_store()
        chain = store._chains[4]
        store._chains[4] = [chain[0], (1, chain[1][1])]
        with pytest.raises(ProofError):
            check_proof(store, axioms=AXIOMS)

    def test_mutated_antecedent_detected(self):
        store = refutation_store()
        chain = store._chains[6]
        store._chains[6] = [chain[0], (chain[1][0], 0)]
        with pytest.raises(ProofError):
            check_proof(store, axioms=AXIOMS)

    def test_unknown_kind(self):
        store = refutation_store()
        store._kinds[2] = "mystery"
        with pytest.raises(ProofError, match="unknown kind"):
            check_proof(store)


class TestStats:
    def test_counts(self):
        stats = proof_stats(refutation_store())
        assert stats.num_clauses == 7
        assert stats.num_axioms == 4
        assert stats.num_derived == 3
        assert stats.num_resolutions == 3
        assert stats.max_width == 2
        assert stats.depth == 2

    def test_avg_width(self):
        stats = proof_stats(refutation_store())
        # Derived clauses: (1), (-1), () -> mean 2/3.
        assert stats.avg_derived_width == pytest.approx(2.0 / 3.0)

    def test_empty_store(self):
        stats = proof_stats(ProofStore())
        assert stats.num_clauses == 0
        assert stats.avg_derived_width == 0.0
