"""Ablation D — certificate formats and checking costs.

For each suite pair, the engine's (trimmed) proof is measured in three
forms: in-memory resolution checking, reverse-unit-propagation (RUP)
checking, and on-disk size in DRUP vs. TraceCheck encodings. The shape:
resolution replay is the fastest check (pivots are explicit), RUP pays
for unit propagation but needs no antecedent bookkeeping in the file;
TraceCheck files are larger than DRUP (they store antecedents) and buy
back exactly that checking speed.
"""

import io
import time

import pytest

from repro.circuits import SUITE
from repro.proof.checker import check_proof
from repro.proof.compress import lower_units
from repro.proof.drup import check_rup_proof, write_drup
from repro.proof.stats import proof_stats
from repro.proof.tracecheck import write_tracecheck
from repro.proof.trim import trim

from conftest import report_table, run_sweep

_ROWS = {}


@pytest.mark.parametrize("pair", SUITE, ids=lambda p: p.name)
def test_certificate_costs(benchmark, pair, engine_cache):
    result = benchmark.pedantic(
        lambda: run_sweep(engine_cache, pair), rounds=1, iterations=1
    )
    assert result.equivalent is True
    trimmed, _ = trim(result.proof)
    start = time.perf_counter()
    check_proof(trimmed, axioms=result.cnf.clauses)
    resolution_seconds = time.perf_counter() - start
    start = time.perf_counter()
    check_rup_proof(trimmed, axioms=result.cnf.clauses)
    rup_seconds = time.perf_counter() - start
    drup_buffer = io.StringIO()
    write_drup(trimmed, drup_buffer)
    trace_buffer = io.StringIO()
    write_tracecheck(trimmed, trace_buffer)
    lowered, _ = lower_units(trimmed)
    check_proof(lowered, axioms=result.cnf.clauses)
    _ROWS[pair.name] = [
        pair.name,
        len(trimmed),
        proof_stats(trimmed).num_resolutions,
        proof_stats(lowered).num_resolutions,
        "%.4f" % resolution_seconds,
        "%.4f" % rup_seconds,
        len(drup_buffer.getvalue()),
        len(trace_buffer.getvalue()),
    ]
    report_table(
        "Ablation D: certificate costs (trimmed proofs; LowerUnits compression)",
        ["pair", "clauses", "res", "res(LU)", "res check(s)",
         "rup check(s)", "drup bytes", "tracecheck bytes"],
        [_ROWS[name] for name in sorted(_ROWS)],
        notes=[
            "DRUP omits antecedents (smaller file, checker re-propagates)",
            "TraceCheck stores antecedents (bigger file, cheaper check)",
            "res(LU) = resolution steps after LowerUnits (also re-checked);"
            " a wash here because the solver's in-analysis level-0"
            " elimination already leaves each unit a single use",
        ],
    )
