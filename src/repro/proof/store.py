"""Resolution proof store.

A proof is a DAG of clauses. Leaves are *axioms* (clauses of the original
CNF). Internal nodes are *derived* clauses, each annotated with a linear
(trivial) resolution chain: a first antecedent followed by a sequence of
``(pivot variable, antecedent)`` steps. Trivial chains are exactly what
CDCL conflict analysis produces, and chaining them composes into general
resolution, so this representation loses no generality while keeping
checking simple and linear.

The store assigns dense integer ids. Ids are stable: deleting a clause from
a SAT solver's working set never removes it from the proof (the proof may
still reference it).

Example:
    >>> store = ProofStore()
    >>> a = store.add_axiom((1, 2))
    >>> b = store.add_axiom((-1, 2))
    >>> c = store.add_derived((2,), [a, (1, b)])
    >>> store.clause(c)
    (2,)
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, \
    Sequence, Tuple

from ..cnf.clause import normalize_clause

AXIOM = "axiom"
DERIVED = "derived"

#: A clause: sorted tuple of distinct nonzero DIMACS literals.
Clause = Tuple[int, ...]

#: A derivation chain ``[first_id, (pivot, id), ...]``: one int followed
#: by ``(pivot, antecedent_id)`` pairs. Typed loosely because the two
#: element shapes differ positionally; the store validates the structure
#: at append time.
Chain = List[Any]


class ProofError(Exception):
    """Raised when a proof object or derivation is invalid.

    Attributes:
        clause_id: id of the offending clause when the failure is
            attributable to one (``None`` otherwise). The parallel
            checker uses it to report the *smallest* failing id, making
            its error deterministic and identical to the sequential
            checker's.
        rule_id: stable machine-readable identifier of the violated
            invariant (e.g. ``"proof.forward-ref"``). The ids are shared
            with the static linter in :mod:`repro.analyze.proof_lint`, so
            a replay failure and the corresponding lint finding name the
            same rule. ``None`` for errors predating a rule assignment.
        chain: the offending derivation chain, when one is involved.
    """

    def __init__(
        self,
        message: str,
        clause_id: Optional[int] = None,
        rule_id: Optional[str] = None,
        chain: Optional[Chain] = None,
    ) -> None:
        Exception.__init__(self, message)
        self.clause_id = clause_id
        self.rule_id = rule_id
        self.chain = chain

    def render(self) -> str:
        """Uniform one-line rendering: ``[rule] message (clause N)``.

        Both CLIs print proof errors through this method so checker and
        linter failures look the same regardless of which layer caught
        the defect first.
        """
        parts = []
        if self.rule_id is not None:
            parts.append("[%s]" % self.rule_id)
        parts.append(str(self))
        if self.clause_id is not None and "clause %d" % self.clause_id not in str(self):
            parts.append("(clause %d)" % self.clause_id)
        return " ".join(parts)


def resolve(clause_a: Clause, clause_b: Clause, pivot_var: int) -> Clause:
    """Resolve two clauses on *pivot_var*.

    One clause must contain ``pivot_var`` positively and the other
    negatively; the resolvent is the union minus the pivot literals.

    Raises:
        ProofError: when the pivot does not occur with opposite phases, or
            the resolvent is tautological (a sign of a malformed chain).
    """
    if pivot_var in clause_a and -pivot_var in clause_b:
        pos, neg = clause_a, clause_b
    elif pivot_var in clause_b and -pivot_var in clause_a:
        pos, neg = clause_b, clause_a
    else:
        raise ProofError(
            "pivot %d does not occur with opposite phases in %r and %r"
            % (pivot_var, clause_a, clause_b),
            rule_id="proof.pivot-phase",
        )
    merged = set(pos)
    merged.discard(pivot_var)
    for lit in neg:
        if lit != -pivot_var:
            merged.add(lit)
    for lit in merged:
        if -lit in merged:
            raise ProofError(
                "tautological resolvent on pivot %d from %r and %r"
                % (pivot_var, clause_a, clause_b),
                rule_id="proof.tautology",
            )
    return tuple(sorted(merged))


class ProofStore:
    """Container for one resolution proof under construction.

    Args:
        validate: when true, every :meth:`add_derived` replays its chain
            immediately and rejects mismatches. Slower; intended for tests
            and debugging. The independent checker in
            :mod:`repro.proof.checker` performs the same replay after the
            fact regardless of this flag.
        recorder: optional :class:`~repro.instrument.recorder.Recorder`;
            the store counts every appended clause (axiom/derived split
            and resolution-step totals) into the ``proof/*`` counter
            namespace as it grows.
    """

    def __init__(self, validate: bool = False, recorder: Optional[Any] = None) -> None:
        self.validate = validate
        self.recorder = recorder
        self._clauses: List[Clause] = []
        self._kinds: List[str] = []
        self._chains: List[Optional[Chain]] = []
        self._axiom_ids: Dict[Clause, int] = {}
        # O(1) growth counters; stores reach 1e5-1e6 clauses on the
        # larger benchmarks, so nothing here may rescan the clause list.
        self._num_axioms = 0
        self._num_derived = 0
        self._num_resolutions = 0
        self._empty_id: Optional[int] = None

    def __len__(self) -> int:
        return len(self._clauses)

    @property
    def num_axioms(self) -> int:
        """Number of axiom clauses."""
        return self._num_axioms

    @property
    def num_derived(self) -> int:
        """Number of derived clauses."""
        return self._num_derived

    @property
    def num_resolutions(self) -> int:
        """Total resolution steps across all derivation chains."""
        return self._num_resolutions

    def clause(self, clause_id: int) -> Clause:
        """The clause tuple stored under *clause_id*."""
        return self._clauses[clause_id]

    def kind(self, clause_id: int) -> str:
        """``'axiom'`` or ``'derived'``."""
        return self._kinds[clause_id]

    def chain(self, clause_id: int) -> Optional[Chain]:
        """The derivation chain of a derived clause (``None`` for axioms).

        A chain is ``[first_id, (pivot1, id1), (pivot2, id2), ...]``.
        """
        return self._chains[clause_id]

    def ids(self) -> range:
        """Iterate all clause ids in insertion (derivation) order."""
        return range(len(self._clauses))

    def tables(
        self,
    ) -> Tuple[Sequence[Clause], Sequence[str], Sequence[Optional[Chain]]]:
        """Read-only ``(clauses, kinds, chains)`` column views.

        Bulk accessor for analysis passes that index every clause; the
        per-id accessors cost a method call each, which dominates tight
        loops over large proofs. Callers must not mutate the returned
        sequences.
        """
        return self._clauses, self._kinds, self._chains

    def add_axiom(self, lits: Iterable[int]) -> int:
        """Register an axiom clause and return its id.

        Re-registering an identical axiom returns the existing id, so the
        CNF-loading code can be called idempotently.
        """
        clause = normalize_clause(lits)
        existing = self._axiom_ids.get(clause)
        if existing is not None:
            return existing
        clause_id = self._append(clause, AXIOM, None)
        self._axiom_ids[clause] = clause_id
        return clause_id

    def add_derived(self, lits: Iterable[int], chain: Iterable[Any]) -> int:
        """Register a derived clause with its resolution chain.

        Args:
            lits: the clause literals.
            chain: ``[first_id, (pivot, id), ...]`` — at least one
                resolution step.

        Returns:
            The new clause id.
        """
        clause = tuple(sorted(set(lits)))
        chain = list(chain)
        if len(chain) < 2:
            raise ProofError(
                "derivation chain needs at least two antecedents",
                rule_id="proof.chain-arity",
                chain=chain,
            )
        first = chain[0]
        if not isinstance(first, int):
            raise ProofError(
                "chain must start with a clause id",
                rule_id="proof.chain-arity",
                chain=chain,
            )
        for step in chain[1:]:
            if not (isinstance(step, tuple) and len(step) == 2):
                raise ProofError(
                    "chain steps must be (pivot, id) pairs",
                    rule_id="proof.chain-arity",
                    chain=chain,
                )
        next_id = len(self._clauses)
        for ref in self._chain_refs(chain):
            if not 0 <= ref < next_id:
                raise ProofError(
                    "chain references clause %d not yet derived" % ref,
                    rule_id="proof.forward-ref",
                    chain=chain,
                )
        if self.validate:
            replayed = self.replay_chain(chain)
            if replayed != clause:
                raise ProofError(
                    "chain replays to %r, not the claimed %r" % (replayed, clause),
                    rule_id="proof.chain-mismatch",
                    chain=chain,
                )
        return self._append(clause, DERIVED, chain)

    def replay_chain(self, chain: Chain) -> Clause:
        """Replay a chain and return the resulting clause."""
        current = self._clauses[chain[0]]
        for pivot, clause_id in chain[1:]:
            current = resolve(current, self._clauses[clause_id], pivot)
        return current

    def _append(self, clause: Clause, kind: str, chain: Optional[Chain]) -> int:
        clause_id = len(self._clauses)
        if chain is not None:
            for ref in self._chain_refs(chain):
                if not 0 <= ref < clause_id:
                    raise ProofError(
                        "chain references clause %d not yet derived" % ref,
                        rule_id="proof.forward-ref",
                        chain=chain,
                    )
        self._clauses.append(clause)
        self._kinds.append(kind)
        self._chains.append(chain)
        steps = 0 if chain is None else len(chain) - 1
        if kind == AXIOM:
            self._num_axioms += 1
        else:
            self._num_derived += 1
            self._num_resolutions += steps
        if not clause and self._empty_id is None:
            self._empty_id = clause_id
        recorder = self.recorder
        if recorder is not None and recorder.enabled:
            recorder.count("proof/clauses")
            if kind == AXIOM:
                recorder.count("proof/axioms")
            else:
                recorder.count("proof/derived")
                recorder.count("proof/resolutions", steps)
        return clause_id

    @staticmethod
    def _chain_refs(chain: Chain) -> Iterator[int]:
        yield chain[0]
        for _, clause_id in chain[1:]:
            yield clause_id

    def antecedents(self, clause_id: int) -> Tuple[int, ...]:
        """Ids referenced by the derivation of *clause_id* (empty for axioms)."""
        chain = self._chains[clause_id]
        if chain is None:
            return ()
        return tuple(self._chain_refs(chain))

    def find_empty_clause(self) -> Optional[int]:
        """Id of the first empty clause, or ``None``.

        O(1): the id is cached at :meth:`_append` time rather than
        rescanning the clause list (which reaches 10^5-10^6 entries on
        the larger benchmarks) on every call.
        """
        return self._empty_id

    def derive_resolvent(self, id_a: int, id_b: int, pivot_var: int) -> int:
        """Resolve two stored clauses and record the result. Returns the id."""
        clause = resolve(self._clauses[id_a], self._clauses[id_b], pivot_var)
        return self._append(clause, DERIVED, [id_a, (pivot_var, id_b)])
