"""Hash-ring determinism, rebalance, and occupancy tests."""

import pytest

from repro.fleet.ring import DEFAULT_REPLICAS, HashRing, ring_point

SHARDS = ["10.0.0.1:7711", "10.0.0.2:7711", "10.0.0.3:7711"]


def keys(count):
    return ["%040x" % (1099511627776 * i + 17) for i in range(count)]


class TestDeterminism:
    def test_same_members_route_identically_across_instances(self):
        # A router restart rebuilds the ring from configuration alone;
        # every key must land where it did before.
        first = HashRing(SHARDS)
        second = HashRing(list(reversed(SHARDS)))
        for key in keys(500):
            assert first.route(key) == second.route(key)

    def test_insertion_order_does_not_change_preference(self):
        first = HashRing(SHARDS)
        second = HashRing(list(reversed(SHARDS)))
        for key in keys(100):
            assert first.preference(key) == second.preference(key)

    def test_ring_points_are_stable_values(self):
        # blake2b of the label: process- and platform-independent.
        assert ring_point("x") == ring_point("x")
        assert ring_point("x") != ring_point("y")

    def test_add_remove_add_restores_mapping(self):
        ring = HashRing(SHARDS)
        before = {key: ring.route(key) for key in keys(300)}
        ring.remove(SHARDS[1])
        ring.add(SHARDS[1])
        assert before == {key: ring.route(key) for key in keys(300)}


class TestRebalance:
    def test_removal_moves_only_the_removed_shards_keys(self):
        ring = HashRing(SHARDS)
        sample = keys(1000)
        before = {key: ring.route(key) for key in sample}
        ring.remove(SHARDS[0])
        for key in sample:
            owner = ring.route(key)
            if before[key] == SHARDS[0]:
                assert owner != SHARDS[0]
            else:
                # Bounded movement: keys of surviving shards stay put.
                assert owner == before[key]

    def test_orphaned_keys_go_to_their_failover_successor(self):
        ring = HashRing(SHARDS)
        sample = keys(1000)
        successors = {key: ring.preference(key) for key in sample}
        ring.remove(SHARDS[2])
        for key in sample:
            expected = [
                shard for shard in successors[key] if shard != SHARDS[2]
            ][0]
            assert ring.route(key) == expected

    def test_addition_only_steals_keys_for_the_new_shard(self):
        ring = HashRing(SHARDS[:2])
        sample = keys(1000)
        before = {key: ring.route(key) for key in sample}
        ring.add(SHARDS[2])
        moved = [
            key for key in sample if ring.route(key) != before[key]
        ]
        assert moved, "a new shard must take some keys"
        assert all(ring.route(key) == SHARDS[2] for key in moved)


class TestShape:
    def test_occupancy_sums_to_one_and_is_roughly_even(self):
        ring = HashRing(SHARDS)
        occupancy = ring.occupancy()
        assert set(occupancy) == set(SHARDS)
        assert sum(occupancy.values()) == pytest.approx(1.0)
        for fraction in occupancy.values():
            # 64 virtual nodes keep a 3-shard ring within loose bounds.
            assert 0.05 < fraction < 0.8

    def test_preference_lists_every_member_home_first(self):
        ring = HashRing(SHARDS)
        for key in keys(50):
            order = ring.preference(key)
            assert sorted(order) == sorted(SHARDS)
            assert order[0] == ring.route(key)

    def test_empty_ring_routes_nowhere(self):
        ring = HashRing()
        assert len(ring) == 0
        assert not ring
        assert ring.preference("00ff") == []
        with pytest.raises(LookupError):
            ring.route("00ff")

    def test_membership_operations_are_idempotent(self):
        ring = HashRing(SHARDS)
        assert not ring.add(SHARDS[0])
        assert ring.remove(SHARDS[0])
        assert not ring.remove(SHARDS[0])
        assert ring.add(SHARDS[0])
        assert SHARDS[0] in ring

    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(SHARDS, replicas=0)
        assert HashRing(SHARDS, replicas=1).replicas == 1
        assert HashRing(SHARDS).replicas == DEFAULT_REPLICAS
