"""``repro-obs``: headless fleet telemetry aggregator and exporter.

Examples::

    repro-obs --router 127.0.0.1:7700 \\
        --shard 127.0.0.1:7711 --shard 127.0.0.1:7712
    repro-obs --shard 127.0.0.1:7711 --once \\
        --snapshot-json obs.json --prometheus-out obs.prom
    repro-obs --shard /tmp/cec.sock --listen 127.0.0.1:9309

The aggregator polls every target's ``stats``/``metrics``/``progress``
verbs each round, keeps bounded ring-buffer time series and SLO burn
rates, and re-exports one merged Prometheus exposition — on
``--listen`` as an HTTP ``/metrics`` endpoint, on ``--prometheus-out``
as a file rewritten each round. ``--snapshot-json`` writes the
``repro-obs/1`` document on exit (and each round while running).

Targets may be bare addresses (named ``router0``/``shard0``... in
order) or ``NAME=ADDR`` pairs.
"""

import argparse
import json
import signal
import sys
import time

from .. import __version__
from ..exit_codes import EXIT_INVALID_INPUT, EXIT_NEGATIVE, EXIT_OK
from ..instrument import configure_logging, get_logger
from ..service.metrics_http import MetricsHTTPServer
from .aggregator import (
    DEFAULT_POLL_INTERVAL,
    ObsAggregator,
    validate_obs_snapshot,
)

log = get_logger("obs.cli")


def parse_targets(specs, default_prefix):
    """``NAME=ADDR`` or bare ``ADDR`` specs into ``(name, address)``
    pairs; bare addresses are named ``<prefix>0``, ``<prefix>1``..."""
    pairs = []
    for index, spec in enumerate(specs):
        name, sep, address = spec.partition("=")
        if sep and name:
            pairs.append((name, address))
        else:
            pairs.append(("%s%d" % (default_prefix, index), spec))
    return pairs


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Fleet telemetry aggregator: polls repro-serve and "
        "repro-router endpoints, tracks time series and SLO burn "
        "rates, re-exports one merged Prometheus exposition and a "
        "repro-obs/1 snapshot.",
    )
    parser.add_argument(
        "--version", action="version", version="%(prog)s " + __version__,
    )
    parser.add_argument(
        "--shard", action="append", default=[], metavar="[NAME=]ADDR",
        help="a repro-serve target (repeatable)",
    )
    parser.add_argument(
        "--router", action="append", default=[], metavar="[NAME=]ADDR",
        help="a repro-router target (repeatable; polled for "
        "stats/metrics/queue depth, not tail-sampled)",
    )
    parser.add_argument(
        "--interval", type=float, default=DEFAULT_POLL_INTERVAL,
        metavar="SECONDS",
        help="seconds between poll rounds (default %(default)s)",
    )
    parser.add_argument(
        "--rounds", type=int, default=0, metavar="N",
        help="stop after N poll rounds (0 = run until interrupted)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="poll one round, write outputs, exit (same as --rounds 1)",
    )
    parser.add_argument(
        "--latency-slo", type=float, default=None, metavar="SECONDS",
        help="latency-SLO good-job bound (default 5.0)",
    )
    parser.add_argument(
        "--snapshot-json", metavar="PATH", default=None,
        help="write the repro-obs/1 snapshot here every round",
    )
    parser.add_argument(
        "--prometheus-out", metavar="PATH", default=None,
        help="rewrite the merged Prometheus exposition here every round",
    )
    parser.add_argument(
        "--listen", metavar="ADDR", default=None,
        help="serve the merged exposition on http://ADDR/metrics "
        "(host:port; port 0 picks a free one)",
    )
    parser.add_argument(
        "--no-traces", action="store_true",
        help="do not fetch stitched traces for tail-sampled jobs",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit structured JSON log lines instead of plain text",
    )
    parser.add_argument(
        "--log-level", default="info", metavar="LEVEL",
        choices=("debug", "info", "warning", "error"),
        help="log verbosity (default %(default)s)",
    )
    return parser


def build_aggregator(args):
    """An :class:`ObsAggregator` from parsed CLI arguments."""
    kwargs = {
        "shards": parse_targets(args.shard, "shard"),
        "routers": parse_targets(args.router, "router"),
        "interval_seconds": args.interval,
        "fetch_traces": not args.no_traces,
    }
    if args.latency_slo is not None:
        kwargs["latency_slo_seconds"] = args.latency_slo
    return ObsAggregator(**kwargs)


def write_outputs(aggregator, args):
    """Write the snapshot/exposition files configured by *args*."""
    if args.snapshot_json:
        snapshot = validate_obs_snapshot(aggregator.snapshot())
        with open(args.snapshot_json, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.prometheus_out:
        with open(args.prometheus_out, "w") as handle:
            handle.write(aggregator.prometheus_text())


def main(argv=None):
    args = build_parser().parse_args(argv)
    configure_logging(json_logs=args.log_json, level=args.log_level)
    if not args.shard and not args.router:
        print("repro-obs: need at least one --shard or --router",
              file=sys.stderr)
        return EXIT_INVALID_INPUT
    if args.interval <= 0:
        print("repro-obs: --interval must be > 0", file=sys.stderr)
        return EXIT_INVALID_INPUT
    rounds = 1 if args.once else args.rounds
    if rounds < 0:
        print("repro-obs: --rounds must be >= 0", file=sys.stderr)
        return EXIT_INVALID_INPUT
    try:
        aggregator = build_aggregator(args)
    except ValueError as exc:
        print("repro-obs: %s" % exc, file=sys.stderr)
        return EXIT_INVALID_INPUT

    stopping = []

    def _stop(signum, frame):
        stopping.append(signum)

    signal.signal(signal.SIGINT, _stop)
    signal.signal(signal.SIGTERM, _stop)

    endpoint = None
    if args.listen is not None:
        host, _, port = args.listen.rpartition(":")
        try:
            endpoint = MetricsHTTPServer(
                host or "127.0.0.1", int(port), aggregator.prometheus_text,
            ).start()
        except (OSError, ValueError) as exc:
            print("repro-obs: cannot bind %s: %s" % (args.listen, exc),
                  file=sys.stderr)
            return EXIT_INVALID_INPUT
        log.info("merged exposition on http://%s/metrics",
                 endpoint.address)

    answered = 0
    completed = 0
    try:
        while not stopping:
            answered = aggregator.poll_once()
            completed += 1
            log.info(
                "poll %d: %d/%d targets answered, queue=%d",
                completed, answered, len(aggregator.targets),
                aggregator.queue_depth(),
            )
            write_outputs(aggregator, args)
            if rounds and completed >= rounds:
                break
            time.sleep(args.interval)
    finally:
        if endpoint is not None:
            endpoint.close()
        write_outputs(aggregator, args)
    return EXIT_OK if answered else EXIT_NEGATIVE


if __name__ == "__main__":
    sys.exit(main())
