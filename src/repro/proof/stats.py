"""Proof statistics: sizes, widths, depth.

These are the quantities the paper's tables report for each produced
proof: total clauses, derived clauses, resolution steps, maximum clause
width, and derivation depth (longest antecedent path from an axiom to the
empty clause).
"""

from __future__ import annotations

from typing import Optional, Set

from .store import AXIOM, ProofStore


class ProofStats:
    """Aggregate statistics of one resolution proof.

    Attributes:
        num_clauses: total clauses in the store.
        num_axioms: axiom clauses.
        num_derived: derived clauses.
        num_resolutions: total resolution steps across all chains.
        max_width: widest clause.
        avg_derived_width: mean width over derived clauses (0 when none).
        depth: longest path (counted in derived clauses) from an axiom to
            any clause.
    """

    def __init__(
        self,
        num_clauses: int,
        num_axioms: int,
        num_derived: int,
        num_resolutions: int,
        max_width: int,
        avg_derived_width: float,
        depth: int,
    ) -> None:
        self.num_clauses = num_clauses
        self.num_axioms = num_axioms
        self.num_derived = num_derived
        self.num_resolutions = num_resolutions
        self.max_width = max_width
        self.avg_derived_width = avg_derived_width
        self.depth = depth

    def __repr__(self) -> str:
        return (
            "ProofStats(clauses=%d, axioms=%d, derived=%d, resolutions=%d, "
            "max_width=%d, depth=%d)"
            % (
                self.num_clauses,
                self.num_axioms,
                self.num_derived,
                self.num_resolutions,
                self.max_width,
                self.depth,
            )
        )


def core_axioms(store: ProofStore, root_id: Optional[int] = None) -> Set[int]:
    """Axiom clause ids in the antecedent cone of the (empty) root.

    The *unsatisfiable core* of the refutation: the subset of original
    clauses the proof actually touches. Useful both as a table column and
    for debugging over-constrained encodings.
    """
    from .trim import needed_ids

    return {
        clause_id
        for clause_id in needed_ids(store, root_id)
        if store.kind(clause_id) == AXIOM
    }


def proof_stats(store: ProofStore) -> ProofStats:
    """Compute :class:`ProofStats` for *store* in one pass."""
    num_axioms = 0
    num_derived = 0
    num_resolutions = 0
    max_width = 0
    derived_width_total = 0
    depth = [0] * len(store)
    max_depth = 0
    for clause_id in store.ids():
        clause = store.clause(clause_id)
        max_width = max(max_width, len(clause))
        if store.kind(clause_id) == AXIOM:
            num_axioms += 1
            continue
        num_derived += 1
        derived_width_total += len(clause)
        chain = store.chain(clause_id)
        num_resolutions += len(chain) - 1 if chain is not None else 0
        node_depth = 1 + max(
            depth[ref] for ref in store.antecedents(clause_id)
        )
        depth[clause_id] = node_depth
        max_depth = max(max_depth, node_depth)
    avg_width = derived_width_total / float(num_derived) if num_derived else 0.0
    return ProofStats(
        num_clauses=len(store),
        num_axioms=num_axioms,
        num_derived=num_derived,
        num_resolutions=num_resolutions,
        max_width=max_width,
        avg_derived_width=avg_width,
        depth=max_depth,
    )
