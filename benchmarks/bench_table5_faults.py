"""Table 5 (extension) — fault-detection campaign.

The refutation half of the checker's contract: inject sampled gate-level
faults into each benchmark's circuit A and run the sweeping engine on
golden-vs-faulty. Every non-redundant fault must be *detected* (refuted
with a counterexample); redundant faults must be *proved* equivalent.
Detection is cross-checked against random simulation so the table also
records how many faults needed SAT to find (simulation-resistant bugs).
"""

import random

import pytest

from repro.aig.simulate import random_equivalence_test
from repro.circuits import by_name
from repro.circuits.faults import enumerate_faults, inject
from repro.core.cec import check_equivalence
from repro.core.fraig import SweepOptions

from conftest import report_table

# A representative cross-section (full-suite campaigns would be slow).
PAIR_NAMES = ["add08", "mul04", "cmp10", "alu06", "sbsh08", "par16"]
_ROWS = {}


@pytest.mark.parametrize("name", PAIR_NAMES)
def test_fault_campaign(benchmark, name):
    pair = by_name(name)
    golden, _ = pair.build()
    rng = random.Random(42)
    faults = enumerate_faults(golden, rng=rng, per_kind=3)

    def campaign():
        outcomes = []
        for fault in faults:
            mutated = inject(golden, fault)
            sim_caught = (
                random_equivalence_test(golden, mutated, rounds=64)
                is not None
            )
            result = check_equivalence(golden, mutated, SweepOptions())
            outcomes.append((fault, result, sim_caught))
        return outcomes

    outcomes = benchmark.pedantic(campaign, rounds=1, iterations=1)
    detected = sum(1 for _, r, _ in outcomes if r.equivalent is False)
    redundant = sum(1 for _, r, _ in outcomes if r.equivalent is True)
    sim_missed = sum(
        1
        for _, r, sim_caught in outcomes
        if r.equivalent is False and not sim_caught
    )
    # Soundness: every verdict must come with a valid witness/proof.
    for fault, result, _ in outcomes:
        if result.equivalent is False:
            mutated = inject(golden, fault)
            assert golden.evaluate(result.counterexample) != \
                mutated.evaluate(result.counterexample), fault
    _ROWS[name] = [
        name,
        len(outcomes),
        detected,
        redundant,
        sim_missed,
    ]
    report_table(
        "Table 5 (extension): fault-detection campaign (sampled faults)",
        ["pair", "faults", "detected", "redundant", "SAT-only detections"],
        [_ROWS[key] for key in sorted(_ROWS)],
        notes=[
            "redundant = fault proved functionally invisible (with proof)",
            "SAT-only = counterexample missed by 64 random patterns",
        ],
    )
