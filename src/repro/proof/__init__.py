"""Resolution proofs: store, checkers, trimming, statistics, DRUP."""

from .arena import ArenaUnsupported, ClauseArena
from .compress import lower_units
from .checker import CheckResult, check_clause, check_proof, \
    check_refutation_of
from .drup import check_rup_proof, write_drup
from .parallel import CheckerPool, check_proof_parallel, \
    close_checker_pool, get_checker_pool, resolve_jobs
from .interpolant import Interpolant, InterpolationError, interpolate, \
    partition_vars
from .stats import ProofStats, proof_stats
from .store import AXIOM, DERIVED, ProofError, ProofStore, resolve
from .tracecheck import dumps_tracecheck, parse_tracecheck, \
    read_tracecheck, write_tracecheck
from .trim import levelize, needed_ids, trim, trim_ratio

__all__ = [
    "AXIOM",
    "ArenaUnsupported",
    "CheckResult",
    "CheckerPool",
    "ClauseArena",
    "DERIVED",
    "Interpolant",
    "InterpolationError",
    "ProofError",
    "ProofStats",
    "ProofStore",
    "check_clause",
    "check_proof",
    "check_proof_parallel",
    "check_refutation_of",
    "check_rup_proof",
    "close_checker_pool",
    "dumps_tracecheck",
    "get_checker_pool",
    "resolve_jobs",
    "levelize",
    "lower_units",
    "interpolate",
    "needed_ids",
    "parse_tracecheck",
    "partition_vars",
    "proof_stats",
    "read_tracecheck",
    "resolve",
    "trim",
    "trim_ratio",
    "write_drup",
    "write_tracecheck",
]
