"""End-to-end tests of the fleet router over in-process shards.

Two real :class:`CecServer` shards (``workers=0``) on Unix sockets
sit behind a :class:`FleetRouter` running on a dedicated event-loop
thread; an unmodified synchronous :class:`ServiceClient` talks to the
router as if it were one server.
"""

import asyncio
import io
import json
import socket
import threading
import urllib.request

import pytest

from repro.aig.aiger import read_aag, write_aag
from repro.circuits import kogge_stone_adder, ripple_carry_adder
from repro.fleet import FleetRouter, HashRing
from repro.instrument import Recorder
from repro.service import CecServer, ServiceClient, ServiceError
from repro.service import protocol
from repro.service.cache import cache_key


def aag_text(aig):
    buffer = io.StringIO()
    write_aag(aig, buffer)
    return buffer.getvalue()


@pytest.fixture()
def adder_pair():
    return (
        aag_text(ripple_carry_adder(4)), aag_text(kogge_stone_adder(4))
    )


class RouterHarness:
    """A FleetRouter on its own event-loop thread, plus its shards."""

    def __init__(self, tmp_path, **router_kwargs):
        self.addresses = [
            str(tmp_path / "shard-a.sock"), str(tmp_path / "shard-b.sock"),
        ]
        self.shards = {}
        for address in self.addresses:
            self.start_shard(address, tmp_path)
        self.router_address = str(tmp_path / "router.sock")
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, daemon=True,
        )
        self.thread.start()
        router_kwargs.setdefault("health_interval", 0.2)
        self.router = self.call(
            self._start_router(self.router_address, router_kwargs)
        )

    async def _start_router(self, address, kwargs):
        router = FleetRouter(address, self.addresses, **kwargs)
        await router.start()
        return router

    def call(self, coroutine, timeout=30.0):
        """Run *coroutine* on the router loop from the test thread."""
        return asyncio.run_coroutine_threadsafe(
            coroutine, self.loop,
        ).result(timeout)

    def start_shard(self, address, tmp_path):
        cache_dir = str(tmp_path) + address.replace("/", "_") + ".cache"
        shard = CecServer(address, workers=0, cache_dir=cache_dir)
        shard.start()
        self.shards[address] = shard
        return shard

    def stop_shard(self, address):
        self.shards.pop(address).close()

    def home_of(self, key):
        return HashRing(self.addresses).route(key)

    def close(self):
        try:
            self.call(self.router.close())
        finally:
            self.loop.call_soon_threadsafe(self.loop.stop)
            self.thread.join(timeout=10)
            for shard in self.shards.values():
                shard.close()

    def client(self):
        return ServiceClient(self.router_address)

    def counters(self):
        return self.router.stats_report()["counters"]


@pytest.fixture()
def fleet(tmp_path):
    harness = RouterHarness(tmp_path)
    yield harness
    harness.close()


class TestRouting:
    def test_ping_and_submit_roundtrip(self, fleet, adder_pair):
        with fleet.client() as client:
            ping = client.ping()
            assert ping["ok"] and ping["verb"] == "ping"
            result, response = client.check(*adder_pair)
        assert result.equivalent is True
        assert "@" in response["job"]
        assert fleet.counters()["fleet/jobs-routed"] == 1

    def test_job_id_names_the_owning_shard(self, fleet, adder_pair):
        a = read_aag(io.StringIO(adder_pair[0]))
        b = read_aag(io.StringIO(adder_pair[1]))
        home = fleet.home_of(cache_key(a, b))
        with fleet.client() as client:
            submitted = client.submit(*adder_pair)
            job = submitted["job"]
            assert job.endswith("@" + home)
            # status/result resolve through the router.
            final = client.result(job, wait=True)
        assert final["ok"] and final["job"] == job
        assert final["state"] == "done"

    def test_status_of_unsuffixed_job_id_is_unknown(self, fleet):
        with fleet.client() as client:
            with pytest.raises(ServiceError) as excinfo:
                client.status("j000001")
        assert excinfo.value.code == protocol.ERR_UNKNOWN_JOB

    def test_unknown_verb_is_rejected(self, fleet):
        with fleet.client() as client:
            with pytest.raises(ServiceError) as excinfo:
                client.request({"verb": "frobnicate"})
        assert excinfo.value.code == protocol.ERR_INVALID_REQUEST

    def test_malformed_line_gets_structured_error(self, fleet):
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(10)
            sock.connect(fleet.router_address)
            sock.sendall(b"this is not json\n")
            response = json.loads(sock.makefile("rb").readline())
        assert response["ok"] is False
        assert response["error"]["code"] == protocol.ERR_INVALID_REQUEST


class TestCrossShardCache:
    def test_peer_hit_is_transferred_home(self, fleet, adder_pair):
        a = read_aag(io.StringIO(adder_pair[0]))
        b = read_aag(io.StringIO(adder_pair[1]))
        key = cache_key(a, b)
        home = fleet.home_of(key)
        other = [s for s in fleet.addresses if s != home][0]
        # Seed the NON-home shard's cache behind the router's back.
        with ServiceClient(other) as direct:
            _, response = direct.check(*adder_pair)
            assert response.get("cached") is False
        # The router must move the entry home and hit there.
        with fleet.client() as client:
            _, response = client.check(*adder_pair)
        assert response.get("cached") is True
        counters = fleet.counters()
        assert counters["fleet/cache-transfers"] == 1
        assert counters["fleet/jobs-cached"] == 1
        # Both shards now hold the entry.
        with ServiceClient(home) as direct:
            found, meta = direct.cache_probe(key)
        assert found and meta["verdict"] == "equivalent"

    def test_repeat_submit_hits_home_without_transfer(
        self, fleet, adder_pair,
    ):
        with fleet.client() as client:
            _, first = client.check(*adder_pair)
            _, second = client.check(*adder_pair)
        assert first.get("cached") is False
        assert second.get("cached") is True
        counters = fleet.counters()
        assert counters.get("fleet/cache-transfers", 0) == 0
        assert counters["fleet/cache-home-hits"] == 1

    def test_cache_stats_aggregate_across_shards(self, fleet, adder_pair):
        with fleet.client() as client:
            client.check(*adder_pair)
            stats = client.cache_stats()
            assert stats["entries"] == 1
            assert stats["stores"] == 1
            a = read_aag(io.StringIO(adder_pair[0]))
            b = read_aag(io.StringIO(adder_pair[1]))
            found, meta = client.cache_probe(cache_key(a, b))
        assert found and meta["verdict"] == "equivalent"

    def test_cache_get_routes_to_the_home_shard(self, fleet, adder_pair):
        a = read_aag(io.StringIO(adder_pair[0]))
        b = read_aag(io.StringIO(adder_pair[1]))
        key = cache_key(a, b)
        with fleet.client() as client:
            client.check(*adder_pair)
            result, meta = client.cache_get(key)
        assert result is not None and result["equivalent"] is True
        assert meta["key"] == key


class TestTracing:
    def test_one_trace_id_spans_client_router_shard(
        self, fleet, adder_pair,
    ):
        recorder = Recorder()
        recorder.start_trace(process="test-client")
        with fleet.client() as client:
            _, response = client.check(*adder_pair, recorder=recorder)
        trace = response["trace"]
        trace_ids = {span["trace_id"] for span in trace["spans"]}
        assert len(trace_ids) == 1
        names = {span["name"] for span in trace["spans"]}
        assert "client/request" in names
        assert "fleet/route" in names
        assert "service/job" in names
        processes = {span["process"] for span in trace["spans"]}
        assert "repro-router" in processes
        assert "repro-serve" in processes

    def test_route_span_parents_under_the_client_request(
        self, fleet, adder_pair,
    ):
        recorder = Recorder()
        recorder.start_trace(process="test-client")
        with fleet.client() as client:
            _, response = client.check(*adder_pair, recorder=recorder)
        spans = {
            span["name"]: span for span in response["trace"]["spans"]
        }
        route = spans["fleet/route"]
        assert route["parent_id"] == spans["client/request"]["span_id"]
        assert spans["service/job"]["parent_id"] == route["span_id"]


class TestHealthAndFailover:
    def test_dead_shard_leaves_the_ring_and_submits_fail_over(
        self, fleet, adder_pair,
    ):
        a = read_aag(io.StringIO(adder_pair[0]))
        b = read_aag(io.StringIO(adder_pair[1]))
        home = fleet.home_of(cache_key(a, b))
        survivor = [s for s in fleet.addresses if s != home][0]
        fleet.stop_shard(home)
        deadline = 50
        while len(fleet.router.ring) > 1 and deadline:
            deadline -= 1
            fleet.call(asyncio.sleep(0.1))
        assert fleet.router.ring.shards == (survivor,)
        with fleet.client() as client:
            result, response = client.check(*adder_pair)
        assert result.equivalent is True
        assert response["job"].endswith("@" + survivor)

    def test_connect_failure_fails_over_within_one_submit(
        self, fleet, adder_pair,
    ):
        a = read_aag(io.StringIO(adder_pair[0]))
        b = read_aag(io.StringIO(adder_pair[1]))
        home = fleet.home_of(cache_key(a, b))
        # Kill the home shard but do NOT wait for the health loop: the
        # submit itself must fail over along the ring.
        fleet.stop_shard(home)
        with fleet.client() as client:
            result, response = client.check(*adder_pair)
        assert result.equivalent is True
        assert fleet.counters()["fleet/submit-failovers"] >= 1

    def test_job_verbs_are_never_rerouted(self, fleet, adder_pair):
        with fleet.client() as client:
            submitted = client.submit(*adder_pair)
            job = submitted["job"]
            client.result(job, wait=True)
            shard = job.rpartition("@")[2]
            fleet.stop_shard(shard)
            deadline = 50
            while len(fleet.router.ring) > 1 and deadline:
                deadline -= 1
                fleet.call(asyncio.sleep(0.1))
            with pytest.raises(ServiceError) as excinfo:
                client.result(job)
        assert excinfo.value.code == protocol.ERR_SHARD_DOWN

    def test_recovered_shard_rejoins_the_ring(self, fleet, tmp_path):
        victim = fleet.addresses[0]
        fleet.stop_shard(victim)
        deadline = 50
        while len(fleet.router.ring) > 1 and deadline:
            deadline -= 1
            fleet.call(asyncio.sleep(0.1))
        assert len(fleet.router.ring) == 1
        fleet.start_shard(victim, tmp_path)
        deadline = 50
        while len(fleet.router.ring) < 2 and deadline:
            deadline -= 1
            fleet.call(asyncio.sleep(0.1))
        assert len(fleet.router.ring) == 2
        counters = fleet.counters()
        assert counters["fleet/shard-downs"] == 1
        assert counters["fleet/shard-ups"] == 1


class TestTelemetry:
    def test_stats_verb_reports_router_counters(self, fleet, adder_pair):
        with fleet.client() as client:
            client.check(*adder_pair)
            stats = client.stats()
        assert stats["counters"]["fleet/jobs-routed"] == 1
        gauges = stats["gauges"]
        assert gauges["fleet/shards-up"] == 2
        occupancy = [
            value for name, value in gauges.items()
            if name.startswith("fleet/ring-occupancy/")
        ]
        assert len(occupancy) == 2
        assert sum(occupancy) == pytest.approx(1.0)

    def test_metrics_verb_and_prometheus_rendering(
        self, fleet, adder_pair,
    ):
        with fleet.client() as client:
            client.check(*adder_pair)
            metrics, prometheus = client.metrics()
        assert "fleet/route-seconds" in metrics["histograms"]
        assert "repro_fleet_route_seconds_count" in prometheus
        assert "repro_fleet_jobs_routed_total" in prometheus
        assert "repro_fleet_shards_up" in prometheus

    def test_metrics_http_endpoint_scrapes(self, tmp_path, adder_pair):
        harness = RouterHarness(
            tmp_path, metrics_address="127.0.0.1:0",
        )
        try:
            with harness.client() as client:
                client.check(*adder_pair)
            port = harness.router.metrics_port
            assert port
            with urllib.request.urlopen(
                "http://127.0.0.1:%d/metrics" % port, timeout=10,
            ) as response:
                body = response.read().decode("utf-8")
            assert "repro_fleet_jobs_routed_total 1" in body
            assert "repro_fleet_cache_hit_rate" in body
        finally:
            harness.close()

    def test_shutdown_verb_stops_the_router_only(
        self, fleet, adder_pair,
    ):
        with fleet.client() as client:
            response = client.shutdown()
        assert response["ok"]
        deadline = 50
        while fleet.router._server is not None and deadline:
            deadline -= 1
            fleet.call(asyncio.sleep(0.1))
        # Shards keep serving after the router is gone.
        with ServiceClient(fleet.addresses[0]) as direct:
            assert direct.ping()["ok"]


class TestProgress:
    def test_progress_forwards_to_the_owning_shard(
        self, fleet, adder_pair,
    ):
        with fleet.client() as client:
            _, response = client.check(*adder_pair)
            progress = client.progress(response["job"])
        assert progress["job"] == response["job"]
        assert progress["state"] == "done"
        assert "progress" in progress

    def test_progress_listing_merges_the_fleet(self, fleet, adder_pair):
        with fleet.client() as client:
            _, response = client.check(*adder_pair)
            # The terminal listing is eventually consistent with the
            # shard's done-callback; poll briefly.
            for _ in range(100):
                listing = client.progress()
                jobs = {entry["job"] for entry in listing["jobs"]}
                if response["job"] in jobs:
                    break
                fleet.call(asyncio.sleep(0.02))
        assert response["job"] in jobs
        assert all("@" in job_id for job_id in jobs)
        assert isinstance(listing["queue_depth"], int)

    def test_uptime_gauge_and_build_info(self, fleet):
        report = fleet.router.stats_report()
        assert report["gauges"]["fleet/uptime-seconds"] > 0.0
        text = fleet.router.prometheus_text()
        assert 'repro_build_info{component="repro-router"' in text
        assert "repro_fleet_uptime_seconds" in text
