"""Persistent CEC service: server, worker pool, proof cache, client.

The paper's workload is many near-identical equivalence queries — SAT
sweeping re-proves the same structural fragments across netlist
revisions. This package amortizes that: a long-running server
(:class:`CecServer`) keeps a worker pool warm and a content-addressed
:class:`ProofCache` on disk, so a repeated (or symmetric) query is
answered with its stored certificate instead of a fresh solver run.

Entry points: ``repro-serve`` (:mod:`repro.service.serve_cli`) and
``repro-client`` (:mod:`repro.service.client_cli`); ``repro-cec
--server ADDR`` routes a normal check through a server.
"""

from .cache import ProofCache, cache_key, canonical_options
from .client import ServiceClient, ServiceError
from .jobs import Job, JobTable, QueueFullError
from .protocol import PROTOCOL_SCHEMA, ProtocolError
from .server import CecServer
from .worker import execute_job

__all__ = [
    "CecServer",
    "Job",
    "JobTable",
    "PROTOCOL_SCHEMA",
    "ProofCache",
    "ProtocolError",
    "QueueFullError",
    "ServiceClient",
    "ServiceError",
    "cache_key",
    "canonical_options",
    "execute_job",
]
