"""Tests for the project-specific AST lint rules."""

from repro.analyze import lint_package, lint_source
from repro.instrument import PHASE_REGISTRY


def rules(findings):
    return {f.rule_id for f in findings}


SOME_PHASE = sorted(PHASE_REGISTRY)[0]


class TestAstRules:
    def test_clean_source(self):
        source = (
            "import sys\n"
            "\n"
            "def main():\n"
            "    return sys.maxsize\n"
        )
        assert lint_source(source, "clean.py") == []

    def test_syntax_error(self):
        findings = lint_source("def broken(:\n", "bad.py")
        assert rules(findings) == {"code.syntax"}

    def test_bare_except(self):
        source = (
            "def f():\n"
            "    try:\n"
            "        g()\n"
            "    except:\n"
            "        pass\n"
        )
        findings = lint_source(source, "x.py")
        assert "code.bare-except" in rules(findings)
        assert findings[0].line == 4

    def test_store_internals_outside_store_module(self):
        source = "def f(store):\n    return store._clauses[0]\n"
        findings = lint_source(source, "src/repro/analyze/x.py")
        assert "code.store-internals" in rules(findings)

    def test_store_internals_allowed_in_store_module(self):
        source = "def f(store):\n    return store._clauses[0]\n"
        path = "src/repro/proof/store.py"
        assert "code.store-internals" not in rules(lint_source(source, path))

    def test_store_internals_self_access_allowed(self):
        source = (
            "class ProofStore:\n"
            "    def f(self):\n"
            "        return self._clauses\n"
        )
        assert "code.store-internals" not in rules(
            lint_source(source, "src/repro/other.py")
        )

    def test_unregistered_phase_name(self):
        source = (
            "def f(recorder):\n"
            "    with recorder.phase('totally/unregistered'):\n"
            "        pass\n"
        )
        findings = lint_source(source, "x.py")
        assert "code.phase-registry" in rules(findings)

    def test_registered_phase_name(self):
        source = (
            "def f(recorder):\n"
            "    with recorder.phase(%r):\n"
            "        pass\n" % SOME_PHASE
        )
        assert "code.phase-registry" not in rules(lint_source(source, "x.py"))

    def test_unused_import(self):
        source = "import os\nimport sys\n\nprint(sys.path)\n"
        findings = lint_source(source, "x.py")
        unused = [f for f in findings if f.rule_id == "code.unused-import"]
        assert len(unused) == 1
        assert "os" in unused[0].message

    def test_unused_import_ignored_in_package_init(self):
        source = "from .mod import thing\n"
        assert lint_source(source, "pkg/__init__.py") == []

    def test_quoted_annotation_counts_as_use(self):
        source = (
            "from typing import List\n"
            "\n"
            "def f(x: 'List[int]') -> int:\n"
            "    return len(x)\n"
        )
        assert "code.unused-import" not in rules(lint_source(source, "x.py"))


class TestPackageGate:
    def test_repro_package_is_clean(self):
        findings = lint_package()
        assert findings == [], [f.render() for f in findings]
