"""AST concurrency-hazard rules for the multi-process stack.

The engine's parallel substrate — handler threads over a locked
:class:`~repro.service.jobs.JobTable`, forked checker pools, shared-
memory clause arenas — is exactly where the paper's soundness story
("every verdict backed by a checkable proof") can break without any
bad resolution step: a racy mutation, a leaked arena segment, a pool
that outlives its owner. These rules are the replay-free gate for that
surface, pure ``ast`` like :mod:`repro.analyze.ast_rules`:

* ``concurrency.unguarded-mutation`` — in a class that creates a
  ``threading.Lock``/``RLock``, rebinding a private ``self._*``
  attribute outside ``with self.<lock>`` (constructors exempt; a
  ``*_locked`` method-name suffix documents caller-held locking).
* ``concurrency.arena-lifecycle`` — a bound ``SharedMemory`` attach or
  create with no ``close()`` on a ``finally``/handler path and no
  ownership transfer (returned, stored, or passed on).
* ``concurrency.pool-shutdown`` — a pool/executor created without any
  reachable shutdown path (``with`` block, ``shutdown``/``close``/
  ``terminate`` call on the binding, or ``atexit`` registration).
* ``concurrency.fork-after-thread`` — a fork-start process pool
  (``ProcessPoolExecutor`` without ``mp_context``, or an explicit
  fork-context ``Pool``) in a module that also starts threads; forking
  a multithreaded process clones locked locks into the child.
* ``concurrency.blocking-under-lock`` — an unbounded blocking call
  (``accept()``, zero-arg ``get()``/``wait()``/``join()``/
  ``result()``, ``sleep``) made lexically inside a ``with <lock>``
  block.

All rules honor ``# repro-lint: ignore[rule-id]`` pragmas
(:mod:`repro.analyze.pragmas`). Known false-negative limits are
catalogued in ``docs/static-analysis.md``: the analysis is lexical and
intra-procedural — it cannot see ``acquire()``/``release()`` pairs,
locks held across call boundaries, or container mutation
(``self._jobs[k] = v``) as opposed to attribute rebinding.
"""

from __future__ import annotations

import ast
import os
from typing import List, Optional, Sequence, Set, Union

from .findings import ERROR, Finding
from .pragmas import apply_waivers

#: Callables whose result is a mutual-exclusion lock.
_LOCK_FACTORIES = frozenset({"Lock", "RLock"})

#: Callables whose result is a pool of workers needing shutdown.
_POOL_FACTORIES = frozenset({
    "ProcessPoolExecutor", "ThreadPoolExecutor", "Pool",
})

#: Methods that shut a pool down.
_POOL_SHUTDOWN_METHODS = frozenset({
    "shutdown", "close", "terminate", "join",
})

#: Zero-argument method calls that block without bound when the
#: receiver is a queue/event/thread/future/socket.
_BLOCKING_ZERO_ARG = frozenset({"accept", "get", "wait", "join", "result"})

#: Constructor methods where unguarded writes are inherently safe (no
#: other thread holds a reference yet).
_CONSTRUCTORS = frozenset({"__init__", "__new__"})

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _tail_name(node: ast.expr) -> Optional[str]:
    """Rightmost identifier of a Name/Attribute/Call chain."""
    if isinstance(node, ast.Call):
        return _tail_name(node.func)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_self_attr(node: ast.expr) -> bool:
    return (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self")


def _names_in(node: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


def lint_source(source: str, filename: str) -> List[Finding]:
    """Run every concurrency rule over one module's source text.

    Findings waived by inline pragmas are dropped; *filename* labels
    the rest.
    """
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [Finding(
            "code.syntax", ERROR, "cannot parse: %s" % exc,
            file=filename, line=exc.lineno or 0,
        )]
    findings: List[Finding] = []
    findings.extend(_check_guarded_classes(tree, filename))
    findings.extend(_check_blocking_under_lock(tree, filename))
    findings.extend(_check_fork_after_thread(tree, filename))
    for func in _functions(tree):
        findings.extend(_check_arena_lifecycle(func, filename))
    findings.extend(_check_pool_shutdown(tree, filename))
    findings.sort(key=lambda finding: finding.line or 0)
    kept, _ = apply_waivers(findings, source)
    return kept


def _functions(tree: ast.AST) -> List[_FunctionNode]:
    return [
        node for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


# ---------------------------------------------------------------------------
# concurrency.unguarded-mutation
# ---------------------------------------------------------------------------


def _lock_attrs_of(cls: ast.ClassDef) -> Set[str]:
    """Names of ``self.<attr>`` fields bound to Lock()/RLock() calls."""
    locks: Set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not (isinstance(value, ast.Call)
                and _tail_name(value.func) in _LOCK_FACTORIES):
            continue
        for target in node.targets:
            if _is_self_attr(target):
                assert isinstance(target, ast.Attribute)
                locks.add(target.attr)
    return locks


def _check_guarded_classes(
    tree: ast.Module, filename: str,
) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        lock_attrs = _lock_attrs_of(node)
        if not lock_attrs:
            continue
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in _CONSTRUCTORS:
                continue
            if item.name.endswith("_locked"):
                # Documented convention: the caller holds the lock.
                continue
            _scan_mutations(
                item.body, lock_attrs, False, findings, filename, item.name,
            )
    return findings


def _with_holds_lock(
    stmt: Union[ast.With, ast.AsyncWith], lock_attrs: Set[str],
) -> bool:
    for item in stmt.items:
        expr = item.context_expr
        if (_is_self_attr(expr)
                and isinstance(expr, ast.Attribute)
                and expr.attr in lock_attrs):
            return True
    return False


def _mutated_private_attrs(stmt: ast.stmt) -> List[ast.Attribute]:
    """``self._x`` attributes rebound (or deleted) by one statement."""
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, ast.AugAssign):
        targets = [stmt.target]
    elif isinstance(stmt, ast.AnnAssign):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = list(stmt.targets)
    hits: List[ast.Attribute] = []
    queue = list(targets)
    while queue:
        target = queue.pop()
        if isinstance(target, (ast.Tuple, ast.List)):
            queue.extend(target.elts)
        elif isinstance(target, ast.Starred):
            queue.append(target.value)
        elif (_is_self_attr(target)
              and isinstance(target, ast.Attribute)
              and target.attr.startswith("_")):
            hits.append(target)
    return hits


def _scan_mutations(
    body: Sequence[ast.stmt],
    lock_attrs: Set[str],
    locked: bool,
    findings: List[Finding],
    filename: str,
    method: str,
) -> None:
    for stmt in body:
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            holds = locked or _with_holds_lock(stmt, lock_attrs)
            _scan_mutations(
                stmt.body, lock_attrs, holds, findings, filename, method,
            )
            continue
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def runs later, outside this lock scope.
            _scan_mutations(
                stmt.body, lock_attrs, False, findings, filename, method,
            )
            continue
        if not locked:
            for attr in _mutated_private_attrs(stmt):
                findings.append(Finding(
                    "concurrency.unguarded-mutation", ERROR,
                    "self.%s is rebound in %s() without holding %s"
                    % (attr.attr, method,
                       " / ".join("self.%s" % n for n in sorted(lock_attrs))),
                    file=filename, line=stmt.lineno,
                    data={"attribute": attr.attr, "method": method},
                ))
        for child_body in _stmt_bodies(stmt):
            _scan_mutations(
                child_body, lock_attrs, locked, findings, filename, method,
            )


def _stmt_bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
    bodies: List[List[ast.stmt]] = []
    for field in ("body", "orelse", "finalbody"):
        block = getattr(stmt, field, None)
        if isinstance(block, list) and block \
                and isinstance(block[0], ast.stmt):
            bodies.append(block)
    for handler in getattr(stmt, "handlers", []) or []:
        bodies.append(handler.body)
    return bodies


# ---------------------------------------------------------------------------
# concurrency.blocking-under-lock
# ---------------------------------------------------------------------------


def _is_lock_expr(expr: ast.expr) -> bool:
    name = _tail_name(expr)
    return name is not None and "lock" in name.lower()


def _is_blocking_call(call: ast.Call) -> Optional[str]:
    func = call.func
    name = _tail_name(func)
    if name == "sleep":
        return "sleep()"
    if (isinstance(func, ast.Attribute)
            and func.attr in _BLOCKING_ZERO_ARG
            and not call.args and not call.keywords):
        return "%s() without a timeout" % func.attr
    return None


def _check_blocking_under_lock(
    tree: ast.Module, filename: str,
) -> List[Finding]:
    findings: List[Finding] = []

    def check_exprs(node: ast.AST) -> None:
        for call in ast.walk(node):
            if not isinstance(call, ast.Call):
                continue
            reason = _is_blocking_call(call)
            if reason is not None:
                findings.append(Finding(
                    "concurrency.blocking-under-lock", ERROR,
                    "blocking %s while a lock is held" % reason,
                    file=filename, line=call.lineno,
                ))

    def scan(body: Sequence[ast.stmt], locked: bool) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                holds = locked or any(
                    _is_lock_expr(item.context_expr) for item in stmt.items
                )
                if locked:
                    for item in stmt.items:
                        check_exprs(item.context_expr)
                scan(stmt.body, holds)
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                scan(stmt.body, False)
                continue
            child_bodies = _stmt_bodies(stmt)
            if child_bodies:
                # Compound statement: check only its own expressions
                # (test / iter / ...) here, then recurse per block so
                # nested defs and with-blocks keep their own context.
                if locked:
                    for _, value in ast.iter_fields(stmt):
                        if isinstance(value, ast.expr):
                            check_exprs(value)
                for child_body in child_bodies:
                    scan(child_body, locked)
            elif locked:
                check_exprs(stmt)

    scan(tree.body, False)
    return findings


# ---------------------------------------------------------------------------
# concurrency.arena-lifecycle
# ---------------------------------------------------------------------------


def _is_shm_factory(call: ast.Call) -> bool:
    name = _tail_name(call.func)
    return name == "SharedMemory" or (
        name is not None and "attach_shm" in name
    )


def _check_arena_lifecycle(
    func: _FunctionNode, filename: str,
) -> List[Finding]:
    findings: List[Finding] = []
    bindings: List[ast.Assign] = [
        stmt for stmt in ast.walk(func)
        if isinstance(stmt, ast.Assign)
        and isinstance(stmt.value, ast.Call)
        and _is_shm_factory(stmt.value)
        and len(stmt.targets) == 1
        and isinstance(stmt.targets[0], ast.Name)
    ]
    for stmt in bindings:
        target = stmt.targets[0]
        assert isinstance(target, ast.Name)
        name = target.id
        if _escapes(func, name, stmt) or _closed_on_exit(func, name):
            continue
        findings.append(Finding(
            "concurrency.arena-lifecycle", ERROR,
            "shared-memory handle %r has no close() on a finally/except "
            "path and never transfers ownership" % name,
            file=filename, line=stmt.lineno,
            data={"name": name},
        ))
    return findings


def _escapes(func: _FunctionNode, name: str, binding: ast.Assign) -> bool:
    """True when *name* leaves the function's ownership: returned,
    yielded, passed to a call, stored on an object, or used in ``with``
    (the context manager then owns the close)."""
    for node in ast.walk(func):
        if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            value = getattr(node, "value", None)
            if value is not None and name in _names_in(value):
                return True
        elif isinstance(node, ast.Call):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if name in _names_in(arg):
                    return True
        elif isinstance(node, ast.Assign) and node is not binding:
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    if name in _names_in(node.value):
                        return True
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if name in _names_in(item.context_expr):
                    return True
    return False


def _closed_on_exit(func: _FunctionNode, name: str) -> bool:
    """True when ``<name>.close()`` runs on a finally or handler path."""
    for node in ast.walk(func):
        if not isinstance(node, ast.Try):
            continue
        cleanup_blocks: List[List[ast.stmt]] = [node.finalbody]
        cleanup_blocks.extend(h.body for h in node.handlers)
        for block in cleanup_blocks:
            for stmt in block:
                for call in ast.walk(stmt):
                    if (isinstance(call, ast.Call)
                            and isinstance(call.func, ast.Attribute)
                            and call.func.attr in ("close", "unlink")
                            and isinstance(call.func.value, ast.Name)
                            and call.func.value.id == name):
                        return True
    return False


# ---------------------------------------------------------------------------
# concurrency.pool-shutdown
# ---------------------------------------------------------------------------


def _pool_calls(tree: ast.Module) -> List[ast.Call]:
    return [
        node for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and _tail_name(node.func) in _POOL_FACTORIES
    ]


def _check_pool_shutdown(tree: ast.Module, filename: str) -> List[Finding]:
    findings: List[Finding] = []
    module_has_atexit = any(
        isinstance(node, ast.Call)
        and _tail_name(node.func) == "register"
        and isinstance(node.func, ast.Attribute)
        and _tail_name(node.func.value) == "atexit"
        for node in ast.walk(tree)
    )
    for call in _pool_calls(tree):
        context = _pool_binding_context(tree, call)
        if context == "with" or context == "escape":
            continue
        if context == "self" and _class_shuts_down(tree, call):
            continue
        if context == "local" and _local_shuts_down(tree, call):
            continue
        if module_has_atexit and context in ("self", "local", "module"):
            # An interpreter-exit hook reaps whatever is still alive;
            # the registered closer is this module's shutdown path.
            continue
        findings.append(Finding(
            "concurrency.pool-shutdown", ERROR,
            "%s(...) has no shutdown path (with block, shutdown/close/"
            "terminate call, or atexit hook)"
            % (_tail_name(call.func) or "pool"),
            file=filename, line=call.lineno,
        ))
    return findings


def _pool_binding_context(tree: ast.Module, call: ast.Call) -> str:
    """How a pool-factory call's result is held: ``with`` / ``self`` /
    ``local`` / ``module`` / ``escape`` (returned or passed on) /
    ``none``."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.context_expr is call:
                    return "with"
        elif isinstance(node, ast.Assign) and node.value is call:
            target = node.targets[0]
            if _is_self_attr(target):
                return "self"
            if isinstance(target, ast.Name):
                enclosing = _enclosing_function(tree, node)
                return "local" if enclosing is not None else "module"
        elif isinstance(node, ast.Return) and node.value is call:
            return "escape"
        elif isinstance(node, ast.Call) and node is not call:
            if call in node.args or any(
                kw.value is call for kw in node.keywords
            ):
                return "escape"
    return "none"


def _enclosing_function(
    tree: ast.Module, stmt: ast.AST,
) -> Optional[_FunctionNode]:
    for func in _functions(tree):
        for node in ast.walk(func):
            if node is stmt:
                return func
    return None


def _pool_attr_of(tree: ast.Module, call: ast.Call) -> Optional[str]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and node.value is call:
            target = node.targets[0]
            if _is_self_attr(target):
                assert isinstance(target, ast.Attribute)
                return target.attr
    return None


def _class_shuts_down(tree: ast.Module, call: ast.Call) -> bool:
    """True when the class binding ``self.<attr> = Pool(...)`` calls a
    shutdown method on that attribute somewhere."""
    attr = _pool_attr_of(tree, call)
    if attr is None:
        return False
    owner: Optional[ast.ClassDef] = None
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for inner in ast.walk(node):
                if inner is call:
                    owner = node
                    break
    scope: ast.AST = owner if owner is not None else tree
    for node in ast.walk(scope):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _POOL_SHUTDOWN_METHODS
                and isinstance(node.func.value, ast.Attribute)
                and node.func.value.attr == attr
                and _is_self_attr(node.func.value)):
            return True
    return False


def _local_shuts_down(tree: ast.Module, call: ast.Call) -> bool:
    func = _enclosing_function(tree, call)
    if func is None:
        return False
    name: Optional[str] = None
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and node.value is call:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                name = target.id
    if name is None:
        return False
    for node in ast.walk(func):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _POOL_SHUTDOWN_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == name):
            return True
        if isinstance(node, ast.Return) and node.value is not None \
                and name in _names_in(node.value):
            return True  # factory function: the caller owns shutdown
    return False


# ---------------------------------------------------------------------------
# concurrency.fork-after-thread
# ---------------------------------------------------------------------------


def _module_starts_threads(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and _tail_name(node.func) == "Thread":
            return True
        if isinstance(node, ast.ClassDef):
            for base in node.bases:
                if _tail_name(base) == "ThreadingMixIn":
                    return True
    return False


def _fork_pool_sites(tree: ast.Module) -> List[ast.Call]:
    """Pool creations that fork the current process (on POSIX)."""
    explicit_fork = any(
        isinstance(node, ast.Call)
        and _tail_name(node.func) == "get_context"
        and any(
            isinstance(arg, ast.Constant) and arg.value == "fork"
            for arg in node.args
        )
        for node in ast.walk(tree)
    )
    sites: List[ast.Call] = []
    for call in _pool_calls(tree):
        name = _tail_name(call.func)
        if name == "ProcessPoolExecutor":
            if not any(kw.arg == "mp_context" for kw in call.keywords):
                sites.append(call)  # platform default is fork on POSIX
        elif name == "Pool" and explicit_fork:
            sites.append(call)
    return sites


def _check_fork_after_thread(
    tree: ast.Module, filename: str,
) -> List[Finding]:
    if not _module_starts_threads(tree):
        return []
    return [
        Finding(
            "concurrency.fork-after-thread", ERROR,
            "fork-start process pool in a module that also starts "
            "threads: forking a multithreaded process clones held locks "
            "into the child",
            file=filename, line=call.lineno,
        )
        for call in _fork_pool_sites(tree)
    ]


# ---------------------------------------------------------------------------
# Package walkers (mirroring repro.analyze.ast_rules)
# ---------------------------------------------------------------------------


def lint_file(path: str, label: Optional[str] = None) -> List[Finding]:
    """Lint one Python file; *label* overrides the reported filename."""
    with open(path) as handle:
        source = handle.read()
    return lint_source(source, label or path)


def lint_package(root: Optional[str] = None) -> List[Finding]:
    """Run the concurrency rules over every ``.py`` file under *root*
    (default: the installed ``repro`` package), with package-relative
    labels."""
    if root is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    findings: List[Finding] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            label = os.path.relpath(path, os.path.dirname(root))
            findings.extend(lint_file(path, label=label))
    return findings
