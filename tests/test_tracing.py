"""Distributed tracing: context propagation, spans, exporters."""

import json

import pytest

from repro.instrument import (
    Recorder,
    NULL_RECORDER,
    TraceContext,
    to_chrome_trace,
    to_collapsed_stacks,
    validate_trace_report,
)
from repro.instrument.tracing import (
    make_trace_document,
    merge_trace_documents,
    new_span_id,
    new_trace_id,
    span_self_seconds,
)


class TestTraceContext:
    def test_new_ids_are_well_formed(self):
        context = TraceContext.new()
        assert len(context.trace_id) == 32
        assert context.parent_id is None
        assert len(new_span_id()) == 16
        assert len(new_trace_id()) == 32

    def test_wire_round_trip(self):
        context = TraceContext(new_trace_id(), new_span_id())
        parsed, propagated = TraceContext.from_wire(context.to_wire())
        assert propagated
        assert parsed.trace_id == context.trace_id
        assert parsed.parent_id == context.parent_id

    def test_root_wire_omits_parent(self):
        wire = TraceContext.new().to_wire()
        assert "parent_id" not in wire

    def test_child_keeps_trace_id(self):
        context = TraceContext.new()
        child = context.child("00f067aa0ba902b7")
        assert child.trace_id == context.trace_id
        assert child.parent_id == "00f067aa0ba902b7"

    @pytest.mark.parametrize("wire", [
        None,
        "not a mapping",
        42,
        {},
        {"trace_id": "UPPERCASE-NOT-HEX-123456789abcdef"},
        {"trace_id": "short"},
        {"trace_id": 123},
        {"trace_id": "a" * 32, "parent_id": "xyz"},
        {"trace_id": "a" * 32, "parent_id": 7},
    ])
    def test_malformed_wire_degrades_to_fresh_trace(self, wire):
        context, propagated = TraceContext.from_wire(wire)
        assert not propagated
        assert len(context.trace_id) == 32
        assert context.parent_id is None


class TestRecorderSpans:
    def test_no_spans_without_start_trace(self):
        recorder = Recorder()
        with recorder.phase("cec/miter"):
            pass
        assert recorder.spans() == []
        assert recorder.trace_report() is None

    def test_phase_records_span_with_context(self):
        recorder = Recorder()
        context = recorder.start_trace()
        with recorder.phase("cec/miter"):
            pass
        (span,) = recorder.spans()
        assert span["trace_id"] == context.trace_id
        assert span["name"] == "cec/miter"
        assert span["parent_id"] is None
        assert span["dur"] >= 0

    def test_nested_phases_parent_correctly(self):
        recorder = Recorder()
        recorder.start_trace()
        with recorder.phase("cec/sweep"):
            with recorder.phase("sweep/sat"):
                pass
        inner, outer = recorder.spans()  # completion order
        assert inner["name"] == "cec/sweep/sweep/sat"
        assert outer["name"] == "cec/sweep"
        assert inner["parent_id"] == outer["span_id"]

    def test_propagated_parent_applies_to_top_level(self):
        recorder = Recorder()
        parent = new_span_id()
        recorder.start_trace(TraceContext(new_trace_id(), parent))
        with recorder.phase("service/check"):
            pass
        (span,) = recorder.spans()
        assert span["parent_id"] == parent

    def test_add_span_explicit_interval(self):
        recorder = Recorder()
        recorder.start_trace()
        sid = recorder.add_span(
            "service/queue-wait", 0.5, ts=100.0, job="j000001",
        )
        (span,) = recorder.spans()
        assert span["span_id"] == sid
        assert span["ts"] == 100.0
        assert span["dur"] == 0.5
        assert span["job"] == "j000001"

    def test_add_span_without_trace_returns_none(self):
        assert Recorder().add_span("service/job", 1.0) is None

    def test_null_recorder_records_nothing(self):
        context = NULL_RECORDER.start_trace()
        assert len(context.trace_id) == 32
        with NULL_RECORDER.phase("cec/miter"):
            pass
        assert NULL_RECORDER.add_span("service/job", 1.0) is None
        assert NULL_RECORDER.spans() == []

    def test_trace_report_validates(self):
        recorder = Recorder()
        recorder.start_trace()
        with recorder.phase("cec/miter"):
            pass
        report = recorder.trace_report()
        assert validate_trace_report(report) is report


def _doc(spans):
    trace_id = spans[0]["trace_id"] if spans else new_trace_id()
    return make_trace_document(trace_id, spans)


def _span(name, ts, dur, span_id=None, parent_id=None, trace_id=None,
          **extra):
    span = {
        "trace_id": trace_id or ("a" * 32),
        "span_id": span_id or new_span_id(),
        "parent_id": parent_id,
        "name": name,
        "ts": ts,
        "dur": dur,
        "pid": 1,
        "process": "test",
        "thread": "MainThread",
    }
    span.update(extra)
    return span


class TestDocuments:
    def test_spans_sorted_by_start(self):
        doc = _doc([_span("b", 2.0, 0.1), _span("a", 1.0, 0.1)])
        assert [s["name"] for s in doc["spans"]] == ["a", "b"]

    def test_merge_keeps_base_trace_id(self):
        base = _doc([_span("a", 1.0, 0.1)])
        other = make_trace_document("b" * 32, [
            _span("b", 2.0, 0.1, trace_id="b" * 32),
        ])
        merged = merge_trace_documents(base, other, None)
        assert merged["trace_id"] == base["trace_id"]
        assert len(merged["spans"]) == 2

    @pytest.mark.parametrize("mutate", [
        lambda d: d.pop("schema"),
        lambda d: d.__setitem__("trace_id", "nope"),
        lambda d: d.__setitem__("spans", "nope"),
        lambda d: d["spans"][0].pop("span_id"),
        lambda d: d["spans"][0].__setitem__("dur", -1.0),
        lambda d: d["spans"][0].__setitem__("name", ""),
        lambda d: d["spans"][0].__setitem__("parent_id", "ZZZ"),
    ])
    def test_validate_rejects_malformed(self, mutate):
        doc = _doc([_span("a", 1.0, 0.1)])
        mutate(doc)
        with pytest.raises(ValueError):
            validate_trace_report(doc)


class TestExporters:
    def test_chrome_trace_events(self):
        root = _span("service/job", 10.0, 1.0)
        child = _span("service/check", 10.2, 0.5,
                      parent_id=root["span_id"])
        chrome = to_chrome_trace(_doc([root, child]))
        complete = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in chrome["traceEvents"] if e["ph"] == "M"]
        assert len(complete) == 2
        assert {e["name"] for e in meta} >= {"process_name",
                                             "thread_name"}
        # Timestamps are microseconds relative to the earliest span.
        by_name = {e["name"]: e for e in complete}
        assert by_name["service/job"]["ts"] == 0.0
        assert by_name["service/check"]["ts"] == pytest.approx(2e5)
        assert by_name["service/check"]["dur"] == pytest.approx(5e5)
        json.dumps(chrome)  # must be serializable as-is

    def test_self_seconds_subtracts_children(self):
        root = _span("root", 0.0, 1.0)
        child = _span("child", 0.1, 0.4, parent_id=root["span_id"])
        selfs = span_self_seconds(_doc([root, child]))
        assert selfs[root["span_id"]] == pytest.approx(0.6)
        assert selfs[child["span_id"]] == pytest.approx(0.4)

    def test_self_seconds_clamps_negative(self):
        root = _span("root", 0.0, 0.1)
        child = _span("child", 0.0, 0.4, parent_id=root["span_id"])
        selfs = span_self_seconds(_doc([root, child]))
        assert selfs[root["span_id"]] == 0.0

    def test_collapsed_stacks(self):
        root = _span("service/job", 0.0, 1.0)
        child = _span("service/check", 0.1, 0.4,
                      parent_id=root["span_id"])
        lines = to_collapsed_stacks(_doc([root, child]))
        weights = dict(
            (line.rsplit(" ", 1)[0], int(line.rsplit(" ", 1)[1]))
            for line in lines
        )
        assert weights["service/job"] == 600000
        assert weights["service/job;service/check"] == 400000

    def test_collapsed_stacks_orphan_roots_itself(self):
        orphan = _span("worker/phase", 0.0, 0.25,
                       parent_id=new_span_id())
        (line,) = to_collapsed_stacks(_doc([orphan]))
        assert line == "worker/phase 250000"
