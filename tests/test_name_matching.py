"""Tests for name-based interface matching."""

import pytest

from repro import check_equivalence
from repro.aig import AIG, build_miter, match_interfaces_by_name
from repro.circuits import ripple_carry_adder


def scrambled_adder(width):
    """A ripple-carry adder with inputs declared in a different order."""
    reference = ripple_carry_adder(width)
    scrambled = AIG("scrambled")
    # Declare b-inputs first, then a-inputs: positional matching breaks.
    lit_of_name = {}
    for k in range(width):
        lit_of_name["b%d" % k] = scrambled.add_input("b%d" % k)
    for k in range(width):
        lit_of_name["a%d" % k] = scrambled.add_input("a%d" % k)
    # Rebuild the reference logic against the scrambled inputs.
    lit_map = [None] * reference.num_vars
    lit_map[0] = 0
    for var, name in zip(reference.inputs, reference.input_names):
        lit_map[var] = lit_of_name[name]
    from repro.aig.literal import lit_not_cond, lit_sign, lit_var

    for var in reference.and_vars():
        f0, f1 = reference.fanins(var)
        lit_map[var] = scrambled.add_and(
            lit_not_cond(lit_map[lit_var(f0)], lit_sign(f0)),
            lit_not_cond(lit_map[lit_var(f1)], lit_sign(f1)),
        )
    # Outputs in reversed order: positional matching breaks here too.
    pairs = list(zip(reference.outputs, reference.output_names))
    for lit, name in reversed(pairs):
        scrambled.add_output(
            lit_not_cond(lit_map[lit_var(lit)], lit_sign(lit)), name
        )
    return scrambled


class TestMatchInterfaces:
    def test_positional_check_fails_on_scrambled(self):
        reference = ripple_carry_adder(3)
        result = check_equivalence(reference, scrambled_adder(3))
        assert result.equivalent is False  # wrong wiring positionally

    def test_name_matched_check_passes(self):
        reference = ripple_carry_adder(3)
        result = check_equivalence(
            reference, scrambled_adder(3), match_names=True
        )
        assert result.equivalent is True

    def test_reordered_copy_is_equivalent(self):
        reference = ripple_carry_adder(4)
        reordered = match_interfaces_by_name(
            reference, scrambled_adder(4)
        )
        assert reordered.input_names == reference.input_names
        assert reordered.output_names == reference.output_names

    def test_miter_flag(self):
        reference = ripple_carry_adder(2)
        miter = build_miter(
            reference, scrambled_adder(2), match_names=True
        )
        import itertools

        for bits in itertools.product([0, 1], repeat=4):
            assert miter.aig.evaluate(list(bits)) == [0]

    def test_missing_names_rejected(self):
        anonymous = AIG()
        anonymous.add_input()
        anonymous.add_output(2)
        named = AIG()
        named.add_input("x")
        named.add_output(2, "y")
        with pytest.raises(ValueError, match="fully named"):
            match_interfaces_by_name(named, anonymous)

    def test_name_set_mismatch_rejected(self):
        first = AIG()
        first.add_input("x")
        first.add_output(2, "y")
        second = AIG()
        second.add_input("z")
        second.add_output(2, "y")
        with pytest.raises(ValueError, match="name sets differ"):
            match_interfaces_by_name(first, second)

    def test_duplicate_names_rejected(self):
        first = AIG()
        first.add_input("x")
        first.add_input("x")
        first.add_output(2, "y")
        with pytest.raises(ValueError, match="duplicate"):
            match_interfaces_by_name(first, first.copy())

    def test_cli_flag(self, tmp_path, capsys):
        from repro.aig import write_aag
        from repro.cli import main

        path_a = tmp_path / "a.aag"
        path_b = tmp_path / "b.aag"
        write_aag(ripple_carry_adder(3), str(path_a))
        write_aag(scrambled_adder(3), str(path_b))
        assert main([str(path_a), str(path_b)]) == 1
        assert main([str(path_a), str(path_b), "--match-names"]) == 0
