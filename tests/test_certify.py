"""Tests for end-to-end certification."""

import pytest

from repro import check_equivalence
from repro.aig import lit_not
from repro.circuits import parity_chain, parity_tree, ripple_carry_adder, \
    kogge_stone_adder
from repro.core import CertificationError, SweepOptions, certify
from repro.core.cec import CecResult


class TestCertifyEquivalence:
    def test_valid_certificate(self):
        result = check_equivalence(
            ripple_carry_adder(4), kogge_stone_adder(4)
        )
        check = certify(result)
        assert check.empty_clause_id is not None

    def test_rup_cross_check(self):
        result = check_equivalence(parity_tree(6), parity_chain(6))
        certify(result, rup=True)

    def test_tampered_proof_rejected(self):
        result = check_equivalence(
            ripple_carry_adder(3), kogge_stone_adder(3)
        )
        # Tamper with a derived clause.
        store = result.proof
        for cid in store.ids():
            if store.kind(cid) == "derived" and store.clause(cid):
                store._clauses[cid] = tuple(
                    -lit for lit in store.clause(cid)
                )
                break
        with pytest.raises(CertificationError, match="resolution check"):
            certify(result)

    def test_foreign_axiom_rejected(self):
        result = check_equivalence(parity_tree(4), parity_chain(4))
        result.proof.add_axiom([991, 992])
        with pytest.raises(CertificationError):
            certify(result)

    def test_missing_proof_rejected(self):
        result = check_equivalence(
            parity_tree(4),
            parity_chain(4),
            SweepOptions(proof=False),
        )
        assert result.equivalent is True
        with pytest.raises(CertificationError, match="no proof"):
            certify(result)


class TestCertifyNonEquivalence:
    def test_valid_counterexample(self):
        bad = parity_chain(5).copy()
        bad.set_output(0, lit_not(bad.outputs[0]))
        result = check_equivalence(parity_tree(5), bad)
        assert certify(result) is True

    def test_bogus_counterexample_rejected(self):
        bad = parity_chain(5).copy()
        bad.set_output(0, lit_not(bad.outputs[0]))
        result = check_equivalence(parity_tree(5), bad)
        result.counterexample = [1 - b for b in result.counterexample]
        # Flipping all inputs of a parity pair still differs; craft a
        # genuinely non-firing witness instead.
        result.counterexample = None
        with pytest.raises(CertificationError, match="witness"):
            certify(result)

    def test_non_firing_witness_rejected(self):
        bad = parity_chain(5).copy()
        bad.set_output(0, lit_not(bad.outputs[0]))
        good = parity_tree(5)
        result = check_equivalence(good, bad)
        # Build a result whose miter is of two EQUAL circuits, with a
        # stale counterexample attached.
        equal = check_equivalence(good, parity_chain(5))
        fake = CecResult(
            equivalent=False,
            counterexample=result.counterexample,
            proof=None,
            empty_clause_id=None,
            miter=equal.miter,
            cnf=None,
            engine=equal.engine,
            elapsed_seconds=0.0,
        )
        with pytest.raises(CertificationError, match="does not set"):
            certify(fake)

    def test_undecided_rejected(self):
        result = check_equivalence(parity_tree(4), parity_chain(4))
        result.equivalent = None
        with pytest.raises(CertificationError, match="undecided"):
            certify(result)
