"""Tests for the monolithic-SAT and BDD baselines."""

import pytest

from repro.aig import lit_not
from repro.baselines import bdd_check, monolithic_check
from repro.circuits import (
    array_multiplier,
    carry_lookahead_adder,
    comparator,
    comparator_subtract,
    kogge_stone_adder,
    parity_chain,
    parity_tree,
    ripple_carry_adder,
    wallace_multiplier,
)
from repro.proof import check_refutation_of, check_rup_proof


class TestMonolithic:
    def test_equivalent_with_checked_proof(self):
        result = monolithic_check(
            ripple_carry_adder(4),
            carry_lookahead_adder(4),
            validate_proof=True,
        )
        assert result.equivalent is True
        check = check_refutation_of(result.proof, result.cnf)
        assert check.empty_clause_id is not None

    def test_rup_cross_check(self):
        result = monolithic_check(parity_tree(6), parity_chain(6))
        check_rup_proof(result.proof, axioms=result.cnf.clauses)

    def test_counterexample(self):
        bad = kogge_stone_adder(4).copy()
        bad.set_output(2, lit_not(bad.outputs[2]))
        result = monolithic_check(ripple_carry_adder(4), bad)
        assert result.equivalent is False
        assert ripple_carry_adder(4).evaluate(result.counterexample) != \
            bad.evaluate(result.counterexample)

    def test_budget_exhaustion(self):
        result = monolithic_check(
            array_multiplier(4), wallace_multiplier(4), max_conflicts=2
        )
        assert result.equivalent is None
        assert result.proof is None

    def test_no_proof_mode(self):
        result = monolithic_check(
            parity_tree(5), parity_chain(5), proof=False
        )
        assert result.equivalent is True
        assert result.proof is None

    def test_stats_populated(self):
        result = monolithic_check(
            comparator(4), comparator_subtract(4)
        )
        assert result.solver_stats.propagations > 0
        assert result.elapsed_seconds > 0


class TestBddCec:
    def test_equivalent_adders(self):
        result = bdd_check(
            ripple_carry_adder(8), carry_lookahead_adder(8)
        )
        assert result.equivalent is True
        assert result.bdd_nodes > 0

    def test_counterexample(self):
        bad = carry_lookahead_adder(5).copy()
        bad.set_output(0, lit_not(bad.outputs[0]))
        good = ripple_carry_adder(5)
        result = bdd_check(good, bad)
        assert result.equivalent is False
        assert good.evaluate(result.counterexample) != bad.evaluate(
            result.counterexample
        )

    def test_single_bit_fault_found(self):
        """XOR-difference path extraction must find rare witnesses."""
        good = comparator(6)
        bad = comparator(6).copy()
        # eq output forced wrong only at a == b == all-ones.
        mutated = comparator(6)
        all_ones = mutated.add_and_multi(
            [2 * v for v in mutated.inputs]
        )
        mutated.set_output(
            1, mutated.add_and(mutated.outputs[1], lit_not(all_ones))
        )
        result = bdd_check(good, mutated)
        assert result.equivalent is False
        cex = result.counterexample
        assert all(cex), "witness must be the all-ones assignment"

    def test_node_budget_overflow(self):
        result = bdd_check(
            array_multiplier(6), wallace_multiplier(6), max_nodes=500
        )
        assert result.equivalent is None

    def test_interleave_helps_adders(self):
        inter = bdd_check(
            ripple_carry_adder(8), carry_lookahead_adder(8), interleave=True
        )
        natural = bdd_check(
            ripple_carry_adder(8), carry_lookahead_adder(8), interleave=False
        )
        assert inter.equivalent and natural.equivalent
        assert inter.bdd_nodes < natural.bdd_nodes

    def test_arity_checks(self):
        with pytest.raises(ValueError):
            bdd_check(ripple_carry_adder(2), ripple_carry_adder(3))


class TestCrossEngineAgreement:
    PAIRS = [
        lambda: (ripple_carry_adder(4), carry_lookahead_adder(4)),
        lambda: (comparator(4), comparator_subtract(4)),
        lambda: (parity_tree(6), parity_chain(6)),
        lambda: (array_multiplier(3), wallace_multiplier(3)),
    ]

    @pytest.mark.parametrize("factory", PAIRS)
    def test_equivalent_agreement(self, factory):
        from repro import check_equivalence

        aig_a, aig_b = factory()
        sweep = check_equivalence(aig_a, aig_b)
        mono = monolithic_check(aig_a, aig_b, proof=False)
        bdd = bdd_check(aig_a, aig_b)
        assert sweep.equivalent is True
        assert mono.equivalent is True
        assert bdd.equivalent is True

    @pytest.mark.parametrize("factory", PAIRS)
    def test_fault_agreement(self, factory):
        from repro import check_equivalence

        aig_a, aig_b = factory()
        bad = aig_b.copy()
        bad.set_output(0, lit_not(bad.outputs[0]))
        sweep = check_equivalence(aig_a, bad)
        mono = monolithic_check(aig_a, bad, proof=False)
        bdd = bdd_check(aig_a, bad)
        assert sweep.equivalent is False
        assert mono.equivalent is False
        assert bdd.equivalent is False
