"""The service's unit of work: one equivalence check in a worker process.

:func:`execute_job` is the only function the server submits to its
pool. It is deliberately self-contained and picklable-friendly: the
request and the response are plain dicts (AIGER text in, a
``repro-cec-result/1`` document out), so the same function runs
identically under a :class:`~concurrent.futures.ProcessPoolExecutor`,
an in-process thread (``--workers 0``), or a bare call in tests.

Per-job resource limits become a :class:`~repro.instrument.Budget`
inside the worker; exhaustion surfaces as an *undecided* verdict in a
successful response — a budget never crashes a worker. Input defects
(unparseable AIGER, incompatible interfaces, unknown options) come
back as structured ``bad-input`` errors.
"""

import io

from ..aig.aiger import AigerError, read_aag
from ..core.cec import check_equivalence
from ..core.certify import CertificationError, certify
from ..core.fraig import SweepOptions
from ..core.serialize import result_to_dict, verdict_name
from ..instrument import Budget, MetricsRegistry, Recorder, TraceContext
from ..instrument.metrics import TIME_BUCKETS, observe_stats_workload
from ..instrument.progress import (
    DEFAULT_INTERVAL,
    ProgressTracker,
    jsonl_sink,
)
from ..proof.trim import trim
from .cache import OPTION_FIELDS
from .protocol import ERR_BAD_INPUT, ERR_CERTIFY_FAILED


def build_options(options_dict):
    """Construct :class:`SweepOptions` from a request's options mapping.

    Raises:
        ValueError: on unknown option names (callers map this to a
            ``bad-input`` response).
    """
    options_dict = dict(options_dict or {})
    unknown = sorted(set(options_dict) - set(OPTION_FIELDS))
    if unknown:
        raise ValueError("unknown engine options: %s" % ", ".join(unknown))
    return SweepOptions(**options_dict)


def execute_job(request):
    """Run one equivalence check described by *request*.

    Request fields: ``aag_a``/``aag_b`` (ASCII AIGER text), ``options``
    (mapping of :class:`SweepOptions` fields), ``time_limit`` /
    ``conflict_limit`` (per-job budget), ``certify`` (replay the proof
    in the worker before answering), ``lint`` (with certify: lint
    fast-reject first), ``jobs`` (with certify: replay the proof on
    that many checker processes over the shared clause arena — the
    persistent pool survives across jobs, so a busy service pays
    checker startup once per worker, not once per proof), ``trim``
    (default True: ship the trimmed proof).

    An optional ``trace`` field (a :class:`TraceContext` wire mapping)
    threads the submitting client's trace through the worker: every
    phase the check runs — ``service/check`` down to the solver and
    sweep phases — is recorded as a span of that trace, parented under
    the server's job span. A missing or malformed mapping degrades to a
    fresh trace; it never fails the job.

    Returns one of::

        {"ok": True, "verdict": ..., "result": <repro-cec-result/1>,
         "stats": <repro-stats/1>, "trace": <repro-trace/1>,
         "metrics": <repro-metrics/1>}
        {"ok": False, "error": {"code": ..., "message": ...}}
    """
    recorder = Recorder()
    recorder.meta["tool"] = "repro-serve-worker"
    context, _ = TraceContext.from_wire(request.get("trace"))
    recorder.start_trace(context)
    metrics = MetricsRegistry()
    try:
        aig_a = read_aag(io.StringIO(request["aag_a"]))
        aig_b = read_aag(io.StringIO(request["aag_b"]))
        options = build_options(request.get("options"))
    except (AigerError, ValueError, KeyError) as exc:
        return _error(ERR_BAD_INPUT, str(exc))
    budget = None
    time_limit = request.get("time_limit")
    conflict_limit = request.get("conflict_limit")
    if time_limit is not None or conflict_limit is not None:
        budget = Budget(time_limit=time_limit, conflict_limit=conflict_limit)
    # Live progress: the server hands each job a private spool path;
    # the tracker appends one repro-progress/1 JSON line per heartbeat
    # and the server's `progress` verb tails it. Strictly observational
    # — the solver trajectory is identical with or without it.
    progress_path = request.get("progress_path")
    if progress_path:
        interval = request.get("progress_interval") or DEFAULT_INTERVAL
        recorder.progress = ProgressTracker(
            jsonl_sink(progress_path),
            interval_seconds=float(interval),
            budget=budget,
            meta={"tool": "repro-serve-worker"},
        )
    try:
        with recorder.phase("service/check"):
            result = check_equivalence(
                aig_a, aig_b, options, recorder=recorder, budget=budget
            )
    except ValueError as exc:
        # Interface mismatches and kin: the query, not the server.
        return _error(ERR_BAD_INPUT, str(exc))
    if result.proof is not None and request.get("trim", True):
        with recorder.phase("service/trim"):
            trimmed, _ = trim(result.proof, recorder=recorder)
        result.proof = trimmed
        result.empty_clause_id = trimmed.find_empty_clause()
    if request.get("certify") and result.equivalent is not None:
        check_jobs = request.get("jobs")
        if check_jobs is not None and (
            not isinstance(check_jobs, int) or isinstance(check_jobs, bool)
            or check_jobs < 0
        ):
            return _error(
                ERR_BAD_INPUT,
                "jobs must be a non-negative integer, got %r" % (check_jobs,),
            )
        try:
            with recorder.phase("service/certify"):
                certify(
                    result, jobs=check_jobs,
                    lint=bool(request.get("lint")),
                )
        except CertificationError as exc:
            return _error(ERR_CERTIFY_FAILED, str(exc))
    result.stats = recorder.report(budget=budget)
    metrics.observe(
        "service/check-seconds",
        recorder.phase_seconds("service/check"),
        buckets=TIME_BUCKETS, unit="seconds",
    )
    observe_stats_workload(metrics, result.stats)
    return {
        "ok": True,
        "verdict": verdict_name(result.equivalent),
        "result": result_to_dict(result),
        "stats": result.stats,
        "trace": recorder.trace_report(),
        "metrics": metrics.report(),
    }


def _error(code, message):
    return {"ok": False, "error": {"code": code, "message": message}}
