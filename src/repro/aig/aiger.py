"""AIGER file I/O.

Supports the combinational subset of the AIGER 1.9 format in both ASCII
(``.aag``) and binary (``.aig``) flavours, including the symbol table and
comment section. Latches are rejected: this package handles combinational
equivalence only.
"""

from .aig import AIG
from .literal import lit_var, make_lit


class AigerError(ValueError):
    """Raised on malformed AIGER input."""


def write_aag(aig, path_or_file):
    """Write *aig* in ASCII AIGER format.

    Accepts a filesystem path or a writable text file object.
    """
    if hasattr(path_or_file, "write"):
        _write_aag(aig, path_or_file)
    else:
        with open(path_or_file, "w") as handle:
            _write_aag(aig, handle)


def _write_aag(aig, out):
    max_var = aig.num_vars - 1
    out.write(
        "aag %d %d 0 %d %d\n"
        % (max_var, aig.num_inputs, aig.num_outputs, aig.num_ands)
    )
    for var in aig.inputs:
        out.write("%d\n" % make_lit(var))
    for lit in aig.outputs:
        out.write("%d\n" % lit)
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        out.write("%d %d %d\n" % (make_lit(var), f0, f1))
    _write_symbols(aig, out)


def _write_symbols(aig, out):
    for idx, name in enumerate(aig.input_names):
        if name:
            out.write("i%d %s\n" % (idx, name))
    for idx, name in enumerate(aig.output_names):
        if name:
            out.write("o%d %s\n" % (idx, name))
    if aig.name:
        out.write("c\n%s\n" % aig.name)


def read_aag(path_or_file):
    """Parse an ASCII AIGER file into an :class:`AIG`."""
    if hasattr(path_or_file, "read"):
        lines = path_or_file.read().splitlines()
    else:
        with open(path_or_file) as handle:
            lines = handle.read().splitlines()
    return _parse_aag(lines)


def _parse_header(line, expected_magic):
    fields = line.split()
    if len(fields) < 6 or fields[0] != expected_magic:
        raise AigerError("bad AIGER header: %r" % line)
    try:
        max_var, n_in, n_latch, n_out, n_and = (int(f) for f in fields[1:6])
    except ValueError:
        raise AigerError("non-numeric AIGER header: %r" % line)
    if n_latch:
        raise AigerError("sequential AIGER (latches) is not supported")
    if max_var != n_in + n_and:
        raise AigerError(
            "header inconsistent: M=%d but I+A=%d" % (max_var, n_in + n_and)
        )
    return max_var, n_in, n_out, n_and


def _parse_aag(lines):
    if not lines:
        raise AigerError("empty AIGER file")
    max_var, n_in, n_out, n_and = _parse_header(lines[0], "aag")
    aig = AIG()
    pos = 1
    input_lits = []
    for _ in range(n_in):
        lit = _read_int_line(lines, pos)
        pos += 1
        if lit & 1 or lit == 0:
            raise AigerError("invalid input literal %d" % lit)
        input_lits.append(lit)
        aig.add_input()
    # Input literals must be consecutive in aag-from-this-writer, but the
    # format allows arbitrary variable numbering; build a remapping.
    var_map = {0: 0}
    for k, lit in enumerate(input_lits):
        var_map[lit_var(lit)] = k + 1
    output_lits = []
    for _ in range(n_out):
        output_lits.append(_read_int_line(lines, pos))
        pos += 1
    and_rows = []
    for _ in range(n_and):
        fields = lines[pos].split()
        pos += 1
        if len(fields) != 3:
            raise AigerError("bad AND line: %r" % lines[pos - 1])
        lhs, rhs0, rhs1 = (int(f) for f in fields)
        if lhs & 1:
            raise AigerError("AND lhs must be even: %d" % lhs)
        and_rows.append((lhs, rhs0, rhs1))
    _install_ands(aig, and_rows, var_map)
    for lit in output_lits:
        aig.add_output(_map_lit(lit, var_map))
    _parse_symbols(aig, lines[pos:])
    return aig


def _read_int_line(lines, pos):
    try:
        return int(lines[pos])
    except (IndexError, ValueError):
        raise AigerError("truncated or malformed AIGER body at line %d" % (pos + 1))


def _map_lit(lit, var_map):
    var = lit_var(lit)
    if var not in var_map:
        raise AigerError("literal %d references undefined variable" % lit)
    return make_lit(var_map[var]) ^ (lit & 1)


def _install_ands(aig, and_rows, var_map):
    """Add AND rows, tolerating any topological ordering of definitions."""
    pending = list(and_rows)
    while pending:
        progressed = False
        deferred = []
        for lhs, rhs0, rhs1 in pending:
            v0, v1 = lit_var(rhs0), lit_var(rhs1)
            if v0 in var_map and v1 in var_map:
                lit = aig.add_and(_map_lit(rhs0, var_map), _map_lit(rhs1, var_map))
                var_map[lit_var(lhs)] = lit_var(lit)
                # Structural hashing may fold the node; remember polarity.
                if lit & 1:
                    raise AigerError(
                        "AND %d folds to a complemented literal; "
                        "input file is not strashed consistently" % lhs
                    )
                progressed = True
            else:
                deferred.append((lhs, rhs0, rhs1))
        if not progressed:
            raise AigerError("cyclic or dangling AND definitions")
        pending = deferred


def _parse_symbols(aig, lines):
    names_in = list(aig.input_names)
    names_out = list(aig.output_names)
    comment = []
    in_comment = False
    for line in lines:
        if in_comment:
            comment.append(line)
            continue
        if not line.strip():
            continue
        if line.strip() == "c":
            in_comment = True
            continue
        kind, _, rest = line.partition(" ")
        if len(kind) >= 2 and kind[0] in "io" and kind[1:].isdigit():
            idx = int(kind[1:])
            if kind[0] == "i" and idx < len(names_in):
                names_in[idx] = rest
            elif kind[0] == "o" and idx < len(names_out):
                names_out[idx] = rest
            else:
                raise AigerError("symbol index out of range: %r" % line)
        else:
            raise AigerError("unrecognized symbol line: %r" % line)
    aig._input_names = names_in
    aig._output_names = names_out
    if comment:
        aig.name = comment[0]


# ----------------------------------------------------------------------
# Binary format
# ----------------------------------------------------------------------


def _encode_delta(delta):
    out = bytearray()
    while delta >= 0x80:
        out.append(0x80 | (delta & 0x7F))
        delta >>= 7
    out.append(delta)
    return bytes(out)


def _decode_delta(data, pos):
    value = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise AigerError("truncated binary AIGER delta")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def write_aig(aig, path_or_file):
    """Write *aig* in binary AIGER format.

    The binary format requires inputs to occupy variables ``1..I`` and each
    AND definition ``lhs > rhs0 >= rhs1`` — both guaranteed by this
    package's construction discipline.
    """
    if hasattr(path_or_file, "write"):
        _write_aig(aig, path_or_file)
    else:
        with open(path_or_file, "wb") as handle:
            _write_aig(aig, handle)


def _write_aig(aig, out):
    max_var = aig.num_vars - 1
    header = "aig %d %d 0 %d %d\n" % (
        max_var,
        aig.num_inputs,
        aig.num_outputs,
        aig.num_ands,
    )
    out.write(header.encode("ascii"))
    for lit in aig.outputs:
        out.write(("%d\n" % lit).encode("ascii"))
    for var in aig.and_vars():
        lhs = make_lit(var)
        f0, f1 = aig.fanins(var)
        if not lhs > f0 >= f1:
            raise AigerError("AND node %d violates binary ordering" % var)
        out.write(_encode_delta(lhs - f0))
        out.write(_encode_delta(f0 - f1))
    symbols = _SymbolBuffer()
    _write_symbols(aig, symbols)
    out.write(symbols.data().encode("ascii"))


class _SymbolBuffer:
    def __init__(self):
        self._parts = []

    def write(self, text):
        self._parts.append(text)

    def data(self):
        return "".join(self._parts)


def read_aig(path_or_file):
    """Parse a binary AIGER file into an :class:`AIG`."""
    if hasattr(path_or_file, "read"):
        data = path_or_file.read()
    else:
        with open(path_or_file, "rb") as handle:
            data = handle.read()
    newline = data.find(b"\n")
    if newline < 0:
        raise AigerError("missing binary AIGER header")
    max_var, n_in, n_out, n_and = _parse_header(
        data[:newline].decode("ascii"), "aig"
    )
    pos = newline + 1
    aig = AIG()
    var_map = {0: 0}
    for k in range(n_in):
        aig.add_input()
        var_map[k + 1] = k + 1
    output_lits = []
    for _ in range(n_out):
        end = data.find(b"\n", pos)
        if end < 0:
            raise AigerError("truncated binary AIGER outputs")
        output_lits.append(int(data[pos:end]))
        pos = end + 1
    for k in range(n_and):
        lhs = 2 * (n_in + 1 + k)
        delta0, pos = _decode_delta(data, pos)
        delta1, pos = _decode_delta(data, pos)
        rhs0 = lhs - delta0
        rhs1 = rhs0 - delta1
        if rhs0 < 0 or rhs1 < 0:
            raise AigerError("binary AIGER deltas underflow at AND %d" % lhs)
        lit = aig.add_and(_map_lit(rhs0, var_map), _map_lit(rhs1, var_map))
        if lit & 1:
            raise AigerError("binary AND %d folds to complemented literal" % lhs)
        var_map[lit_var(lhs)] = lit_var(lit)
    for lit in output_lits:
        aig.add_output(_map_lit(lit, var_map))
    tail = data[pos:].decode("ascii", errors="replace").splitlines()
    _parse_symbols(aig, tail)
    return aig


def read_auto(path):
    """Read an AIGER file, dispatching on its magic string."""
    with open(path, "rb") as handle:
        magic = handle.read(3)
    if magic == b"aag":
        return read_aag(path)
    if magic == b"aig":
        return read_aig(path)
    raise AigerError("not an AIGER file: %r" % path)
