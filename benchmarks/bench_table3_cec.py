"""Table 3 — the proof-producing CEC engine (the paper's system).

For every suite pair: sweep time with its sim/strash/SAT phase split
(taken from the engine's ``repro-stats/1`` report), engine step counts
(structural merges, SAT merges, SAT calls, refinements), stitched proof
size, trimmed size, and independent checking time.
"""

import time

import pytest

from repro.circuits import SUITE
from repro.proof.checker import check_refutation_of
from repro.proof.stats import proof_stats
from repro.proof.trim import trim

from conftest import report_table, run_sweep, stats_phase_seconds

_ROWS = {}


@pytest.mark.parametrize("pair", SUITE, ids=lambda p: p.name)
def test_cec(benchmark, pair, engine_cache):
    result = benchmark.pedantic(
        lambda: run_sweep(engine_cache, pair), rounds=1, iterations=1
    )
    assert result.equivalent is True
    engine_stats = result.engine.stats
    stats = proof_stats(result.proof)
    trimmed, _ = trim(result.proof)
    trimmed_stats = proof_stats(trimmed)
    start = time.perf_counter()
    check = check_refutation_of(result.proof, result.cnf)
    check_seconds = time.perf_counter() - start
    assert check.empty_clause_id is not None
    _ROWS[pair.name] = [
        pair.name,
        "%.3f" % result.elapsed_seconds,
        "%.3f" % stats_phase_seconds(result.stats, "sweep/sim"),
        "%.3f" % stats_phase_seconds(result.stats, "sweep/strash"),
        "%.3f" % stats_phase_seconds(result.stats, "sweep/sat"),
        engine_stats.structural_merges,
        engine_stats.sat_merges,
        engine_stats.sat_calls,
        engine_stats.refinements,
        stats.num_derived,
        stats.num_resolutions,
        trimmed_stats.num_resolutions,
        "%.3f" % check_seconds,
    ]
    report_table(
        "Table 3: proof-producing CEC engine (SAT sweeping + stitching)",
        ["pair", "time(s)", "sim(s)", "strash(s)", "sat(s)", "struct",
         "sat-merge", "sat-calls", "refine", "derived", "resolutions",
         "res(trim)", "check(s)"],
        [_ROWS[name] for name in sorted(_ROWS)],
        notes=[
            "sim/strash/sat = phase split from the repro-stats/1 report",
            "struct = merges discharged by stitched resolution derivations",
            "every proof verified by the independent resolution checker",
        ],
    )
