"""DRUP export and RUP checking.

Resolution proofs can be exported in the DRUP clausal format used by
proof-logging SAT solvers, and cross-validated with a *reverse unit
propagation* (RUP) checker: a derived clause C is RUP with respect to a
clause set S when asserting the negation of C and unit-propagating over S
yields a conflict. Every clause derived by a trivial resolution chain from
S is RUP over S, so this checker validates the same proofs through an
entirely different mechanism than the resolution replayer — the test suite
runs both.
"""

from __future__ import annotations

from typing import IO, Dict, Iterable, List, Optional, Sequence, Set, Union

from .store import AXIOM, Clause, ProofError, ProofStore


def write_drup(store: ProofStore, path_or_file: Union[str, IO[str]]) -> None:
    """Write the derived clauses of *store* as DRUP lines (no deletions)."""
    if hasattr(path_or_file, "write"):
        _write(store, path_or_file)
    else:
        with open(path_or_file, "w") as handle:
            _write(store, handle)


def _write(store: ProofStore, out: IO[str]) -> None:
    for clause_id in store.ids():
        if store.kind(clause_id) == AXIOM:
            continue
        clause = store.clause(clause_id)
        out.write(" ".join(str(lit) for lit in clause))
        out.write(" 0\n" if clause else "0\n")


class _Propagator:
    """Two-watched-literal unit propagator over a growable clause set."""

    def __init__(self, num_vars: int) -> None:
        self.num_vars = num_vars
        # assignment: 0 unknown, 1 true, -1 false, indexed by variable.
        self._assign = [0] * (num_vars + 1)
        self._trail: List[int] = []
        self._watches: Dict[int, List[int]] = {}
        self._clauses: List[List[int]] = []
        self._units: List[int] = []

    def _grow(self, var: int) -> None:
        while self.num_vars < var:
            self.num_vars += 1
            self._assign.append(0)

    def add_clause(self, clause: Sequence[int]) -> None:
        """Add a clause to the watched database (state must be clean)."""
        for lit in clause:
            self._grow(abs(lit))
        if not clause:
            raise ProofError("cannot add the empty clause to a propagator")
        if len(clause) == 1:
            self._units.append(clause[0])
            return
        ref = len(self._clauses)
        self._clauses.append(list(clause))
        self._watches.setdefault(clause[0], []).append(ref)
        self._watches.setdefault(clause[1], []).append(ref)

    def value(self, lit: int) -> int:
        val = self._assign[abs(lit)]
        return val if lit > 0 else -val

    def _enqueue(self, lit: int) -> bool:
        val = self.value(lit)
        if val == 1:
            return True
        if val == -1:
            return False
        self._assign[abs(lit)] = 1 if lit > 0 else -1
        self._trail.append(lit)
        return True

    def propagate(self, assumptions: Iterable[int]) -> bool:
        """Assert *assumptions*, propagate; return True on conflict.

        The propagator state is rolled back before returning.
        """
        mark = len(self._trail)
        conflict = False
        try:
            for lit in self._units:
                if not self._enqueue(lit):
                    conflict = True
                    break
            if not conflict:
                for lit in assumptions:
                    if not self._enqueue(lit):
                        conflict = True
                        break
            if not conflict:
                conflict = self._propagate_from(mark)
            return conflict
        finally:
            while len(self._trail) > mark:
                lit = self._trail.pop()
                self._assign[abs(lit)] = 0

    def _propagate_from(self, mark: int) -> bool:
        head = mark
        while head < len(self._trail):
            lit = self._trail[head]
            head += 1
            if self._visit_watchers(-lit):
                return True
        return False

    def _visit_watchers(self, false_lit: int) -> bool:
        watchers = self._watches.get(false_lit)
        if not watchers:
            return False
        keep = []
        conflict = False
        idx = 0
        while idx < len(watchers):
            ref = watchers[idx]
            idx += 1
            clause = self._clauses[ref]
            # Ensure false_lit is at position 1.
            if clause[0] == false_lit:
                clause[0], clause[1] = clause[1], clause[0]
            other = clause[0]
            if self.value(other) == 1:
                keep.append(ref)
                continue
            moved = False
            for pos in range(2, len(clause)):
                if self.value(clause[pos]) != -1:
                    clause[1], clause[pos] = clause[pos], clause[1]
                    self._watches.setdefault(clause[1], []).append(ref)
                    moved = True
                    break
            if moved:
                continue
            keep.append(ref)
            if not self._enqueue(other):
                conflict = True
                keep.extend(watchers[idx:])
                break
        self._watches[false_lit] = keep
        return conflict


def check_rup_proof(
    store: ProofStore,
    axioms: Optional[Iterable[Iterable[int]]] = None,
) -> int:
    """Validate every derived clause of *store* by reverse unit propagation.

    Clauses are checked in store order against the axioms plus all earlier
    derived clauses, mirroring DRUP checking (in the forward direction).

    Args:
        store: proof store to validate.
        axioms: optional reference clause set; when given, axioms in the
            store must belong to it (same contract as the resolution
            checker).

    Returns:
        Number of derived clauses validated.

    Raises:
        ProofError: on the first non-RUP clause or foreign axiom.
    """
    allowed: Optional[Set[Clause]] = None
    if axioms is not None:
        allowed = {tuple(sorted(set(clause))) for clause in axioms}
    num_vars = 0
    for clause_id in store.ids():
        for lit in store.clause(clause_id):
            num_vars = max(num_vars, abs(lit))
    prop = _Propagator(num_vars)
    checked = 0
    for clause_id in store.ids():
        clause = store.clause(clause_id)
        if store.kind(clause_id) == AXIOM:
            if allowed is not None and clause not in allowed:
                raise ProofError(
                    "axiom %d = %r not in reference CNF" % (clause_id, clause),
                    clause_id=clause_id,
                    rule_id="proof.axiom-foreign",
                )
            prop.add_clause(clause)
            continue
        if not prop.propagate([-lit for lit in clause]):
            raise ProofError(
                "derived clause %d = %r is not RUP" % (clause_id, clause),
                clause_id=clause_id,
                rule_id="proof.not-rup",
            )
        checked += 1
        if clause:
            prop.add_clause(clause)
    return checked
