"""Regression tests for the solver/proof-store hot-path fixes.

Each test here fails on the pre-fix code:

* ``Solver.add_clause`` used an O(n^2) list-membership tautology scan
  and allocated variables for a prefix of a tautological clause before
  bailing out.
* ``Solver._record_learnt`` enqueued unit learned clauses with a
  throwaway duplicate ``_Clause`` as the reason instead of the recorded
  clause itself.
* ``ProofStore.find_empty_clause`` rescanned every stored clause on
  each call.
* Counterexample extraction indexes ``enc.var_of[var]`` for every
  primary input, including structurally irrelevant (dangling) ones.
"""

from repro.aig import AIG, build_miter
from repro.core.cec import check_equivalence
from repro.core.fraig import SweepOptions
from repro.proof.checker import check_proof
from repro.proof.store import ProofStore
from repro.sat.solver import SAT, UNSAT, Solver


class TestTautologyHandling:
    def test_tautology_allocates_no_variables(self):
        solver = Solver()
        assert solver.add_clause([1, 5, -1]) is True
        # Pre-fix, variable 1 was allocated before the tautology was
        # detected (the scan visited -1 first and called ensure_vars).
        assert solver.num_vars == 0
        assert solver._clauses == []

    def test_tautology_registers_no_axiom(self):
        store = ProofStore()
        solver = Solver(proof=store)
        solver.add_clause([3, -3])
        assert len(store) == 0

    def test_tautology_detection_uses_set_membership(self):
        # A wide tautological clause must be dropped without touching
        # the solver; with the old quadratic scan this still passed but
        # allocated the full variable prefix below the complemented pair.
        lits = list(range(1, 2001)) + [-2000]
        solver = Solver()
        assert solver.add_clause(lits) is True
        assert solver.num_vars == 0

    def test_non_tautology_still_added(self):
        solver = Solver()
        assert solver.add_clause([1, -2, 3]) is True
        assert solver.num_vars == 3
        assert len(solver._clauses) == 1
        result = solver.solve()
        assert result.status is SAT


class TestUnitLearntReason:
    @staticmethod
    def _force_unit_learnt(proof=None):
        solver = Solver(proof=proof)
        solver.add_clause([1, 2])
        solver.add_clause([1, -2])
        result = solver.solve()
        assert result.status is SAT
        return solver

    def test_unit_learnt_reason_is_the_recorded_clause(self):
        # Deciding -1 propagates 2 and conflicts on (1 -2); analysis
        # learns the unit (1), which is enqueued at level 0 and keeps
        # its reason across the solve. Pre-fix the reason was a
        # throwaway copy with learnt=False that _reduce_db could never
        # lock and that was absent from _learnts.
        solver = self._force_unit_learnt()
        assert solver.stats.learned == 1
        reason = solver.reason_ref(1)
        assert reason is not None
        assert solver.clause_is_learnt(reason) is True

    def test_unit_learnt_reason_carries_proof_id(self):
        store = ProofStore(validate=True)
        solver = self._force_unit_learnt(proof=store)
        reason = solver.reason_ref(1)
        proof_id = solver.clause_proof_id(reason)
        assert proof_id is not None
        assert store.clause(proof_id) == (1,)

    def test_unit_learning_under_proof_logging_replays(self):
        # Continue past the unit learnt to a refutation and replay the
        # whole proof (including the unit's chain) through the
        # independent checker.
        clauses = [[1, 2], [1, -2], [-1, 2], [-1, -2]]
        store = ProofStore(validate=True)
        solver = Solver(proof=store)
        for clause in clauses:
            solver.add_clause(clause)
        result = solver.solve()
        assert result.status is UNSAT
        check = check_proof(store, axioms=clauses, require_empty=True)
        assert check.empty_clause_id is not None


class _NoScan(list):
    """List stand-in that fails the test when iterated."""

    def __iter__(self):
        raise AssertionError("find_empty_clause scanned the clause list")


class TestFindEmptyClauseCache:
    def test_empty_clause_id_cached_at_append_time(self):
        store = ProofStore()
        a = store.add_axiom((1,))
        b = store.add_axiom((-1,))
        empty = store.derive_resolvent(a, b, 1)
        # Pre-fix find_empty_clause enumerated _clauses on every call.
        store._clauses = _NoScan(store._clauses)
        assert store.find_empty_clause() == empty

    def test_no_empty_clause_returns_none_without_scanning(self):
        store = ProofStore()
        store.add_axiom((1, 2))
        store._clauses = _NoScan(store._clauses)
        assert store.find_empty_clause() is None

    def test_first_empty_clause_wins(self):
        store = ProofStore()
        a = store.add_axiom((1,))
        b = store.add_axiom((-1,))
        first = store.derive_resolvent(a, b, 1)
        store.add_axiom((2,))
        assert store.find_empty_clause() == first

    def test_cache_matches_linear_scan(self):
        store = ProofStore()
        a = store.add_axiom((1, 2))
        b = store.add_axiom((-1, 2))
        c = store.add_axiom((-2,))
        d = store.derive_resolvent(a, b, 1)       # (2)
        empty = store.derive_resolvent(d, c, 2)   # ()
        scan = next(
            (i for i in store.ids() if not store.clause(i)), None
        )
        assert store.find_empty_clause() == scan == empty


def _pair_with_dangling_input():
    """Two one-output circuits, non-equivalent, sharing a dangling input.

    Input 3 feeds no gate in either circuit, so the miter keeps it as a
    structurally irrelevant primary input.
    """
    a = AIG("a")
    x = a.add_input("x")
    y = a.add_input("y")
    a.add_input("unused")
    a.add_output(a.add_and(x, y), "o")

    b = AIG("b")
    x = b.add_input("x")
    y = b.add_input("y")
    b.add_input("unused")
    b.add_output(b.add_or(x, y), "o")
    return a, b


class TestDanglingInputCounterexample:
    def test_encoder_preregisters_all_inputs(self):
        # var_of is a dense list over *every* AIG variable, so dangling
        # miter inputs always have a CNF variable: extraction cannot
        # KeyError and unconstrained inputs default to 0 via model_value.
        from repro.cnf.tseitin import tseitin_encode

        a, b = _pair_with_dangling_input()
        miter = build_miter(a, b)
        enc = tseitin_encode(miter.aig)
        for var in miter.aig.inputs:
            assert enc.var_of[var] > 0

    def test_final_sat_counterexample_with_dangling_input(self):
        # sim_words=0 leaves simulation with no patterns, forcing the
        # verdict through the final SAT call's model extraction
        # (core/cec.py) over all miter inputs, dangling one included.
        a, b = _pair_with_dangling_input()
        result = check_equivalence(a, b, SweepOptions(sim_words=0))
        assert result.equivalent is False
        assert len(result.counterexample) == 3

    def test_refinement_path_with_dangling_input(self):
        # With empty signatures every node is a candidate for constant
        # 0, so candidate SAT calls return models and _refine extracts
        # patterns over all inputs (core/fraig.py) before the verdict.
        a, b = _pair_with_dangling_input()
        result = check_equivalence(a, b, SweepOptions(sim_words=0))
        assert result.engine.stats.refinements >= 1

    def test_equivalent_pair_with_dangling_input(self):
        a, _ = _pair_with_dangling_input()
        result = check_equivalence(a, a.copy(), SweepOptions(sim_words=1))
        assert result.equivalent is True
