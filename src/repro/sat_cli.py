"""Command-line interface: ``repro-sat``.

A standalone DIMACS front end for the proof-logging CDCL solver::

    repro-sat formula.cnf                      # SAT/UNSAT + model
    repro-sat formula.cnf --proof out.drup     # trimmed DRUP refutation
    repro-sat formula.cnf --trace out.tc       # TraceCheck trace
    repro-sat formula.cnf --assume 3 -7        # solve under assumptions

Exit codes follow the SAT-competition convention: 10 = SAT, 20 = UNSAT,
0 = unknown/limit; 3 = invalid input (unreadable or malformed DIMACS).
"""

import argparse
import sys

from . import __version__
from .cnf.dimacs import DimacsError, read_dimacs
from .exit_codes import EXIT_INVALID_INPUT, EXIT_SAT, EXIT_SAT_UNKNOWN, \
    EXIT_UNSAT
from .instrument import Budget, Recorder, maybe_profile
from .proof.checker import check_proof
from .proof.drup import write_drup
from .proof.stats import proof_stats
from .proof.store import ProofStore
from .proof.tracecheck import write_tracecheck
from .proof.trim import trim
from .sat.solver import SAT, UNSAT, Solver


def build_parser():
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-sat",
        description="CDCL SAT solving with resolution-proof logging",
    )
    parser.add_argument(
        "--version", action="version", version="%(prog)s " + __version__,
    )
    parser.add_argument("cnf", help="DIMACS CNF file")
    parser.add_argument(
        "--proof", metavar="FILE", help="write a DRUP refutation on UNSAT"
    )
    parser.add_argument(
        "--trace", metavar="FILE",
        help="write a TraceCheck resolution trace on UNSAT",
    )
    parser.add_argument(
        "--no-trim", action="store_true", help="emit untrimmed proofs"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="self-check the refutation before reporting UNSAT",
    )
    parser.add_argument(
        "--assume", type=int, nargs="+", default=[], metavar="LIT",
        help="solve under the given assumption literals",
    )
    parser.add_argument(
        "--max-conflicts", type=int, default=None,
        help="conflict budget (exit 0 when exhausted)",
    )
    parser.add_argument(
        "--conflict-limit", type=int, default=None, metavar="N",
        help="alias of --max-conflicts (uniform budget flag across the "
        "repro CLIs); the smaller of the two wins",
    )
    parser.add_argument(
        "--time-limit", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget (exit 0 / s UNKNOWN when exhausted)",
    )
    parser.add_argument(
        "--stats-json", metavar="PATH",
        help="write the run's repro-stats/1 JSON report to PATH",
    )
    parser.add_argument(
        "--trace-events", metavar="PATH",
        help="append JSONL instrumentation events to PATH",
    )
    parser.add_argument(
        "--profile", metavar="PATH",
        help="profile the run with cProfile and dump pstats data to PATH",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the model/statistics"
    )
    return parser


def main(argv=None):
    """Entry point: 10 SAT, 20 UNSAT, 0 unknown, 3 invalid input."""
    args = build_parser().parse_args(argv)
    try:
        cnf = read_dimacs(args.cnf)
    except (OSError, DimacsError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return EXIT_INVALID_INPUT
    recorder = Recorder(trace_path=args.trace_events)
    recorder.meta.update({"tool": "repro-sat", "cnf": args.cnf})
    budget = None
    if args.time_limit is not None:
        budget = Budget(time_limit=args.time_limit)
    max_conflicts = args.max_conflicts
    if args.conflict_limit is not None:
        max_conflicts = (
            args.conflict_limit if max_conflicts is None
            else min(max_conflicts, args.conflict_limit)
        )
    try:
        with maybe_profile(args.profile):
            code = _run(cnf, args, recorder, budget, max_conflicts)
        recorder.meta["exit_code"] = code
    finally:
        if args.stats_json:
            recorder.write_json(args.stats_json, budget=budget)
        recorder.close()
    return code


def _run(cnf, args, recorder, budget, max_conflicts):
    """Solve and report; returns the exit code."""
    wants_proof = bool(args.proof or args.trace or args.check)
    store = ProofStore(recorder=recorder) if wants_proof else None
    solver = Solver(proof=store, recorder=recorder, budget=budget)
    solver.ensure_vars(cnf.num_vars)
    alive = True
    for clause in cnf.clauses:
        if not solver.add_clause(clause):
            alive = False
            break
    result = solver.solve(
        assumptions=args.assume, max_conflicts=max_conflicts
    ) if alive else None
    status = result.status if alive else UNSAT
    if status is SAT:
        print("s SATISFIABLE")
        if not args.quiet:
            lits = [
                var if result.model_value(var) else -var
                for var in range(1, cnf.num_vars + 1)
            ]
            print("v %s 0" % " ".join(str(lit) for lit in lits))
        return EXIT_SAT
    if status is UNSAT:
        print("s UNSATISFIABLE")
        if alive and args.assume and result.final_clause:
            print("c final clause: %s 0" % " ".join(
                str(lit) for lit in result.final_clause))
        if store is not None and not args.assume:
            to_write = store
            if not args.no_trim:
                to_write, _ = trim(store, recorder=recorder)
            if args.check:
                check_proof(to_write, axioms=cnf.clauses, recorder=recorder)
                print("c proof checked: OK")
            if args.proof:
                write_drup(to_write, args.proof)
            if args.trace:
                write_tracecheck(to_write, args.trace)
            if not args.quiet:
                stats = proof_stats(to_write)
                print(
                    "c proof: %d derived clauses, %d resolutions"
                    % (stats.num_derived, stats.num_resolutions)
                )
        return EXIT_UNSAT
    print("s UNKNOWN")
    return EXIT_SAT_UNKNOWN


if __name__ == "__main__":
    sys.exit(main())
