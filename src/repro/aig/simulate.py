"""Bit-parallel random simulation of AIGs.

Simulation assigns every variable a *signature*: a W-bit integer whose bit
k is the node's value under the k-th input pattern. Python's arbitrary-
precision integers make W-wide bitwise simulation a single pass of ``&``
and ``^`` per node, so hundreds of patterns are evaluated at once.

Signatures drive the sweeping engine: nodes with equal (or complementary)
signatures are *candidates* for equivalence; SAT decides. Counterexamples
returned by SAT are appended as new patterns to refine the partition.
"""

import random


class Simulator:
    """Incremental bit-parallel simulator for one AIG.

    The simulator owns a pattern set of ``num_words * 64`` input patterns
    and the resulting per-variable signatures. Patterns can be appended
    (counterexample refinement) which re-simulates in one pass.
    """

    WORD_BITS = 64

    def __init__(self, aig, num_words=4, seed=2007):
        self.aig = aig
        self._rng = random.Random(seed)
        self._num_bits = 0
        # Input patterns indexed by input position (not variable).
        self._patterns = [0] * aig.num_inputs
        self.signatures = [0] * aig.num_vars
        if num_words:
            self.add_random_patterns(num_words * self.WORD_BITS)

    @property
    def num_patterns(self):
        """Number of input patterns currently simulated."""
        return self._num_bits

    @property
    def mask(self):
        """Bit mask covering all current patterns."""
        return (1 << self._num_bits) - 1

    def add_random_patterns(self, count):
        """Append *count* uniformly random input patterns and re-simulate."""
        for idx in range(self.aig.num_inputs):
            self._patterns[idx] |= self._rng.getrandbits(count) << self._num_bits
        self._num_bits += count
        self._resimulate()

    def add_pattern(self, input_bits):
        """Append one explicit pattern (sequence of 0/1 per input)."""
        if len(input_bits) != self.aig.num_inputs:
            raise ValueError(
                "expected %d input bits, got %d"
                % (self.aig.num_inputs, len(input_bits))
            )
        for idx, bit in enumerate(input_bits):
            if bit:
                self._patterns[idx] |= 1 << self._num_bits
        self._num_bits += 1
        self._resimulate()

    def _resimulate(self):
        aig = self.aig
        sigs = self.signatures = [0] * aig.num_vars
        mask = self.mask
        for pos, var in enumerate(aig.inputs):
            sigs[var] = self._patterns[pos]
        full = mask
        for var in aig.and_vars():
            f0, f1 = aig.fanins(var)
            a = sigs[f0 >> 1] ^ (full if f0 & 1 else 0)
            b = sigs[f1 >> 1] ^ (full if f1 & 1 else 0)
            sigs[var] = a & b
        self._mask_cache = mask

    def lit_signature(self, lit):
        """Signature of a literal (complemented signatures are masked)."""
        sig = self.signatures[lit >> 1]
        return sig ^ self.mask if lit & 1 else sig

    def output_signatures(self):
        """Signatures of all outputs."""
        return [self.lit_signature(lit) for lit in self.aig.outputs]

    def pattern(self, k):
        """The k-th input pattern as a list of 0/1 ints."""
        if not 0 <= k < self._num_bits:
            raise IndexError("pattern index out of range")
        return [(p >> k) & 1 for p in self._patterns]


def simulate_once(aig, input_values):
    """Convenience single-pattern simulation returning output values."""
    return aig.evaluate(input_values)


def random_equivalence_test(aig_a, aig_b, rounds=256, seed=2007):
    """Cheap refutation test: simulate both AIGs on shared random patterns.

    Returns ``None`` when no difference was observed, otherwise a
    counterexample input assignment (list of 0/1).
    """
    if aig_a.num_inputs != aig_b.num_inputs:
        raise ValueError("input counts differ")
    if aig_a.num_outputs != aig_b.num_outputs:
        raise ValueError("output counts differ")
    rng = random.Random(seed)
    sim_a = Simulator(aig_a, num_words=0, seed=seed)
    sim_b = Simulator(aig_b, num_words=0, seed=seed)
    patterns = [rng.getrandbits(rounds) for _ in range(aig_a.num_inputs)]
    sim_a._patterns = list(patterns)
    sim_b._patterns = list(patterns)
    sim_a._num_bits = rounds
    sim_b._num_bits = rounds
    sim_a._resimulate()
    sim_b._resimulate()
    for out_a, out_b in zip(sim_a.output_signatures(), sim_b.output_signatures()):
        diff = out_a ^ out_b
        if diff:
            k = (diff & -diff).bit_length() - 1
            return sim_a.pattern(k)
    return None
