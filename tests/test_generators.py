"""Semantic tests for every circuit generator."""

import itertools
import random

import pytest

from repro.circuits import generators as gen

from conftest import bits_of, word_of


def adder_io(aig, width, a, b, cin=None):
    bits = bits_of(a, width) + bits_of(b, width)
    if cin is not None:
        bits.append(cin)
    return word_of(aig.evaluate(bits))


ADDERS = [
    gen.ripple_carry_adder,
    gen.carry_lookahead_adder,
    gen.carry_select_adder,
    gen.kogge_stone_adder,
]


class TestAdders:
    @pytest.mark.parametrize("make", ADDERS, ids=lambda f: f.__name__)
    def test_exhaustive_width3(self, make):
        aig = make(3)
        for a in range(8):
            for b in range(8):
                assert adder_io(aig, 3, a, b) == a + b

    @pytest.mark.parametrize("make", ADDERS, ids=lambda f: f.__name__)
    def test_random_width10(self, make):
        aig = make(10)
        rng = random.Random(1)
        for _ in range(100):
            a, b = rng.randrange(1024), rng.randrange(1024)
            assert adder_io(aig, 10, a, b) == a + b

    @pytest.mark.parametrize(
        "make", [gen.ripple_carry_adder, gen.carry_lookahead_adder],
        ids=lambda f: f.__name__,
    )
    def test_carry_in(self, make):
        aig = make(4, carry_in=True)
        for a in range(16):
            for b in range(16):
                for cin in (0, 1):
                    assert adder_io(aig, 4, a, b, cin) == a + b + cin

    def test_carry_select_blocks(self):
        for block in (1, 2, 3, 5):
            aig = gen.carry_select_adder(6, block=block)
            rng = random.Random(block)
            for _ in range(50):
                a, b = rng.randrange(64), rng.randrange(64)
                assert adder_io(aig, 6, a, b) == a + b

    def test_architectures_differ_structurally(self):
        rc = gen.ripple_carry_adder(8)
        ks = gen.kogge_stone_adder(8)
        assert rc.depth() > ks.depth()


class TestSubtractor:
    def test_exhaustive(self):
        aig = gen.subtractor(4)
        for a in range(16):
            for b in range(16):
                out = aig.evaluate(bits_of(a, 4) + bits_of(b, 4))
                diff = word_of(out[:4])
                borrow = out[4]
                assert diff == (a - b) % 16
                assert borrow == int(a < b)


MULTIPLIERS = [
    gen.array_multiplier,
    gen.shift_add_multiplier,
    gen.wallace_multiplier,
]


class TestMultipliers:
    @pytest.mark.parametrize("make", MULTIPLIERS, ids=lambda f: f.__name__)
    def test_exhaustive_width3(self, make):
        aig = make(3)
        for a in range(8):
            for b in range(8):
                got = word_of(aig.evaluate(bits_of(a, 3) + bits_of(b, 3)))
                assert got == a * b

    @pytest.mark.parametrize("make", MULTIPLIERS, ids=lambda f: f.__name__)
    def test_random_width6(self, make):
        aig = make(6)
        rng = random.Random(2)
        for _ in range(80):
            a, b = rng.randrange(64), rng.randrange(64)
            got = word_of(aig.evaluate(bits_of(a, 6) + bits_of(b, 6)))
            assert got == a * b

    def test_wallace_differs_from_array(self):
        array = gen.array_multiplier(4)
        wallace = gen.wallace_multiplier(4)
        from repro.aig import build_miter

        miter = build_miter(array, wallace)
        # A real architecture pair must not strash to nothing: the miter
        # keeps substantial logic beyond either circuit alone.
        assert miter.aig.num_ands > array.num_ands


class TestComparators:
    @pytest.mark.parametrize(
        "make", [gen.comparator, gen.comparator_subtract],
        ids=lambda f: f.__name__,
    )
    def test_exhaustive(self, make):
        aig = make(4)
        for a in range(16):
            for b in range(16):
                lt, eq, gt = aig.evaluate(bits_of(a, 4) + bits_of(b, 4))
                assert (lt, eq, gt) == (int(a < b), int(a == b), int(a > b))

    def test_one_hot_property(self):
        aig = gen.comparator(5)
        rng = random.Random(3)
        for _ in range(100):
            a, b = rng.randrange(32), rng.randrange(32)
            outputs = aig.evaluate(bits_of(a, 5) + bits_of(b, 5))
            assert sum(outputs) == 1


class TestAlus:
    @pytest.mark.parametrize(
        "make", [gen.alu, gen.alu_mux_first], ids=lambda f: f.__name__
    )
    def test_all_ops_width3(self, make):
        aig = make(3)
        for a in range(8):
            for b in range(8):
                for op in range(4):
                    bits = bits_of(a, 3) + bits_of(b, 3) + [op & 1, op >> 1]
                    got = word_of(aig.evaluate(bits))
                    expected = [(a + b) & 7, a & b, a | b, a ^ b][op]
                    assert got == expected


class TestParityMajority:
    def test_parity_forms_agree(self):
        tree = gen.parity_tree(8)
        chain = gen.parity_chain(8)
        for value in range(256):
            bits = bits_of(value, 8)
            expected = bin(value).count("1") % 2
            assert tree.evaluate(bits) == [expected]
            assert chain.evaluate(bits) == [expected]

    def test_parity_depths_differ(self):
        assert gen.parity_tree(16).depth() < gen.parity_chain(16).depth()

    @pytest.mark.parametrize("width", [3, 5, 7])
    def test_majority(self, width):
        aig = gen.majority(width)
        for value in range(1 << width):
            bits = bits_of(value, width)
            expected = int(bin(value).count("1") > width // 2)
            assert aig.evaluate(bits) == [expected]

    def test_majority_needs_odd_width(self):
        with pytest.raises(ValueError):
            gen.majority(4)


class TestShifterMux:
    def test_barrel_shifter(self):
        aig = gen.barrel_shifter(3)
        rng = random.Random(4)
        for _ in range(100):
            value = rng.randrange(256)
            shift = rng.randrange(8)
            bits = bits_of(value, 8) + bits_of(shift, 3)
            got = word_of(aig.evaluate(bits))
            assert got == (value << shift) & 0xFF

    def test_mux_tree(self):
        aig = gen.mux_tree(3)
        rng = random.Random(5)
        for _ in range(100):
            data = rng.randrange(256)
            select = rng.randrange(8)
            bits = bits_of(data, 8) + bits_of(select, 3)
            assert aig.evaluate(bits) == [(data >> select) & 1]


class TestRandomAig:
    def test_deterministic(self):
        a = gen.random_aig(5, 30, seed=9)
        b = gen.random_aig(5, 30, seed=9)
        for value in range(32):
            bits = bits_of(value, 5)
            assert a.evaluate(bits) == b.evaluate(bits)

    def test_seed_changes_function(self):
        a = gen.random_aig(5, 30, seed=1)
        b = gen.random_aig(5, 30, seed=2)
        differs = any(
            a.evaluate(bits_of(v, 5)) != b.evaluate(bits_of(v, 5))
            for v in range(32)
        )
        assert differs

    def test_requested_sizes(self):
        aig = gen.random_aig(6, 50, num_outputs=3, seed=0)
        assert aig.num_inputs == 6
        assert aig.num_outputs == 3
        assert aig.num_ands <= 50


class TestFullAdder:
    def test_truth_table(self):
        from repro.aig import AIG

        aig = AIG()
        a, b, c = aig.add_inputs(3)
        s, carry = gen.full_adder(aig, a, b, c)
        aig.add_output(s)
        aig.add_output(carry)
        for bits in itertools.product([0, 1], repeat=3):
            total = sum(bits)
            assert aig.evaluate(list(bits)) == [total & 1, total >> 1]
