"""Phase timers, counters, gauges, and an optional JSONL event trace.

The :class:`Recorder` is the package's single instrumentation sink.
Components record into three namespaces:

* **phases** — wall-clock accumulators with call counts. Names are
  hierarchical with ``/`` separators; the :meth:`Recorder.phase`
  context manager builds the name from the enclosing phase stack, and
  :meth:`Recorder.add_time` charges a pre-measured duration to an
  explicit name (used by hot loops that accumulate locally and flush
  once).
* **counters** — monotonically increasing integers
  (:meth:`Recorder.count`).
* **gauges** — last-write-wins values (:meth:`Recorder.gauge`), for
  end-of-run sizes such as the final proof length.

When constructed with ``trace_path``, every :meth:`Recorder.event` call
appends one JSON object per line (fields ``t`` — seconds since the
recorder was created — and ``event``, plus caller keywords) so long runs
can be profiled post-hoc without holding events in memory.

:meth:`Recorder.report` serializes everything to the stable
``repro-stats/1`` schema documented in ``docs/instrumentation.md``; the
benchmark harness and the ``--stats-json`` CLI flags all emit exactly
this shape.

Literal phase names must belong to the registry in
:mod:`repro.instrument.phases`; the ``code.phase-registry`` lint rule
enforces this across ``src/repro``.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import (
    IO,
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
)

from .tracing import (
    Span,
    TraceContext,
    make_trace_document,
    new_span_id,
)

from ..analyze.schemas import STATS_SCHEMA as STATS_SCHEMA  # registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .progress import ProgressTracker


class Recorder:
    """Instrumentation sink: phase timers + counters + gauges + trace.

    A recorder is safe to share across threads (the service worker pool
    and server handler threads record into one instance): counter,
    gauge, phase-time, and trace mutation is serialized by an internal
    lock, and the active-phase stack that :meth:`phase` uses for
    hierarchical naming is thread-local, so concurrent phases in
    different threads never corrupt each other's names.

    Args:
        trace_path: optional path receiving one JSON object per
            :meth:`event` call (JSONL). The file is opened lazily on the
            first event and closed by :meth:`close`.
        clock: monotonic time source (overridable for tests).
    """

    enabled = True

    def __init__(
        self,
        trace_path: Optional[str] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._clock = clock
        self._start = clock()
        self._phases: Dict[str, List[float]] = {}  # name -> [seconds, count]
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, Any] = {}
        self._local = threading.local()  # per-thread active phase stack
        self._lock = threading.RLock()
        self._trace_path = trace_path
        self._trace_file: Optional[IO[str]] = None
        self.meta: Dict[str, Any] = {}
        # Distributed-tracing state; inert until start_trace() is
        # called, so untraced recorders pay nothing beyond one None
        # check per phase entry.
        self._trace_ctx: Optional[TraceContext] = None
        self._spans: List[Span] = []
        self._wall: Callable[[], float] = time.time
        # Optional live-progress tracker (repro.instrument.progress).
        # The solver/sweep hot paths pick it up only when the recorder
        # is enabled, so NULL_RECORDER runs never see heartbeats.
        self.progress: Optional["ProgressTracker"] = None

    @property
    def _stack(self) -> List[str]:
        stack: Optional[List[str]] = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @property
    def _span_stack(self) -> List[str]:
        stack: Optional[List[str]] = getattr(self._local, "spans", None)
        if stack is None:
            stack = []
            self._local.spans = stack
        return stack

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def _qualify(self, name: str) -> str:
        if self._stack:
            return self._stack[-1] + "/" + name
        return name

    @contextmanager
    def phase(self, name: str) -> Iterator["Recorder"]:
        """Time a phase; nested phases get ``outer/inner`` names.

        When a trace has been started (:meth:`start_trace`), every
        phase additionally records one span carrying the trace context:
        its parent is the enclosing phase's span in this thread, or the
        propagated remote parent at the top of the stack.
        """
        full = self._qualify(name)
        self._stack.append(full)
        ctx = self._trace_ctx
        span_id = ""
        parent_id: Optional[str] = None
        wall_start = 0.0
        if ctx is not None:
            span_id = new_span_id()
            span_stack = self._span_stack
            parent_id = span_stack[-1] if span_stack else ctx.parent_id
            span_stack.append(span_id)
            wall_start = self._wall()
        start = self._clock()
        try:
            yield self
        finally:
            elapsed = self._clock() - start
            self._stack.pop()
            if ctx is not None:
                self._span_stack.pop()
                self._append_span(
                    full, wall_start, elapsed, span_id, parent_id
                )
            self.add_time(full, elapsed)

    def add_time(self, name: str, seconds: float, count: int = 1) -> None:
        """Charge *seconds* to phase *name* (explicit, non-stacked)."""
        with self._lock:
            cell = self._phases.get(name)
            if cell is None:
                self._phases[name] = [seconds, count]
            else:
                cell[0] += seconds
                cell[1] += count

    def phase_seconds(self, name: str) -> float:
        """Accumulated seconds of phase *name* (0.0 when never entered)."""
        cell = self._phases.get(name)
        return cell[0] if cell else 0.0

    # ------------------------------------------------------------------
    # Tracing (spans)
    # ------------------------------------------------------------------

    def start_trace(
        self,
        context: Optional[TraceContext] = None,
        process: Optional[str] = None,
        wall: Callable[[], float] = time.time,
    ) -> TraceContext:
        """Begin recording spans for every subsequent :meth:`phase`.

        Args:
            context: propagated :class:`TraceContext` (a fresh root
                trace is started when omitted). Top-level phases parent
                under ``context.parent_id``.
            process: process label stamped on every span (defaults to
                ``meta["tool"]`` at span-creation time).
            wall: wall-clock source for span start timestamps
                (injectable for tests; spans from different processes
                share the epoch timeline).

        Returns the active context. Tracing is opt-in and idempotent:
        calling again replaces the context but keeps recorded spans.
        """
        with self._lock:
            self._trace_ctx = context if context is not None \
                else TraceContext.new()
            if process is not None:
                self.meta.setdefault("tool", process)
            self._wall = wall
            return self._trace_ctx

    @property
    def trace_context(self) -> Optional[TraceContext]:
        """The active trace context (``None`` when not tracing)."""
        return self._trace_ctx

    def _append_span(
        self,
        name: str,
        wall_start: float,
        duration: float,
        span_id: str,
        parent_id: Optional[str],
        **attrs: Any,
    ) -> None:
        ctx = self._trace_ctx
        if ctx is None:
            return
        span: Span = {
            "trace_id": ctx.trace_id,
            "span_id": span_id,
            "parent_id": parent_id,
            "name": name,
            "ts": wall_start,
            "dur": duration,
            "pid": os.getpid(),
            "process": str(self.meta.get("tool", "")) or "repro",
            "thread": threading.current_thread().name,
        }
        if attrs:
            span.update(attrs)
        with self._lock:
            self._spans.append(span)

    def add_span(
        self,
        name: str,
        seconds: float,
        ts: Optional[float] = None,
        span_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        **attrs: Any,
    ) -> Optional[str]:
        """Record one explicit span (events not shaped like a ``with``).

        Used for retrospective intervals such as the service's
        queue-wait, where start and end are observed from bookkeeping
        timestamps rather than by wrapping code. No phase time is
        charged — pair with :meth:`add_time` when the interval should
        also appear in the stats report. Returns the span id (``None``
        when no trace is active).
        """
        if self._trace_ctx is None:
            return None
        sid = span_id if span_id is not None else new_span_id()
        self._append_span(
            name,
            ts if ts is not None else self._wall() - seconds,
            seconds, sid, parent_id, **attrs,
        )
        return sid

    def spans(self) -> List[Span]:
        """Snapshot of the recorded spans (order of completion)."""
        with self._lock:
            return list(self._spans)

    def trace_report(self) -> Optional[Dict[str, Any]]:
        """The ``repro-trace/1`` document, or ``None`` when not tracing."""
        ctx = self._trace_ctx
        if ctx is None:
            return None
        return make_trace_document(ctx.trace_id, self.spans())

    # ------------------------------------------------------------------
    # Counters and gauges
    # ------------------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Increment counter *name* by *n*."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def counter(self, name: str) -> int:
        """Current value of counter *name* (0 when never incremented)."""
        return self._counters.get(name, 0)

    def gauge(self, name: str, value: Any) -> None:
        """Set gauge *name* to *value* (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    # ------------------------------------------------------------------
    # Event trace
    # ------------------------------------------------------------------

    def event(self, kind: str, **fields: Any) -> None:
        """Append one trace event (no-op unless ``trace_path`` was given)."""
        if self._trace_path is None:
            return
        record: Dict[str, Any] = {
            "t": round(self._clock() - self._start, 6), "event": kind,
        }
        record.update(fields)
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            if self._trace_file is None:
                self._trace_file = open(self._trace_path, "w")
            self._trace_file.write(line)

    def close(self) -> None:
        """Flush and close the trace file (idempotent)."""
        with self._lock:
            if self._trace_file is not None:
                self._trace_file.close()
                self._trace_file = None

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def report(self, budget: Optional[Any] = None) -> Dict[str, Any]:
        """Serialize to the stable ``repro-stats/1`` dict schema.

        Each phase cell carries ``seconds`` (inclusive of nested
        phases), ``count``, and ``self_seconds`` — the inclusive time
        minus the time of the phase's direct children in the ``/``
        hierarchy, so summing ``self_seconds`` over a subtree never
        double-counts (the flamegraph export weighs frames by it).

        Args:
            budget: optional :class:`~repro.instrument.budget.Budget`
                whose status is embedded under the ``"budget"`` key
                (``None`` there when no budget was in force).
        """
        with self._lock:
            # Attribute each phase's time to its nearest recorded
            # ancestor: the longest proper "/"-prefix present in the
            # table. Nested phase names may add several segments at
            # once ("cec/sweep" entering "sweep/sat" records
            # "cec/sweep/sweep/sat"), so the literal one-segment parent
            # often does not exist as a phase of its own.
            child_seconds: Dict[str, float] = {}
            for name, cell in self._phases.items():
                parts = name.split("/")
                for cut in range(len(parts) - 1, 0, -1):
                    prefix = "/".join(parts[:cut])
                    if prefix in self._phases:
                        child_seconds[prefix] = (
                            child_seconds.get(prefix, 0.0) + cell[0]
                        )
                        break
            return {
                "schema": STATS_SCHEMA,
                "elapsed_seconds": self._clock() - self._start,
                "phases": {
                    name: {
                        "seconds": cell[0],
                        "count": cell[1],
                        "self_seconds": max(
                            0.0, cell[0] - child_seconds.get(name, 0.0)
                        ),
                    }
                    for name, cell in sorted(self._phases.items())
                },
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "budget": budget.as_dict() if budget is not None else None,
                "meta": dict(self.meta),
            }

    def merge_report(self, report: Dict[str, Any]) -> None:
        """Fold another ``repro-stats/1`` report's phases and counters
        into this recorder.

        Used by the service front end to aggregate its worker
        processes' per-job reports into the server-level stats, so
        ``service``-scoped telemetry is not under-counted when the
        solving happens out of process. Gauges are last-write-wins and
        run-specific, so they are deliberately not merged.
        """
        for name, cell in report.get("phases", {}).items():
            self.add_time(name, cell["seconds"], count=cell["count"])
        for name, value in report.get("counters", {}).items():
            self.count(name, value)

    def write_json(self, path: str, budget: Optional[Any] = None) -> None:
        """Write :meth:`report` to *path* as indented JSON."""
        with open(path, "w") as handle:
            json.dump(self.report(budget=budget), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")


class _NullRecorder(Recorder):
    """Shared do-nothing recorder for uninstrumented runs.

    ``enabled`` is False so hot loops can skip even the cheap
    local-accumulation work; every mutating method is a no-op.
    """

    enabled = False

    def __init__(self) -> None:
        Recorder.__init__(self)

    @contextmanager
    def phase(self, name: str) -> Iterator[Recorder]:
        yield self

    def add_time(self, name: str, seconds: float, count: int = 1) -> None:
        pass

    def count(self, name: str, n: int = 1) -> None:
        pass

    def gauge(self, name: str, value: Any) -> None:
        pass

    def event(self, kind: str, **fields: Any) -> None:
        pass

    def start_trace(
        self,
        context: Optional[TraceContext] = None,
        process: Optional[str] = None,
        wall: Callable[[], float] = time.time,
    ) -> TraceContext:
        # Hand back a context so callers can propagate it, but record
        # nothing: the null recorder stays free of per-phase work.
        return context if context is not None else TraceContext.new()

    def add_span(
        self,
        name: str,
        seconds: float,
        ts: Optional[float] = None,
        span_id: Optional[str] = None,
        parent_id: Optional[str] = None,
        **attrs: Any,
    ) -> Optional[str]:
        return None


NULL_RECORDER = _NullRecorder()


def validate_report(report: Any) -> Dict[str, Any]:
    """Check *report* against the ``repro-stats/1`` schema.

    Used by tests and the CI smoke job. Raises ``ValueError`` with the
    first problem found; returns the report unchanged when valid.
    """
    if not isinstance(report, dict):
        raise ValueError("report must be a dict")
    if report.get("schema") != STATS_SCHEMA:
        raise ValueError("bad schema tag %r" % (report.get("schema"),))
    for key in ("elapsed_seconds", "phases", "counters", "gauges",
                "budget", "meta"):
        if key not in report:
            raise ValueError("missing top-level key %r" % key)
    if not isinstance(report["elapsed_seconds"], (int, float)):
        raise ValueError("elapsed_seconds must be a number")
    for name, cell in report["phases"].items():
        # self_seconds is optional so pre-existing reports stay valid;
        # when present it must be a sane exclusive-time value.
        if not {"seconds", "count"} <= set(cell) \
                or not set(cell) <= {"seconds", "count", "self_seconds"}:
            raise ValueError("phase %r must have seconds+count" % name)
        if cell["seconds"] < 0 or cell["count"] < 0:
            raise ValueError("phase %r has negative fields" % name)
        if "self_seconds" in cell and not (
            0 <= cell["self_seconds"] <= cell["seconds"] + 1e-9
        ):
            raise ValueError(
                "phase %r self_seconds outside [0, seconds]" % name
            )
    for name, value in report["counters"].items():
        if not isinstance(value, int) or value < 0:
            raise ValueError("counter %r must be a non-negative int" % name)
    budget = report["budget"]
    if budget is not None:
        for key in ("time_limit", "conflict_limit", "proof_clause_limit",
                    "conflicts", "proof_clauses", "elapsed_seconds",
                    "exhausted"):
            if key not in budget:
                raise ValueError("budget block missing key %r" % key)
        if budget["exhausted"] not in (
            None, "time", "conflicts", "proof_clauses",
        ):
            raise ValueError(
                "bad budget exhaustion reason %r" % (budget["exhausted"],)
            )
    return report
