"""CNF layer: clause containers, Tseitin encoding, DIMACS I/O."""

from .clause import CNF, is_tautology, normalize_clause
from .dimacs import DimacsError, parse_dimacs, read_dimacs, write_dimacs
from .tseitin import TseitinResult, tseitin_encode

__all__ = [
    "CNF",
    "DimacsError",
    "TseitinResult",
    "is_tautology",
    "normalize_clause",
    "parse_dimacs",
    "read_dimacs",
    "tseitin_encode",
    "write_dimacs",
]
