#!/usr/bin/env python
"""Dissecting a resolution proof.

Produces a proof for a small miter and walks through its anatomy: the
axiom/derived breakdown, the widest clauses, the derivation depth, the
effect of backward trimming, how much of the miter CNF the refutation
actually touches, and a dump of the final derivation steps.

Run:
    python examples/proof_inspection.py
"""

from repro import check_equivalence
from repro.circuits import comparator, comparator_subtract
from repro.proof import AXIOM
from repro.proof.stats import proof_stats
from repro.proof.trim import needed_ids, trim


def main():
    result = check_equivalence(comparator(6), comparator_subtract(6))
    assert result.equivalent
    store = result.proof

    stats = proof_stats(store)
    print("proof anatomy")
    print("  clauses:       %d (%d axioms, %d derived)" % (
        stats.num_clauses, stats.num_axioms, stats.num_derived))
    print("  resolutions:   %d" % stats.num_resolutions)
    print("  max width:     %d literals" % stats.max_width)
    print("  avg derived:   %.2f literals" % stats.avg_derived_width)
    print("  depth:         %d" % stats.depth)

    # How much of the CNF does the refutation actually use?
    core = needed_ids(store)
    core_axioms = sum(
        1 for cid in core if store.kind(cid) == AXIOM
    )
    print("  core axioms:   %d of %d CNF clauses" % (
        core_axioms, len(result.cnf)))

    trimmed, _ = trim(store)
    trimmed_stats = proof_stats(trimmed)
    print("  after trim:    %d clauses, %d resolutions (%.0f%% survive)" % (
        trimmed_stats.num_clauses,
        trimmed_stats.num_resolutions,
        100.0 * trimmed_stats.num_resolutions / max(stats.num_resolutions, 1),
    ))

    # The last few derivation steps before the empty clause.
    print("\nfinal derivation steps")
    empty_id = store.find_empty_clause()
    shown = 0
    cid = empty_id
    frontier = [empty_id]
    seen = set()
    while frontier and shown < 8:
        cid = frontier.pop(0)
        if cid in seen or store.kind(cid) == AXIOM:
            continue
        seen.add(cid)
        chain = store.chain(cid)
        print(
            "  clause %5d %-24r from %d antecedents"
            % (cid, store.clause(cid), len(chain))
        )
        frontier.extend(store.antecedents(cid))
        shown += 1


if __name__ == "__main__":
    main()
