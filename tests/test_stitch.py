"""Tests for the structural-merge resolution derivations."""

import pytest

from repro.core.stitch import (
    EquivLemma,
    StitchError,
    derive_subset,
    map_steps,
)
from repro.proof import ProofStore, check_proof


class TestDeriveSubset:
    def make_store(self):
        store = ProofStore(validate=True)
        ids = {
            "m_o": store.add_axiom([5, -3, -4]),   # (m | ~k1 | ~k2)
            "eq1": store.add_axiom([-1, 3]),       # l1 -> k1
            "eq2": store.add_axiom([-2, 4]),       # l2 -> k2
            "n_a": store.add_axiom([-6, 1]),       # (~n | l1)
            "n_b": store.add_axiom([-6, 2]),       # (~n | l2)
        }
        return store, ids

    def test_full_chain(self):
        store, ids = self.make_store()
        result = derive_subset(
            store,
            (5, -6),
            ids["m_o"],
            [
                (3, ids["eq1"]),
                (4, ids["eq2"]),
                (1, ids["n_a"]),
                (2, ids["n_b"]),
            ],
        )
        assert store.clause(result) == (-6, 5)
        check_proof(store, require_empty=False)

    def test_auto_pivot(self):
        store, ids = self.make_store()
        result = derive_subset(
            store,
            (5, -6),
            ids["m_o"],
            [
                (None, ids["eq1"]),
                (None, ids["eq2"]),
                (None, ids["n_a"]),
                (None, ids["n_b"]),
            ],
        )
        assert store.clause(result) == (-6, 5)

    def test_skips_inapplicable_steps(self):
        store, ids = self.make_store()
        extra = store.add_axiom([-9, 10])
        result = derive_subset(
            store,
            (5, -6),
            ids["m_o"],
            [
                (9, extra),          # pivot absent: skipped
                (None, extra),       # auto-pivot finds nothing: skipped
                (3, ids["eq1"]),
                (4, ids["eq2"]),
                (1, ids["n_a"]),
                (2, ids["n_b"]),
            ],
        )
        assert store.clause(result) == (-6, 5)

    def test_none_clause_ids_skipped(self):
        store, ids = self.make_store()
        result = derive_subset(
            store,
            (5, -3, -4),
            ids["m_o"],
            [(1, None), (None, None)],
        )
        assert result == ids["m_o"]

    def test_subset_violation_raises(self):
        store, ids = self.make_store()
        with pytest.raises(StitchError, match="not within target"):
            derive_subset(store, (5,), ids["m_o"], [(3, ids["eq1"])])

    def test_ambiguous_auto_pivot_raises(self):
        store = ProofStore(validate=True)
        a = store.add_axiom([1, 2])
        b = store.add_axiom([-1, -2, 3])
        with pytest.raises(StitchError, match="ambiguous"):
            derive_subset(store, (3,), a, [(None, b)])

    def test_degenerate_resolution_raises(self):
        store = ProofStore(validate=True)
        a = store.add_axiom([1, 2])
        b = store.add_axiom([-1, -2])
        # Resolving on 1 leaves {2, -2}: tautological resolvent.
        with pytest.raises(StitchError, match="degenerate"):
            derive_subset(store, (), a, [(1, b)])

    def test_start_clause_returned_unchanged(self):
        store, ids = self.make_store()
        result = derive_subset(store, (5, -3, -4), ids["m_o"], [])
        assert result == ids["m_o"]
        assert len(store) == 5  # nothing added


class TestMapSteps:
    def test_root_variable_no_steps(self):
        assert map_steps(None, 7) == []

    def test_positive_occurrence_uses_fwd(self):
        lemma = EquivLemma(fwd_id=3, bwd_id=4)
        assert map_steps(lemma, 7) == [(None, 3)]

    def test_negative_occurrence_uses_bwd(self):
        lemma = EquivLemma(fwd_id=3, bwd_id=4)
        assert map_steps(lemma, -7) == [(None, 4)]

    def test_vacuous_direction_raises(self):
        lemma = EquivLemma(fwd_id=None, bwd_id=4)
        with pytest.raises(StitchError):
            map_steps(lemma, 7)


class TestEngineStructuralDerivations:
    """Drive the stitcher through the engine on crafted AIGs."""

    def _run(self, build, **overrides):
        from repro.aig import AIG
        from repro.core.fraig import SweepEngine, SweepOptions

        aig = AIG()
        build(aig)
        options = SweepOptions(validate_proof=True, **overrides)
        engine = SweepEngine(aig, options)
        engine.sweep()
        check_proof(engine.proof, require_empty=False)
        return engine

    @staticmethod
    def _xor_sop(aig, a, b):
        """XOR as ~((a & b) | (~a & ~b)): same function as add_xor with a
        structurally different node set."""
        return aig.add_or(
            aig.add_and(a, b), aig.add_and(a ^ 1, b ^ 1)
        ) ^ 1

    def test_hash_merge_after_sat_merge(self):
        """Two AND trees over functionally equal (but structurally
        distinct) sub-nodes: the sub-nodes merge via SAT, the parents must
        then merge structurally with a resolution derivation."""

        def build(aig):
            a, b, c = aig.add_inputs(3)
            # XOR built two different ways: same function, different nodes.
            x1 = aig.add_xor(a, b)
            x2 = self._xor_sop(aig, a, b)
            n1 = aig.add_and(x1, c)
            n2 = aig.add_and(x2, c)
            aig.add_output(n1)
            aig.add_output(n2)

        engine = self._run(build)
        assert engine.stats.structural_merges >= 1
        n1_lit = engine.aig.outputs[0]
        n2_lit = engine.aig.outputs[1]
        assert engine.proven_equiv(n1_lit, n2_lit)

    def test_const0_by_complementary_children(self):
        def build(aig):
            a, b = aig.add_inputs(2)
            x1 = aig.add_xor(a, b)
            x2 = aig.add_xor(a ^ 1, b)  # = ~x1, structurally distinct
            dead = aig.add_and(x1, x2)  # always 0
            aig.add_output(dead)

        engine = self._run(build)
        from repro.aig.literal import FALSE

        assert engine.rep_lit(engine.aig.outputs[0]) == FALSE
        assert engine.stats.const_merges >= 1

    def test_copy_through_constant_fanin(self):
        def build(aig):
            a, b = aig.add_inputs(2)
            x1 = aig.add_xor(a, b)
            x2 = aig.add_xor(a ^ 1, b)          # = ~x1
            one = aig.add_or(x1, x2)            # always 1
            node = aig.add_and(one, a)          # = a
            aig.add_output(node)

        engine = self._run(build)
        a_lit = 2 * engine.aig.inputs[0]
        assert engine.proven_equiv(engine.aig.outputs[0], a_lit)

    def test_structural_off_still_correct(self):
        def build(aig):
            a, b, c = aig.add_inputs(3)
            x1 = aig.add_xor(a, b)
            x2 = self._xor_sop(aig, a, b)
            aig.add_output(aig.add_and(x1, c))
            aig.add_output(aig.add_and(x2, c))

        engine = self._run(build, structural_mode="off")
        assert engine.stats.structural_merges == 0
        assert engine.proven_equiv(
            engine.aig.outputs[0], engine.aig.outputs[1]
        )

    def test_structural_sat_mode(self):
        def build(aig):
            a, b, c = aig.add_inputs(3)
            x1 = aig.add_xor(a, b)
            x2 = self._xor_sop(aig, a, b)
            aig.add_output(aig.add_and(x1, c))
            aig.add_output(aig.add_and(x2, c))

        engine = self._run(build, structural_mode="sat")
        assert engine.stats.structural_merges >= 1
        assert engine.proven_equiv(
            engine.aig.outputs[0], engine.aig.outputs[1]
        )
