"""Performance benchmark: batched refinement and parallel proof checking.

Two experiments, both runnable as a standalone script (used by the CI
perf-smoke job) or under the benchmark harness::

    PYTHONPATH=src python benchmarks/bench_perf_refinement.py --out BENCH_refinement.json
    PYTHONPATH=src python benchmarks/bench_perf_refinement.py --small --out /tmp/b.json

Experiment 1 (refinement): sweep an adder pair with ``sim_words=0`` so
every candidate class is built purely from counterexample refinement,
and compare full-AIG simulation passes between the legacy
one-pattern-per-pass path (``refine_batch=0``), the batched path
(``refine_batch=1``), and deferred flushing (``refine_batch=4``). The
batched path must do at least 3x fewer passes at an identical verdict.

Experiment 2 (parallel check): replay a synthetic wide resolution proof
(>= 50k clauses in full mode) sequentially and with ``jobs`` worker
processes over the shared clause arena, asserting identical results.
On a multi-CPU host the warm-pool wall-clock speedup is recorded (and
asserted: never slower than 1.1x sequential, and >= 1.5x for the
full-size proof); on a single-CPU host the checker falls back to
sequential replay by design, and the document says so
(``"mode": "fallback"``) instead of publishing a fake speedup.

The JSON written by ``--out`` embeds the batched sweep's and the
parallel check's ``repro-stats/1`` reports so CI can validate them.
"""

import argparse
import json
import os
import sys
import time

from repro.circuits import kogge_stone_adder, ripple_carry_adder
from repro.core.cec import check_equivalence
from repro.core.fraig import SweepOptions
from repro.instrument import Recorder
from repro.instrument.recorder import validate_report
from repro.proof import ProofStore, check_proof, close_checker_pool, \
    resolve_jobs

CEX_NEIGHBORS = 4  # each refinement simulates the cex plus 4 neighbours
REFINE_MODES = [("legacy", 0), ("batched", 1), ("deferred4", 4)]


def _sweep(width, refine_batch):
    aig_a = ripple_carry_adder(width)
    aig_b = kogge_stone_adder(width)
    options = SweepOptions(
        sim_words=0, cex_neighbors=CEX_NEIGHBORS, refine_batch=refine_batch
    )
    start = time.perf_counter()
    result = check_equivalence(aig_a, aig_b, options)
    elapsed = time.perf_counter() - start
    return result, elapsed


def refinement_benchmark(small=False):
    """Compare simulation passes across refinement modes on one pair."""
    width = 8 if small else 16
    runs = {}
    for name, refine_batch in REFINE_MODES:
        result, elapsed = _sweep(width, refine_batch)
        assert result.equivalent is True, name
        stats = result.engine.stats
        runs[name] = {
            "refine_batch": refine_batch,
            "sim_passes": stats.sim_passes,
            "refinements": stats.refinements,
            "refine_flushes": stats.refine_flushes,
            "refine_patterns": stats.refine_patterns,
            "sat_calls": stats.sat_calls,
            "seconds": round(elapsed, 4),
        }
        if refine_batch == 1:
            validate_report(result.stats)
            runs[name]["stats"] = result.stats
    legacy, batched = runs["legacy"], runs["batched"]
    assert batched["refinements"] == legacy["refinements"]
    ratio = legacy["sim_passes"] / max(batched["sim_passes"], 1)
    if not small:
        # The full-size pair must exercise the acceptance criterion:
        # >= 50 refinements and >= 3x fewer simulation passes.
        assert batched["refinements"] >= 50, batched["refinements"]
    assert ratio >= 3.0, ratio
    return {
        "pair": "rca%d-vs-ks%d" % (width, width),
        "cex_neighbors": CEX_NEIGHBORS,
        "runs": runs,
        "sim_pass_ratio": round(ratio, 2),
    }


def synthetic_proof(blocks, width=8):
    """A wide refutation with *blocks* independent resolution chains.

    Each block derives a unit clause over its own disjoint variables via
    *width* resolutions; block 0 additionally derives the empty clause.
    Total size: ``blocks * (2 * width + 1) + 5`` clauses. Returns
    ``(store, axioms)``.
    """
    store = ProofStore()
    axioms = []
    for b in range(blocks):
        base = (width + 2) * b + 1
        xs = list(range(base, base + width + 1))
        x = xs[0]
        big = [x] + xs[1:]
        first = store.add_axiom(big)
        axioms.append(big)
        chain = [first]
        for k in range(width, 0, -1):
            clause = [x] + xs[1:k] + [-xs[k]]
            step = store.add_axiom(clause)
            axioms.append(clause)
            chain.append((xs[k], step))
            store.add_derived(sorted([x] + xs[1:k]), list(chain))
        if b == 0:
            neg_a = store.add_axiom([-x, xs[1]])
            neg_b = store.add_axiom([-x, -xs[1]])
            axioms += [[-x, xs[1]], [-x, -xs[1]]]
            neg_unit = store.add_derived([-x], [neg_a, (xs[1], neg_b)])
            pos_unit = store.add_derived([x], list(chain))
            store.add_derived([], [pos_unit, (x, neg_unit)])
    return store, axioms


def parallel_check_benchmark(small=False):
    """Replay one proof sequentially and in parallel; compare verdicts.

    The measurement is honest about the machine it ran on: ``jobs`` is
    the *request*, ``workers`` what ``resolve_jobs`` clamped it to, and
    a run where fewer than two CPUs (or workers) are available is
    labelled ``"mode": "fallback"`` with *no* ``speedup`` key — a
    single-CPU box replays sequentially by design, and publishing a
    "parallel" number for it is how the 0.405x baseline happened. The
    timed parallel run uses a warm pool (the service steady state);
    pool startup is recorded separately as ``parallel_cold_seconds``.
    """
    blocks = 500 if small else 3000
    jobs = 2 if small else 4
    store, axioms = synthetic_proof(blocks)
    cpus = os.cpu_count() or 1
    workers = resolve_jobs(jobs)
    parallel_mode = cpus >= 2 and workers >= 2
    start = time.perf_counter()
    seq = check_proof(store, axioms=axioms)
    seq_seconds = time.perf_counter() - start
    start = time.perf_counter()
    cold = check_proof(store, axioms=axioms, jobs=jobs)
    cold_seconds = time.perf_counter() - start
    recorder = Recorder()
    start = time.perf_counter()
    par = check_proof(store, axioms=axioms, recorder=recorder, jobs=jobs)
    par_seconds = time.perf_counter() - start
    close_checker_pool()
    for attr in (
        "num_axioms", "num_derived", "num_resolutions", "empty_clause_id"
    ):
        assert getattr(seq, attr) == getattr(par, attr), attr
        assert getattr(seq, attr) == getattr(cold, attr), attr
    report = recorder.report()
    validate_report(report)
    document = {
        "clauses": len(store),
        "resolutions": seq.num_resolutions,
        "jobs": jobs,
        "cpus": cpus,
        "workers": workers,
        "sequential_seconds": round(seq_seconds, 4),
        "parallel_cold_seconds": round(cold_seconds, 4),
        "parallel_seconds": round(par_seconds, 4),
        "stats": report,
    }
    if not parallel_mode:
        document["mode"] = "fallback"
        document["fallback"] = report["gauges"].get(
            "check/parallel_fallback", "cpus"
        )
        return document
    document["mode"] = "parallel"
    speedup = seq_seconds / max(par_seconds, 1e-9)
    document["speedup"] = round(speedup, 3)
    # Guard the 0.405x regression class on any multi-CPU runner; the
    # full-size proof must additionally hit the acceptance target.
    assert par_seconds <= 1.1 * seq_seconds, (
        "parallel replay slower than 1.1x sequential on %d CPUs "
        "(%.3fs vs %.3fs)" % (cpus, par_seconds, seq_seconds)
    )
    if not small:
        assert speedup >= 1.5, (
            "jobs=%d on %d CPUs only reached %.2fx (%.3fs vs %.3fs)"
            % (jobs, cpus, speedup, par_seconds, seq_seconds)
        )
    return document


def run(small=False):
    """Run both experiments; returns the combined result document."""
    refinement = refinement_benchmark(small=small)
    parallel = parallel_check_benchmark(small=small)
    return {
        "bench": "perf_refinement",
        "mode": "small" if small else "full",
        "refinement": refinement,
        "parallel_check": parallel,
    }


def test_perf_refinement_smoke(tmp_path):
    """Harness entry: the small configuration must hold end to end."""
    from conftest import report_table

    document = run(small=True)
    runs = document["refinement"]["runs"]
    report_table(
        "Perf: batched refinement (pair %s)"
        % document["refinement"]["pair"],
        ["mode", "sim passes", "refinements", "flushes", "time(s)"],
        [
            [name, r["sim_passes"], r["refinements"], r["refine_flushes"],
             r["seconds"]]
            for name, r in runs.items()
        ],
        notes=[
            "sim-pass ratio legacy/batched: %.1fx"
            % document["refinement"]["sim_pass_ratio"],
            "parallel check %.3fs vs sequential %.3fs on %d CPUs"
            % (
                document["parallel_check"]["parallel_seconds"],
                document["parallel_check"]["sequential_seconds"],
                document["parallel_check"]["cpus"],
            ),
        ],
    )


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Batched-refinement and parallel-check benchmark"
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="CI-sized configuration (8-bit adders, ~8.5k-clause proof)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        help="write the JSON result document (with embedded repro-stats/1 "
        "reports) to PATH",
    )
    args = parser.parse_args(argv)
    document = run(small=args.small)
    refinement = document["refinement"]
    parallel = document["parallel_check"]
    print(
        "refinement %s: legacy %d passes, batched %d, deferred %d "
        "(%.1fx fewer; %d refinements)"
        % (
            refinement["pair"],
            refinement["runs"]["legacy"]["sim_passes"],
            refinement["runs"]["batched"]["sim_passes"],
            refinement["runs"]["deferred4"]["sim_passes"],
            refinement["sim_pass_ratio"],
            refinement["runs"]["batched"]["refinements"],
        )
    )
    if parallel["mode"] == "parallel":
        print(
            "parallel check: %d clauses, %d resolutions, jobs=%d "
            "(workers=%d) on %d CPUs: %.3fs vs %.3fs sequential (%.2fx)"
            % (
                parallel["clauses"],
                parallel["resolutions"],
                parallel["jobs"],
                parallel["workers"],
                parallel["cpus"],
                parallel["parallel_seconds"],
                parallel["sequential_seconds"],
                parallel["speedup"],
            )
        )
    else:
        print(
            "parallel check: %d clauses on %d CPUs: sequential fallback "
            "(%s); jobs=%d request replayed in %.3fs vs %.3fs sequential"
            % (
                parallel["clauses"],
                parallel["cpus"],
                parallel["fallback"],
                parallel["jobs"],
                parallel["parallel_seconds"],
                parallel["sequential_seconds"],
            )
        )
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("results written to %s" % args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
