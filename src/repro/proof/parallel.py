"""Parallel resolution-proof checking over a shared clause arena.

Replaying a derivation chain needs only the *stored* clauses of its
antecedents — never the result of having validated them first — so every
clause of a proof can be checked independently. This module exploits
that: it packs the proof into a flat shared-memory clause arena
(:mod:`repro.proof.arena`), splits the id space into contiguous chunks
sized from the proof and the worker count, and replays the chunks on a
*persistent* worker pool.

Design points:

* **One flat arena, one code path.** The proof is packed once per check
  into ``array`` data in a ``multiprocessing.shared_memory`` segment.
  Workers attach by name, copy the packed arrays into local ``array``
  objects, and detach — no per-call list rebuild, no copy-on-write page
  faults, no per-worker pickling, identical behaviour under fork and
  spawn start methods.
* **Workers replay only derived clauses.** That is the actual parallel
  work. Axiom membership against the reference CNF and the empty-clause
  scan are cheap O(n) passes the parent runs itself — through the same
  shared :func:`repro.proof.checker.check_clause` unit — *while* the
  workers replay, so the reference-axiom set never crosses a process
  boundary at all.
* **Persistent workers.** :class:`CheckerPool` is created lazily on
  first use and reused across checks (chunk dispatch ships only
  ``(arena_name, lo, hi)``), so a service replaying proofs on its hot
  path pays pool startup once per process, not once per proof. Close it
  explicitly with :func:`close_checker_pool`; an ``atexit`` hook covers
  the rest.
* **Adaptive scheduling.** ``jobs`` is clamped to ``os.cpu_count()``;
  a single-CPU host, a ``jobs`` request resolving to one worker, and
  proofs below *min_clauses* all degrade to the sequential checker
  (same verdict, honest ≈1.0x) with the reason in the
  ``check/parallel_fallback`` gauge. Chunks are sized from
  ``len(store) / workers`` instead of a fixed constant, so small pools
  get few large chunks and large proofs still load-balance.
* **Deterministic error reporting.** Workers never raise across the
  process boundary; each returns its smallest failing clause id (with
  the exact message the sequential checker would produce — both modes
  share :func:`repro.proof.checker.check_clause`). The parent merges
  those with its own axiom-sweep verdict and raises for the globally
  smallest failing id, which is precisely the clause the sequential
  checker would have stopped at.

The public entry point is :func:`check_proof_parallel`, normally reached
through ``repro.proof.checker.check_proof(..., jobs=N)`` or the
``--jobs`` CLI flags.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import threading
import time
from typing import Any, Iterable, Iterator, List, Optional, Set, Tuple

from .arena import ArenaUnsupported, ClauseArena, KIND_AXIOM, attach_view
from .checker import CheckResult, check_clause, prepare_axioms
from .store import AXIOM, DERIVED, Clause, ProofError, ProofStore
from .trim import levelize

# Proofs smaller than this replay sequentially: arena construction and
# chunk dispatch cost more than the replay itself.
DEFAULT_MIN_CLAUSES = 4096

# Floor for the adaptive chunk size: below this, per-chunk dispatch
# overhead is no longer noise relative to the replay work.
MIN_CHUNK_SIZE = 256

# Target chunks per worker. A few chunks per worker absorbs skew in
# per-clause replay cost without shrinking chunks into dispatch noise.
CHUNKS_PER_WORKER = 4

# One worker error: (position, clause_id, message, rule_id). *position*
# is the id the checking loop was at (what "smallest failing clause"
# means); *clause_id* is what the ProofError itself carried, which can
# be None — resolution-step errors from ``resolve`` don't know their
# consumer. Keeping both reproduces the sequential exception exactly.
_WorkerError = Tuple[int, Optional[int], str, Optional[str]]
_ChunkResult = Tuple[Optional[_WorkerError], int]

#: One dispatched chunk: (arena segment name, lo, hi).
_ChunkTask = Tuple[str, int, int]


def _check_chunk(task: _ChunkTask) -> _ChunkResult:
    """Replay the derived clauses of one ``[lo, hi)`` id chunk.

    Returns ``(error, num_resolutions)`` where *error* is ``None`` or
    ``(position, clause_id, message, rule_id)`` for the smallest
    failing id in the chunk. Axioms are skipped — the parent validates
    them.
    """
    name, lo, hi = task
    view = attach_view(name)
    kinds = view.kinds
    get_clause = view.clause
    get_chain = view.chain
    num_resolutions = 0
    for clause_id in range(lo, hi):
        if kinds[clause_id] == KIND_AXIOM:
            continue
        try:
            num_resolutions += check_clause(
                clause_id, get_clause(clause_id), DERIVED,
                get_chain(clause_id), get_clause, None,
            )
        except ProofError as exc:
            error = (clause_id, exc.clause_id, str(exc), exc.rule_id)
            return error, num_resolutions
    return None, num_resolutions


def resolve_jobs(jobs: Optional[int], cpus: Optional[int] = None) -> int:
    """Normalize a ``jobs`` request to an *effective* worker count.

    ``0`` means one worker per CPU; any explicit request is clamped to
    the CPUs actually available (*cpus*, defaulting to
    ``os.cpu_count()``) — forking more checker processes than cores
    only adds scheduling overhead (the committed 0.405x "speedup" of
    ``jobs=4`` on a 1-CPU runner was exactly this bug).
    """
    cpus = cpus if cpus is not None else (os.cpu_count() or 1)
    return min(_requested_jobs(jobs), max(cpus, 1))


def _requested_jobs(jobs: Optional[int]) -> int:
    """The unclamped worker request (``0`` = per CPU)."""
    if jobs is None:
        return 1
    if jobs < 0:
        raise ValueError("jobs must be >= 0")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def _auto_chunk_size(num_clauses: int, workers: int) -> int:
    """Chunk size from the proof and pool shape (see module docstring)."""
    target = -(-num_clauses // (workers * CHUNKS_PER_WORKER))
    return max(MIN_CHUNK_SIZE, target)


def _chunk_schedule(
    arena_name: str, num_clauses: int, chunk_size: int,
) -> List[_ChunkTask]:
    """Deterministic chunk list over the proof's topological order.

    Insertion order *is* a topological order of the antecedent DAG (the
    store rejects non-prior references at append time, and the workers
    re-validate them clause by clause), so chunks are plain contiguous
    ``(lo, hi)`` id ranges — the cheapest possible thing to ship to a
    worker. :func:`~repro.proof.trim.levelize` supplies the DAG's shape
    separately: its level count is the critical replay path, reported as
    the ``check/levels`` gauge on instrumented runs.
    """
    return [
        (arena_name, lo, min(lo + chunk_size, num_clauses))
        for lo in range(0, num_clauses, chunk_size)
    ]


def _sweep_axioms(
    store: ProofStore,
    arena: ClauseArena,
    allowed: Optional[Set[Clause]],
    budget: Optional[Any],
) -> Optional[_WorkerError]:
    """Parent-side axiom membership sweep (runs while workers replay).

    Validates every axiom through the shared :func:`check_clause` unit
    and returns the smallest failing id as ``(position, clause_id,
    message, rule_id)``, or ``None``. A later axiom cannot fail with a
    smaller id, so the sweep stops at the first failure; the caller
    still merges this with the workers' derived-clause verdicts before
    raising.
    """
    if allowed is None:
        return None
    clauses = store.tables()[0]
    get_clause = clauses.__getitem__
    for clause_id, code in enumerate(arena.kind_codes):
        if code != KIND_AXIOM:
            continue
        if budget is not None and clause_id % 256 == 0:
            budget.check()
        try:
            check_clause(
                clause_id, clauses[clause_id], AXIOM, None, get_clause,
                allowed,
            )
        except ProofError as exc:
            return (clause_id, exc.clause_id, str(exc), exc.rule_id)
    return None


class CheckerPool:
    """A reusable pool of proof-checker worker processes.

    Unlike the old pool-per-call design, a :class:`CheckerPool`
    outlives individual checks: workers stay warm and successive proofs
    reach them through fresh shared-memory arenas (workers cache one
    copied arena view and swap it when a chunk names a new segment).
    The module-level singleton behind :func:`get_checker_pool` is what
    ``check_proof(jobs=N)`` uses; long-running processes (the service
    worker path) thereby replay every cache-verify and certify proof
    without re-forking.

    Args:
        processes: worker process count (already clamped by the
            caller).
        context: optional ``multiprocessing`` context; defaults to
            ``fork`` where available (cheapest startup) and the
            platform default elsewhere. Both behave identically — all
            proof state travels through the arena.
    """

    def __init__(self, processes: int, context: Optional[Any] = None) -> None:
        if context is None:
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            else:
                context = multiprocessing.get_context()
        self.processes = processes
        self.checks_served = 0
        self._pool = context.Pool(processes=processes)
        self._lock = threading.Lock()
        self._active = 0
        self._closed = False
        self._terminated = False

    @property
    def closed(self) -> bool:
        """True once :meth:`close` was called; new checks are refused.

        The workers themselves may outlive this flag briefly: with
        leases in flight, termination is deferred to the last
        :meth:`release`.
        """
        return self._closed

    def acquire(self) -> None:
        """Register one in-flight check; pairs with :meth:`release`.

        While any lease is held, :meth:`close` defers terminating the
        workers, so a concurrent "replace the shared pool with a wider
        one" cannot kill a check that is mid-``imap_unordered`` (the
        race behind the old sporadic non-ProofError crashes).

        Raises:
            ValueError: when the pool is already closed.
        """
        with self._lock:
            if self._closed:
                raise ValueError("checker pool is closed")
            self._active += 1

    def release(self) -> None:
        """Drop one lease; the last one executes a deferred close."""
        with self._lock:
            if self._active > 0:
                self._active -= 1
            reap = self._closed and self._active == 0 \
                and not self._terminated
            if reap:
                self._terminated = True
        if reap:
            self._terminate()

    def imap_unordered(
        self, func: Any, tasks: Iterable[Any],
    ) -> Iterator[Any]:
        """Dispatch *tasks* across the pool, yielding results as they
        complete."""
        with self._lock:
            if self._closed:
                raise ValueError("checker pool is closed")
            self.checks_served += 1
        return self._pool.imap_unordered(func, tasks)

    def close(self) -> None:
        """Refuse new checks and reap the workers (idempotent).

        Termination (rather than a graceful drain) is safe here: chunk
        checking is pure — workers hold no state worth flushing beyond
        their copied arena view, and the owning check unlinks the
        segment itself. With leases in flight the workers are kept
        alive and the termination runs at the last :meth:`release`.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            reap = self._active == 0 and not self._terminated
            if reap:
                self._terminated = True
        if reap:
            self._terminate()

    def _terminate(self) -> None:
        self._pool.terminate()
        self._pool.join()


_POOL: Optional[CheckerPool] = None
_POOL_LOCK = threading.Lock()


def get_checker_pool(workers: int) -> CheckerPool:
    """The shared :class:`CheckerPool`, created lazily.

    An existing pool is reused when it is alive and at least *workers*
    wide; a wider request replaces it (checks still leased on the old
    pool finish on its workers — see :meth:`CheckerPool.close`). The
    pool persists until :func:`close_checker_pool` (called
    automatically at interpreter exit).
    """
    with _POOL_LOCK:
        return _shared_pool_locked(workers)


def _lease_checker_pool(workers: int) -> CheckerPool:
    """The shared pool with one lease already acquired, atomically.

    Acquiring under ``_POOL_LOCK`` closes the window in which another
    thread's wider request could close the pool between "get" and
    "acquire".
    """
    with _POOL_LOCK:
        pool = _shared_pool_locked(workers)
        pool.acquire()
        return pool


def _shared_pool_locked(workers: int) -> CheckerPool:
    global _POOL
    pool = _POOL
    if pool is not None and (pool.closed or pool.processes < workers):
        pool.close()
        pool = _POOL = None
    if pool is None:
        pool = _POOL = CheckerPool(workers)
    return pool


def close_checker_pool() -> None:
    """Shut down the shared checker pool (safe to call repeatedly)."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.close()
            _POOL = None


atexit.register(close_checker_pool)


def check_proof_parallel(
    store: ProofStore,
    axioms: Optional[Iterable[Iterable[int]]] = None,
    require_empty: bool = True,
    recorder: Optional[Any] = None,
    budget: Optional[Any] = None,
    jobs: Optional[int] = 0,
    chunk_size: Optional[int] = None,
    min_clauses: int = DEFAULT_MIN_CLAUSES,
    pool: Optional[CheckerPool] = None,
) -> CheckResult:
    """Verify *store* like ``check_proof``, replaying chunks in parallel.

    Accepts and rejects exactly the same proofs as the sequential
    checker and raises the same :class:`ProofError` (message and
    ``clause_id``) for the smallest failing clause id. See the module
    docstring for the execution model.

    Args:
        store: the :class:`~repro.proof.store.ProofStore` to verify.
        axioms: optional reference axiom set (as in ``check_proof``).
        require_empty: when true, fail unless some clause is empty.
        recorder: optional recorder; the pool replay is charged to
            ``check/parallel-replay`` and the worker/level/chunk shape
            lands in ``check/*`` gauges.
        budget: optional budget, consulted during the parent's axiom
            sweep, as chunk results arrive, and once more after the
            final chunk.
        jobs: worker processes (``0`` = one per CPU; clamped to the
            CPUs available; ``None``/``1`` = sequential).
        chunk_size: clause ids per dispatched chunk (``None`` = sized
            from ``len(store)`` and the effective worker count).
        min_clauses: proofs smaller than this replay sequentially.
        pool: optional externally-owned :class:`CheckerPool`; by
            default the shared module pool is used (and left running
            for the next check).

    Returns:
        A :class:`~repro.proof.checker.CheckResult`.
    """
    from .checker import check_proof  # late import: two-way module pair

    cpus = os.cpu_count() or 1
    requested = _requested_jobs(jobs)
    workers = min(requested, max(cpus, 1))
    fallback = None
    if requested <= 1:
        fallback = "jobs"
    elif cpus < 2:
        fallback = "cpus"
    elif len(store) < min_clauses:
        fallback = "small_proof"
    if fallback is not None:
        if recorder is not None and recorder.enabled:
            recorder.gauge("check/parallel_fallback", fallback)
        return check_proof(
            store, axioms=axioms, require_empty=require_empty,
            recorder=recorder, budget=budget,
        )

    instrumented = recorder is not None and recorder.enabled
    start = time.perf_counter() if instrumented else 0.0

    def sequential(reason: str) -> CheckResult:
        if recorder is not None and recorder.enabled:
            recorder.gauge("check/parallel_fallback", reason)
        return check_proof(
            store, axioms=axioms, require_empty=require_empty,
            recorder=recorder, budget=budget,
        )

    try:
        arena = ClauseArena.build(store)
    except ArenaUnsupported as exc:
        # Unpackable content: the sequential checker is authoritative
        # (and produces the exact error for genuinely corrupt stores).
        return sequential("arena: %s" % exc)
    except OSError as exc:
        return sequential("arena: %s" % exc)

    errors: List[_WorkerError] = []
    num_resolutions = 0
    leased = False
    try:
        if chunk_size is None:
            chunk_size = _auto_chunk_size(len(store), workers)
        chunks = _chunk_schedule(arena.name, len(store), chunk_size)
        try:
            if pool is None:
                pool = _lease_checker_pool(workers)
            else:
                pool.acquire()
            leased = True
            results = pool.imap_unordered(_check_chunk, chunks)
        except (OSError, ValueError) as exc:
            # Pool creation failed or the shared pool was closed from
            # under us: the sequential checker still settles the proof.
            return sequential("pool: %s" % exc)
        # The workers are replaying now; overlap the parent-side O(n)
        # passes (axiom-set normalization and membership, DAG shape)
        # with them.
        allowed = prepare_axioms(axioms)
        axiom_error = _sweep_axioms(store, arena, allowed, budget)
        if axiom_error is not None:
            errors.append(axiom_error)
        num_levels = len(levelize(store)) if instrumented else None
        for result in results:
            if budget is not None:
                budget.check()
            error, res = result
            if error is not None:
                errors.append(error)
            num_resolutions += res
        if budget is not None:
            # The per-result checks above run *before* each chunk is
            # folded in; this final check catches a budget that expired
            # while the last chunk was replaying.
            budget.check()
    finally:
        if leased and pool is not None:
            pool.release()
        arena.close()

    if errors:
        _, clause_id, message, rule_id = min(
            errors, key=lambda error: error[0]
        )
        raise ProofError(message, clause_id=clause_id, rule_id=rule_id)
    empty_id = arena.empty_id
    if require_empty and empty_id is None:
        raise ProofError(
            "proof does not derive the empty clause",
            rule_id="proof.no-refutation",
        )
    if instrumented:
        recorder.add_time(
            "check/parallel-replay", time.perf_counter() - start,
            count=len(chunks),
        )
        recorder.count("check/clauses", len(store))
        recorder.count("check/resolutions", num_resolutions)
        recorder.gauge("check/jobs", workers)
        recorder.gauge("check/levels", num_levels)
        recorder.gauge("check/chunks", len(chunks))
        recorder.gauge("check/chunk_size", chunk_size)
        recorder.gauge("check/arena_bytes", arena.nbytes)
        recorder.gauge("check/pool_checks", pool.checks_served)
    return CheckResult(
        arena.num_axioms, arena.num_derived, num_resolutions, empty_id,
    )
