"""Structured logging: JSON formatter, configuration, logger naming."""

import io
import json
import logging

import pytest

from repro.instrument import JsonLogFormatter, configure_logging, get_logger
from repro.instrument.logs import LOGGER_NAME, PlainLogFormatter


def teardown_function(function):
    # Leave no handlers behind for other tests.
    logger = logging.getLogger(LOGGER_NAME)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
    logger.propagate = True


def _record(message="hello", level=logging.INFO, **extra):
    record = logging.LogRecord(
        "repro.test", level, __file__, 1, message, (), None,
    )
    for key, value in extra.items():
        setattr(record, key, value)
    return record


class TestJsonFormatter:
    def test_core_fields(self):
        line = JsonLogFormatter().format(_record())
        document = json.loads(line)
        assert document["message"] == "hello"
        assert document["level"] == "info"
        assert document["logger"] == "repro.test"
        assert document["ts"].endswith("Z")

    def test_extras_are_emitted(self):
        line = JsonLogFormatter().format(_record(
            job_id="j000001", trace_id="a" * 32,
        ))
        document = json.loads(line)
        assert document["job_id"] == "j000001"
        assert document["trace_id"] == "a" * 32

    def test_unserializable_extra_falls_back_to_repr(self):
        line = JsonLogFormatter().format(_record(payload={1, 2}))
        assert "payload" in json.loads(line)

    def test_exception_is_included(self):
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            import sys
            record = _record(level=logging.ERROR)
            record.exc_info = sys.exc_info()
        document = json.loads(JsonLogFormatter().format(record))
        assert "boom" in document["exc"]


class TestPlainFormatter:
    def test_extras_appended(self):
        line = PlainLogFormatter().format(_record(job_id="j000001"))
        assert line == "repro.test: hello (job_id=j000001)"

    def test_warning_prefixed_with_level(self):
        line = PlainLogFormatter().format(
            _record(level=logging.WARNING)
        )
        assert line.startswith("warning: repro.test: hello")


class TestConfigureLogging:
    def test_json_lines_reach_the_stream(self):
        stream = io.StringIO()
        configure_logging(json_logs=True, level="info", stream=stream)
        get_logger("service.server").info(
            "job %s done", "j000001", extra={"job_id": "j000001"},
        )
        document = json.loads(stream.getvalue())
        assert document["message"] == "job j000001 done"
        assert document["job_id"] == "j000001"
        assert document["logger"] == "repro.service.server"

    def test_idempotent_reconfiguration(self):
        stream = io.StringIO()
        configure_logging(stream=io.StringIO())
        configure_logging(stream=stream)  # replaces, never stacks
        logger = logging.getLogger(LOGGER_NAME)
        named = [h for h in logger.handlers
                 if h.get_name() == "repro-configured"]
        assert len(named) == 1
        get_logger("x").info("once")
        assert stream.getvalue().count("once") == 1

    def test_level_filtering(self):
        stream = io.StringIO()
        configure_logging(level="warning", stream=stream)
        get_logger("x").info("hidden")
        get_logger("x").warning("shown")
        assert "hidden" not in stream.getvalue()
        assert "shown" in stream.getvalue()

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError):
            configure_logging(level="loud")


class TestGetLogger:
    def test_prefixes_package_namespace(self):
        assert get_logger("service.server").name == \
            "repro.service.server"
        assert get_logger("repro.x").name == "repro.x"
        assert get_logger("repro").name == "repro"
