"""Content-addressed on-disk cache of equivalence-check certificates.

Entries are keyed by :func:`repro.aig.structhash.pair_key` — a
canonical structural hash of the (AIG, AIG) query pair, symmetric in
the two circuits, salted with a canonical encoding of the engine
options — and store the complete ``repro-cec-result/1`` document: the
verdict, the counterexample or the trimmed TraceCheck proof, the miter
CNF it refutes, and the original run's stats. Because the certificate
is self-contained, a hit is served without touching any engine and the
client can still replay the proof end to end.

Only *decided* verdicts are stored. An undecided result reflects the
budget of the run that produced it, not the query, so caching it would
wrongly pin later, better-funded queries.

Layout (under the cache root)::

    <key[:2]>/<key>/result.json   the repro-cec-result/1 document
    <key[:2]>/<key>/meta.json     verdict, timestamps, options echo

Writes are atomic (temp file + ``os.replace``) so a crashed or
concurrent writer never leaves a half-readable entry; double stores of
the same key are idempotent.
"""

import json
import os
import tempfile

from ..aig.structhash import pair_key
from ..analyze.schemas import CACHE_META_SCHEMA

#: SweepOptions fields that select the engine configuration and hence
#: the artifact; they are folded into the cache key in canonical form.
OPTION_FIELDS = (
    "sim_words", "seed", "structural_mode", "use_simulation",
    "cex_neighbors", "refine_batch", "max_conflicts", "proof",
    "validate_proof",
)


def canonical_options(options=None):
    """Canonical JSON encoding of an options mapping or ``SweepOptions``.

    Missing fields take the engine defaults, so a query that spells out
    the defaults and one that omits them share a cache entry.
    """
    from ..core.fraig import SweepOptions

    if options is None:
        options = SweepOptions()
    if not isinstance(options, dict):
        options = {
            field: getattr(options, field) for field in OPTION_FIELDS
        }
    defaults = SweepOptions()
    normalized = {
        field: options.get(field, getattr(defaults, field))
        for field in OPTION_FIELDS
    }
    return json.dumps(normalized, sort_keys=True)


def cache_key(aig_a, aig_b, options=None):
    """Cache key of one equivalence query (symmetric in the pair)."""
    return pair_key(aig_a, aig_b, salt=canonical_options(options))


class ProofCache:
    """On-disk certificate store, safe for concurrent readers/writers.

    Args:
        root: cache directory (created on first use).
        recorder: optional :class:`~repro.instrument.Recorder`; lookups
            and stores are timed under the ``cache/*`` phases and
            counted as ``cache/hits`` / ``cache/misses`` /
            ``cache/stores``.
    """

    def __init__(self, root, recorder=None):
        self.root = root
        self.recorder = recorder
        os.makedirs(root, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------

    def _entry_dir(self, key):
        return os.path.join(self.root, key[:2], key)

    def result_path(self, key):
        """Path of the result document for *key* (may not exist)."""
        return os.path.join(self._entry_dir(key), "result.json")

    def meta_path(self, key):
        """Path of the metadata block for *key* (may not exist)."""
        return os.path.join(self._entry_dir(key), "meta.json")

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def lookup(self, key):
        """The stored ``repro-cec-result/1`` document, or ``None``.

        A corrupt entry (interrupted write predating the atomic-rename
        discipline, manual tampering) reads as a miss rather than an
        error; the next store overwrites it.
        """
        recorder = self.recorder
        if recorder is not None:
            with recorder.phase("cache/lookup"):
                payload = self._read_result(key)
            recorder.count("cache/hits" if payload is not None
                           else "cache/misses")
            return payload
        return self._read_result(key)

    def _read_result(self, key):
        try:
            with open(self.result_path(key)) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def read_meta(self, key):
        """The ``repro-cec-cache/1`` metadata block for *key*, or ``None``.

        A metadata probe is the cheap half of an entry (verdict and
        provenance, no proof text); the fleet's ``cache`` verb answers
        key probes from it without shipping the result document.
        """
        try:
            with open(self.meta_path(key)) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def store(self, key, result_doc, meta=None):
        """Persist a decided result document under *key*.

        Undecided documents are refused with ``ValueError`` (see the
        module docstring). Returns True when a new entry was written,
        False when the key was already present (idempotent).
        """
        if result_doc.get("equivalent") is None:
            raise ValueError(
                "refusing to cache an undecided result (key %s)" % key
            )
        recorder = self.recorder
        if recorder is None:
            return self._write_entry(key, result_doc, meta)
        with recorder.phase("cache/store"):
            written = self._write_entry(key, result_doc, meta)
        if written:
            recorder.count("cache/stores")
        return written

    def _write_entry(self, key, result_doc, meta):
        entry_dir = self._entry_dir(key)
        result_path = self.result_path(key)
        if os.path.exists(result_path):
            return False
        os.makedirs(entry_dir, exist_ok=True)
        meta_doc = {
            "schema": CACHE_META_SCHEMA,
            "key": key,
            "verdict": {True: "equivalent", False: "not_equivalent"}[
                result_doc["equivalent"]
            ],
        }
        if meta:
            meta_doc.update(meta)
        self._atomic_write(self.meta_path(key), meta_doc)
        self._atomic_write(result_path, result_doc)
        return True

    @staticmethod
    def _atomic_write(path, document):
        directory = os.path.dirname(path)
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(document, handle, sort_keys=True)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def keys(self):
        """All cached keys (directory scan; for tools and tests)."""
        found = []
        try:
            shards = os.listdir(self.root)
        except OSError:
            return found
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for key in os.listdir(shard_dir):
                if os.path.exists(self.result_path(key)):
                    found.append(key)
        return sorted(found)

    def __len__(self):
        return len(self.keys())

    def __contains__(self, key):
        return os.path.exists(self.result_path(key))
