"""Backward proof trimming.

A CDCL run logs every learned clause, but only the ones in the transitive
antecedent cone of the final empty clause matter. Trimming computes that
cone and can rebuild a compact store containing only the needed clauses,
renumbered in a valid derivation order.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Set, Tuple

from .store import AXIOM, Chain, ProofError, ProofStore


def needed_ids(store: ProofStore, root_id: Optional[int] = None) -> Set[int]:
    """Set of clause ids in the antecedent cone of *root_id*.

    *root_id* defaults to the store's (first) empty clause.
    """
    if root_id is None:
        root_id = store.find_empty_clause()
        if root_id is None:
            raise ProofError(
                "store has no empty clause to trim towards",
                rule_id="proof.no-refutation",
            )
    needed: Set[int] = set()
    stack = [root_id]
    while stack:
        clause_id = stack.pop()
        if clause_id in needed:
            continue
        needed.add(clause_id)
        stack.extend(store.antecedents(clause_id))
    return needed


def trim(
    store: ProofStore,
    root_id: Optional[int] = None,
    recorder: Optional[Any] = None,
) -> Tuple[ProofStore, Dict[int, int]]:
    """Rebuild a store containing only the cone of *root_id*.

    Args:
        recorder: optional
            :class:`~repro.instrument.recorder.Recorder`; records the
            cone-walk and rebuild timings (``trim/cone``,
            ``trim/rebuild``) and the cone/total clause counts.

    Returns:
        ``(trimmed_store, id_map)`` where ``id_map`` maps old ids of kept
        clauses to their new ids.
    """
    instrumented = recorder is not None and recorder.enabled
    start = time.perf_counter() if instrumented else 0.0
    keep = needed_ids(store, root_id)
    if instrumented:
        now = time.perf_counter()
        recorder.add_time("trim/cone", now - start)
        recorder.gauge("trim/total_clauses", len(store))
        recorder.gauge("trim/cone_clauses", len(keep))
        start = now
    trimmed = ProofStore()
    id_map: Dict[int, int] = {}
    for clause_id in sorted(keep):
        clause = store.clause(clause_id)
        chain = store.chain(clause_id)
        if store.kind(clause_id) == AXIOM or chain is None:
            id_map[clause_id] = trimmed.add_axiom(clause)
        else:
            new_chain: Chain = [id_map[chain[0]]]
            for pivot, antecedent_id in chain[1:]:
                new_chain.append((pivot, id_map[antecedent_id]))
            id_map[clause_id] = trimmed.add_derived(clause, new_chain)
    if instrumented:
        recorder.add_time("trim/rebuild", time.perf_counter() - start)
    return trimmed, id_map


def levelize(store: ProofStore) -> List[List[int]]:
    """Topologically levelize the store's antecedent DAG.

    Level 0 holds the axioms; a derived clause sits one level above its
    deepest antecedent. Returns a list of id lists, one per level, each
    in ascending id order. Clauses *within* a level share no antecedent
    relation, so their derivations can be replayed independently — the
    parallel checker's scheduling basis, and the level count (the DAG's
    critical-path length) bounds how deep any replay dependency chain
    gets.

    Malformed antecedent references (non-prior ids) are treated as
    level-0 antecedents rather than raised here: the checker proper
    reports them with deterministic per-clause errors.
    """
    size = len(store)
    level = [0] * size
    buckets: List[List[int]] = [[]]
    chain_of = store.chain
    for clause_id in range(size):
        chain = chain_of(clause_id)
        if chain is None:
            buckets[0].append(clause_id)
            continue
        first = chain[0]
        depth = level[first] + 1 if 0 <= first < clause_id else 1
        for _, antecedent_id in chain[1:]:
            candidate = (
                level[antecedent_id] + 1
                if 0 <= antecedent_id < clause_id
                else 1
            )
            if candidate > depth:
                depth = candidate
        level[clause_id] = depth
        while len(buckets) <= depth:
            buckets.append([])
        buckets[depth].append(clause_id)
    return buckets


def trim_ratio(store: ProofStore, root_id: Optional[int] = None) -> float:
    """Fraction of clauses surviving the trim, ``len(kept) / len(store)``."""
    if not len(store):
        return 1.0
    return len(needed_ids(store, root_id)) / float(len(store))
