"""Distributed tracing primitives: trace context, spans, exporters.

A **span** is one timed phase execution with an identity: it carries a
``trace_id`` shared by every span of one logical operation (for the CEC
service: one submitted job, from the client's request through the queue
to the worker's solver phases and the cache store), its own ``span_id``,
and the ``parent_id`` of the enclosing span. Spans are plain dicts so
they serialize to JSON without ceremony; the full document schema is
``repro-trace/1``::

    {
      "schema": "repro-trace/1",
      "trace_id": "4bf92f3577b34da6a3ce929d0e0e4736",
      "spans": [
        {"trace_id": "...", "span_id": "00f067aa0ba902b7",
         "parent_id": null, "name": "service/job",
         "ts": 1754500000.123456, "dur": 0.2843,
         "pid": 4242, "process": "repro-serve", "thread": "MainThread"}
      ]
    }

``ts`` is wall-clock epoch seconds (so spans from different processes
stitch onto one timeline) and ``dur`` is seconds measured on the
producing process's monotonic clock.

:class:`TraceContext` is the propagated part: ``(trace_id, parent_id)``
travels over the ``repro-service/1`` protocol as a small JSON mapping
(:meth:`TraceContext.to_wire`); :meth:`TraceContext.from_wire`
**degrades to a fresh trace** on a missing or malformed header instead
of raising, so a bad client can never crash — or detrace — the server.

Exporters turn a ``repro-trace/1`` document into the two de-facto
profiling interchange formats: Chrome ``trace_event`` JSON
(:func:`to_chrome_trace`, loadable in Perfetto / ``chrome://tracing`` /
speedscope) and collapsed flamegraph stacks
(:func:`to_collapsed_stacks`, the ``a;b;c <weight>`` lines consumed by
``flamegraph.pl`` and speedscope).
"""

from __future__ import annotations

import re
import uuid
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..analyze.schemas import TRACE_SCHEMA as TRACE_SCHEMA  # registry

#: A span is a flat JSON-compatible mapping (see the module docstring).
Span = Dict[str, Any]

#: Accepted id shapes: lowercase hex, 16-64 nibbles for trace ids and
#: 8-32 for span ids (we emit 32/16, the W3C traceparent widths).
_TRACE_ID = re.compile(r"^[0-9a-f]{16,64}$")
_SPAN_ID = re.compile(r"^[0-9a-f]{8,32}$")


def new_trace_id() -> str:
    """A fresh 32-nibble trace id."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-nibble span id."""
    return uuid.uuid4().hex[:16]


class TraceContext:
    """The propagated identity of a trace: ``(trace_id, parent_id)``.

    ``parent_id`` is the span id that spans created under this context
    should report as their parent — ``None`` at the root of a trace.
    """

    __slots__ = ("trace_id", "parent_id")

    def __init__(self, trace_id: str, parent_id: Optional[str] = None) -> None:
        self.trace_id = trace_id
        self.parent_id = parent_id

    @classmethod
    def new(cls) -> "TraceContext":
        """A fresh root context (new trace id, no parent)."""
        return cls(new_trace_id(), None)

    def child(self, parent_id: str) -> "TraceContext":
        """The same trace, re-rooted under span *parent_id*."""
        return TraceContext(self.trace_id, parent_id)

    def to_wire(self) -> Dict[str, str]:
        """The JSON mapping carried in protocol messages."""
        wire = {"trace_id": self.trace_id}
        if self.parent_id is not None:
            wire["parent_id"] = self.parent_id
        return wire

    @classmethod
    def from_wire(cls, wire: Any) -> Tuple["TraceContext", bool]:
        """Parse a wire mapping; degrade to a fresh trace when malformed.

        Returns ``(context, propagated)`` where *propagated* is False
        when the header was absent or malformed and a fresh trace was
        started instead. Never raises: observability must not be able
        to fail a job.
        """
        if not isinstance(wire, Mapping):
            return cls.new(), False
        trace_id = wire.get("trace_id")
        if not (isinstance(trace_id, str) and _TRACE_ID.match(trace_id)):
            return cls.new(), False
        parent_id = wire.get("parent_id")
        if parent_id is not None and not (
            isinstance(parent_id, str) and _SPAN_ID.match(parent_id)
        ):
            return cls.new(), False
        return cls(trace_id, parent_id), True

    def __repr__(self) -> str:
        return "TraceContext(trace_id=%r, parent_id=%r)" % (
            self.trace_id, self.parent_id,
        )


def make_trace_document(trace_id: str, spans: List[Span]) -> Dict[str, Any]:
    """Assemble a ``repro-trace/1`` document (spans sorted by start)."""
    return {
        "schema": TRACE_SCHEMA,
        "trace_id": trace_id,
        "spans": sorted(spans, key=lambda span: (span["ts"], span["name"])),
    }


def merge_trace_documents(
    base: Dict[str, Any], *others: Optional[Dict[str, Any]]
) -> Dict[str, Any]:
    """One document holding the spans of *base* plus every other.

    The merged document keeps *base*'s trace id; spans keep the ids they
    were recorded with (a degraded child trace therefore stays visible
    as a foreign-trace island rather than silently re-parented).
    """
    spans: List[Span] = list(base.get("spans", ()))
    for other in others:
        if other:
            spans.extend(other.get("spans", ()))
    return make_trace_document(base["trace_id"], spans)


def validate_trace_report(document: Any) -> Dict[str, Any]:
    """Check *document* against the ``repro-trace/1`` schema.

    Raises ``ValueError`` with the first problem found; returns the
    document unchanged when valid (mirrors
    :func:`repro.instrument.recorder.validate_report`).
    """
    if not isinstance(document, dict):
        raise ValueError("trace document must be a dict")
    if document.get("schema") != TRACE_SCHEMA:
        raise ValueError("bad schema tag %r" % (document.get("schema"),))
    trace_id = document.get("trace_id")
    if not (isinstance(trace_id, str) and _TRACE_ID.match(trace_id)):
        raise ValueError("bad trace_id %r" % (trace_id,))
    spans = document.get("spans")
    if not isinstance(spans, list):
        raise ValueError("spans must be a list")
    for index, span in enumerate(spans):
        if not isinstance(span, dict):
            raise ValueError("span %d must be a dict" % index)
        for key in ("trace_id", "span_id", "name", "ts", "dur"):
            if key not in span:
                raise ValueError("span %d missing key %r" % (index, key))
        if not (isinstance(span["span_id"], str)
                and _SPAN_ID.match(span["span_id"])):
            raise ValueError("span %d has bad span_id %r"
                             % (index, span["span_id"]))
        parent = span.get("parent_id")
        if parent is not None and not (
            isinstance(parent, str) and _SPAN_ID.match(parent)
        ):
            raise ValueError("span %d has bad parent_id %r"
                             % (index, parent))
        if not isinstance(span["name"], str) or not span["name"]:
            raise ValueError("span %d has an empty name" % index)
        if not isinstance(span["ts"], (int, float)):
            raise ValueError("span %d has non-numeric ts" % index)
        if not isinstance(span["dur"], (int, float)) or span["dur"] < 0:
            raise ValueError("span %d has negative dur" % index)
    return document


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


def to_chrome_trace(document: Dict[str, Any]) -> Dict[str, Any]:
    """Convert a ``repro-trace/1`` document to Chrome ``trace_event`` JSON.

    Emits one complete (``"ph": "X"``) event per span, with timestamps
    in microseconds relative to the earliest span, plus ``process_name``
    / ``thread_name`` metadata events so Perfetto and speedscope label
    the tracks. The result is JSON-serializable as-is.
    """
    validate_trace_report(document)
    spans = document["spans"]
    origin = min((span["ts"] for span in spans), default=0.0)
    events: List[Dict[str, Any]] = []
    named_processes: Dict[int, str] = {}
    thread_ids: Dict[Tuple[int, str], int] = {}
    for span in spans:
        pid = int(span.get("pid", 0))
        process = str(span.get("process", "") or "")
        if process and named_processes.get(pid) != process:
            named_processes[pid] = process
            events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": process},
            })
        thread = str(span.get("thread", "") or "main")
        tid_key = (pid, thread)
        if tid_key not in thread_ids:
            thread_ids[tid_key] = len(thread_ids) + 1
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid,
                "tid": thread_ids[tid_key], "args": {"name": thread},
            })
        events.append({
            "ph": "X",
            "name": span["name"],
            "cat": "phase",
            "ts": round((span["ts"] - origin) * 1e6, 3),
            "dur": round(span["dur"] * 1e6, 3),
            "pid": pid,
            "tid": thread_ids[tid_key],
            "args": {
                "trace_id": span["trace_id"],
                "span_id": span["span_id"],
                "parent_id": span.get("parent_id"),
            },
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        # Provenance tag inside Chrome's own JSON shape, not a
        # repro-trace/1 document.
        "otherData": {"trace_id": document["trace_id"],  # repro-lint: ignore[schema.missing-key]
                      "schema": TRACE_SCHEMA},
    }


def span_self_seconds(document: Dict[str, Any]) -> Dict[str, float]:
    """Per-span self time: duration minus the direct children's durations.

    Keyed by span id; negative values (clock skew between processes)
    clamp to zero.
    """
    child_seconds: Dict[str, float] = {}
    for span in document["spans"]:
        parent = span.get("parent_id")
        if parent is not None:
            child_seconds[parent] = (
                child_seconds.get(parent, 0.0) + float(span["dur"])
            )
    return {
        span["span_id"]: max(
            0.0, float(span["dur"]) - child_seconds.get(span["span_id"], 0.0)
        )
        for span in document["spans"]
    }


def to_collapsed_stacks(document: Dict[str, Any]) -> List[str]:
    """Flamegraph collapsed-stack lines (``a;b;c <microseconds>``).

    Each span contributes one stack — its ancestor chain within the
    document — weighted by its *self* time in integer microseconds
    (spans whose whole duration is covered by children contribute
    nothing). Spans with an unknown parent (e.g. the remote client's
    request span when only the server half is exported) root their own
    stack.
    """
    validate_trace_report(document)
    by_id = {span["span_id"]: span for span in document["spans"]}
    self_seconds = span_self_seconds(document)

    def stack_of(span: Span) -> List[str]:
        frames: List[str] = []
        cursor: Optional[Span] = span
        while cursor is not None:
            frames.append(str(cursor["name"]))
            parent = cursor.get("parent_id")
            cursor = by_id.get(parent) if parent is not None else None
            if len(frames) > len(by_id) + 1:  # cycle guard
                break
        return list(reversed(frames))

    weights: Dict[str, int] = {}
    for span in document["spans"]:
        micros = int(round(self_seconds[span["span_id"]] * 1e6))
        if micros <= 0:
            continue
        key = ";".join(stack_of(span))
        weights[key] = weights.get(key, 0) + micros
    return ["%s %d" % (stack, weight)
            for stack, weight in sorted(weights.items())]
