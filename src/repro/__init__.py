"""repro — resolution proofs for combinational equivalence checking.

A reproduction of "On Resolution Proofs for Combinational Equivalence"
(DAC 2007): a SAT-sweeping combinational equivalence checker whose entire
run — simulation, structural hashing, local SAT calls — is emitted as a
single, independently checkable resolution proof of the miter's
unsatisfiability.

Quickstart::

    from repro import check_equivalence, certify
    from repro.circuits import ripple_carry_adder, carry_lookahead_adder

    a = ripple_carry_adder(8)
    b = carry_lookahead_adder(8)
    result = check_equivalence(a, b)
    assert result.equivalent
    certify(result)          # replays the resolution proof end to end
"""

__version__ = "1.1.0"

_LAZY = {
    "CecResult": ("repro.core.cec", "CecResult"),
    "check_equivalence": ("repro.core.cec", "check_equivalence"),
    "certify": ("repro.core.certify", "certify"),
}

__all__ = sorted(_LAZY) + ["__version__"]


def __getattr__(name):
    """Lazy top-level exports so sub-packages import independently."""
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError("module 'repro' has no attribute %r" % name)
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attr)
