"""Wire protocol of the CEC service: line-delimited JSON (``repro-service/1``).

Every request and every response is one JSON object on one ``\\n``-
terminated line, UTF-8 encoded. A connection may carry any number of
requests sequentially; the server answers each request with one or more
response lines on the same connection:

* every response carries ``"ok"`` (bool), ``"verb"`` (echoing the
  request), and ``"final"`` (bool);
* all responses are final except the *heartbeat* lines streamed while a
  ``result --wait`` request is blocked on a running job — those have
  ``"final": false`` and repeat until the terminal response;
* failures are structured: ``{"ok": false, "error": {"code": ...,
  "message": ...}, ...}`` with a stable machine-readable code from
  the ``ERR_*`` constants below. The server never answers a malformed
  request by dropping the connection unless the line limit is exceeded.

Verbs: ``ping``, ``submit``, ``status``, ``result``, ``cancel``,
``stats``, ``metrics``, ``shutdown``. The full field-by-field
description lives in ``docs/service.md``.

Observability riders (all optional, all additive to
``repro-service/1``): a ``submit`` request may carry a ``trace``
mapping (``trace_id`` + optional ``parent_id``, see
:class:`repro.instrument.tracing.TraceContext`) that the server
propagates through the queue and the worker pool so one job yields one
stitched ``repro-trace/1`` document, returned on the job's ``result``
response as ``trace``. The ``metrics`` verb answers with the server's
``repro-metrics/1`` document and its Prometheus text rendering (the
same payload the optional ``/metrics`` HTTP endpoint serves).
"""

import json

from .. import __version__
from ..analyze.schemas import (
    FLEET_SCHEMA,
    FLEET_VERBS as _FLEET_VERBS,
    SERVICE_SCHEMA,
    SERVICE_VERBS,
)

#: Historical alias of :data:`repro.analyze.schemas.SERVICE_SCHEMA`.
PROTOCOL_SCHEMA = SERVICE_SCHEMA

#: Hard per-line cap (requests embed whole AIGER texts and responses
#: whole TraceCheck proofs; 256 MiB is far above any committed
#: benchmark and protects the server from unbounded buffering).
MAX_LINE_BYTES = 256 * 1024 * 1024

VERBS = frozenset(SERVICE_VERBS)

#: The cross-shard cache-protocol verbs (``repro-fleet/1``), accepted
#: by the same dispatcher on the same socket as the service verbs.
FLEET_VERBS = frozenset(_FLEET_VERBS)

# Stable error codes.
ERR_INVALID_REQUEST = "invalid-request"  # malformed JSON / unknown verb
ERR_BAD_INPUT = "bad-input"              # unparseable or incompatible AIGs
ERR_QUEUE_FULL = "queue-full"            # bounded queue rejected the job
ERR_UNKNOWN_JOB = "unknown-job"          # job id not in the table
ERR_WORKER_FAILED = "worker-failed"      # worker process raised/died
ERR_CANCELLED = "cancelled"              # job was cancelled before running
ERR_SHUTTING_DOWN = "shutting-down"      # server is draining
ERR_CERTIFY_FAILED = "certificate-invalid"  # server-side certify rejected
ERR_TIMEOUT = "timeout"                  # result --wait timed out (job lives)
ERR_NO_CACHE = "no-cache"                # cache verb on a cache-less server
ERR_SHARD_DOWN = "shard-down"            # router: the job's shard is gone
ERR_CACHE_STORE_FAILED = "cache-store-failed"  # cache-put hit a disk error


class ProtocolError(Exception):
    """A malformed message or a transport-level protocol violation.

    Attributes:
        code: stable error code (one of the ``ERR_*`` constants).
    """

    def __init__(self, message, code=ERR_INVALID_REQUEST):
        Exception.__init__(self, message)
        self.code = code


def encode(message):
    """Serialize one message to its wire form (bytes, newline-terminated)."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def decode(line):
    """Parse one wire line into a message dict.

    Raises:
        ProtocolError: on malformed JSON or a non-object payload.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError("message is not valid UTF-8: %s" % exc)
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ProtocolError("message is not valid JSON: %s" % exc)
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def ok_response(verb, final=True, **fields):
    """Build a success response envelope."""
    response = {
        "schema": PROTOCOL_SCHEMA, "ok": True, "verb": verb, "final": final,
    }
    response.update(fields)
    return response


def error_response(code, message, verb=None, final=True, **fields):
    """Build a structured failure response envelope."""
    response = {
        "schema": PROTOCOL_SCHEMA,
        "ok": False,
        "verb": verb,
        "final": final,
        "error": {"code": code, "message": message},
    }
    response.update(fields)
    return response


def fleet_response(verb, final=True, **fields):
    """Build a success response for a ``repro-fleet/1`` cache verb."""
    response = {
        "schema": FLEET_SCHEMA, "ok": True, "verb": verb, "final": final,
    }
    response.update(fields)
    return response


def fleet_error(code, message, verb=None, final=True, **fields):
    """Build a structured failure response for a fleet cache verb."""
    response = {
        "schema": FLEET_SCHEMA,
        "ok": False,
        "verb": verb,
        "final": final,
        "error": {"code": code, "message": message},
    }
    response.update(fields)
    return response


def ping_response():
    """The ``ping`` answer: liveness plus server identity."""
    return ok_response("ping", version=__version__, protocol=PROTOCOL_SCHEMA)


def parse_address(spec):
    """Parse an address argument into ``(family, target)``.

    ``host:port`` (the last colon splits) selects TCP; anything
    containing a path separator — ``/tmp/cec.sock``, ``./srv.sock`` —
    selects a Unix-domain socket.

    Returns:
        ``("tcp", (host, port))`` or ``("unix", path)``.

    Raises:
        ValueError: when the spec matches neither form.
    """
    if "/" in spec or spec.startswith("."):
        return ("unix", spec)
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(
            "address %r is neither host:port nor a socket path" % spec
        )
    try:
        return ("tcp", (host, int(port)))
    except ValueError:
        raise ValueError("address %r has a non-numeric port" % spec)


def format_address(family, target):
    """Human-readable form of a parsed address."""
    if family == "unix":
        return target
    return "%s:%d" % target
