"""BDD-based equivalence checking baseline.

Builds canonical ROBDDs for both circuits over a shared manager and
compares node ids per output — the classical pre-SAT approach. Fast on
functions with compact BDDs (adders, comparators under interleaved
orders), exponential on multipliers; no proof artifact is produced, which
is exactly the gap the paper's proof-producing SAT flow fills.
"""

import time

from ..bdd.bdd import BddManager, BddOverflowError, build_output_bdds, \
    interleaved_order


class BddCecResult:
    """Outcome of a BDD equivalence check.

    Attributes:
        equivalent: True / False / None (node budget exceeded).
        counterexample: differing input assignment on non-equivalence.
        bdd_nodes: total manager nodes allocated.
        elapsed_seconds: wall-clock time.
    """

    def __init__(self, equivalent, counterexample, bdd_nodes, elapsed_seconds):
        self.equivalent = equivalent
        self.counterexample = counterexample
        self.bdd_nodes = bdd_nodes
        self.elapsed_seconds = elapsed_seconds

    def __repr__(self):
        return "BddCecResult(equivalent=%r, nodes=%d)" % (
            self.equivalent,
            self.bdd_nodes,
        )


def bdd_check(aig_a, aig_b, interleave=True, max_nodes=1_000_000):
    """Check equivalence by canonical BDD comparison.

    Args:
        aig_a, aig_b: input-compatible circuits.
        interleave: use the interleaved a/b variable order (recommended
            for two-operand datapath circuits).
        max_nodes: node budget; an overflow yields ``equivalent=None``.

    Returns:
        A :class:`BddCecResult`.
    """
    if aig_a.num_inputs != aig_b.num_inputs:
        raise ValueError("input counts differ")
    if aig_a.num_outputs != aig_b.num_outputs:
        raise ValueError("output counts differ")
    start = time.perf_counter()
    manager = BddManager(aig_a.num_inputs, max_nodes=max_nodes)
    order = interleaved_order(aig_a) if interleave else None
    try:
        _, outs_a = build_output_bdds(aig_a, manager=manager, order=order)
        _, outs_b = build_output_bdds(aig_b, manager=manager, order=order)
    except BddOverflowError:
        return BddCecResult(
            None, None, manager.num_nodes, time.perf_counter() - start
        )
    order = order or list(range(aig_a.num_inputs))
    for node_a, node_b in zip(outs_a, outs_b):
        if node_a == node_b:
            continue
        try:
            diff = manager.apply_xor(node_a, node_b)
        except BddOverflowError:
            return BddCecResult(
                None, None, manager.num_nodes, time.perf_counter() - start
            )
        assignment = manager.any_sat(diff)
        cex = [
            assignment.get(order[pos], 0) for pos in range(aig_a.num_inputs)
        ]
        return BddCecResult(
            False, cex, manager.num_nodes, time.perf_counter() - start
        )
    return BddCecResult(
        True, None, manager.num_nodes, time.perf_counter() - start
    )
