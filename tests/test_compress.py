"""Tests for LowerUnits proof compression."""

import random

import pytest

from repro.proof import ProofError, ProofStore, check_proof, check_rup_proof, \
    proof_stats
from repro.proof.compress import lower_units
from repro.sat import UNSAT, Solver


def solver_refutation(clauses):
    store = ProofStore()
    solver = Solver(proof=store)
    alive = all(solver.add_clause(c) for c in clauses)
    if alive:
        assert solver.solve().status is UNSAT
    return store


def php_clauses(pigeons):
    holes = pigeons - 1
    var = lambda p, h: p * holes + h + 1
    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return clauses


def unit_rich_clauses():
    """An UNSAT instance whose refutation leans on unit clauses."""
    clauses = [[1], [2], [3]]
    clauses += [[-1, -2, 4], [-1, -3, 5], [-2, -3, 6]]
    clauses += [[-4, -5, -6, 7], [-7, 8], [-7, -8]]
    return clauses


class TestLowerUnits:
    def test_still_refutes(self):
        store = solver_refutation(unit_rich_clauses())
        compressed, _ = lower_units(store)
        result = check_proof(compressed, axioms=unit_rich_clauses())
        assert result.empty_clause_id is not None

    def test_rup_cross_check(self):
        store = solver_refutation(unit_rich_clauses())
        compressed, _ = lower_units(store)
        check_rup_proof(compressed, axioms=unit_rich_clauses())

    def test_no_empty_clause_rejected(self):
        store = ProofStore()
        store.add_axiom([1])
        with pytest.raises(ProofError):
            lower_units(store)

    def test_php_proofs_compress_and_check(self):
        clauses = php_clauses(5)
        store = solver_refutation(clauses)
        compressed, _ = lower_units(store)
        check_proof(compressed, axioms=clauses)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_unsat_instances(self, seed):
        rng = random.Random(seed)
        import itertools

        def brute_sat(num_vars, clauses):
            for bits in itertools.product([False, True], repeat=num_vars):
                if all(
                    any(bits[abs(l) - 1] == (l > 0) for l in clause)
                    for clause in clauses
                ):
                    return True
            return False

        produced = 0
        while produced < 4:
            num_vars = rng.randint(3, 7)
            clauses = []
            # Seed some units to give the transformation work to do.
            for var in rng.sample(range(1, num_vars + 1), 2):
                clauses.append([var if rng.random() < 0.5 else -var])
            for _ in range(rng.randint(8, 26)):
                width = rng.randint(1, 3)
                variables = rng.sample(range(1, num_vars + 1), width)
                clauses.append(
                    [v if rng.random() < 0.5 else -v for v in variables]
                )
            if brute_sat(num_vars, clauses):
                continue
            produced += 1
            store = solver_refutation(clauses)
            compressed, _ = lower_units(store)
            check_proof(compressed, axioms=clauses)
            check_rup_proof(compressed, axioms=clauses)

    def test_reduces_resolutions_on_unit_heavy_proofs(self):
        reductions = []
        for seed in range(8):
            rng = random.Random(100 + seed)
            clauses = [[v] for v in range(1, 4)]
            for _ in range(30):
                variables = rng.sample(range(1, 10), 3)
                clauses.append(
                    [v if rng.random() < 0.6 else -v for v in variables]
                )
            clauses.append([-1, -2, -3])
            store = ProofStore()
            solver = Solver(proof=store)
            alive = all(solver.add_clause(c) for c in clauses)
            if alive and solver.solve().status is not UNSAT:
                continue
            before = proof_stats(store).num_resolutions
            compressed, _ = lower_units(store)
            after = proof_stats(compressed).num_resolutions
            reductions.append((before, after))
            check_proof(compressed, axioms=clauses)
        assert reductions, "no UNSAT instances generated"
        assert any(after <= before for before, after in reductions)

    def test_engine_proofs_compress(self):
        from repro import check_equivalence
        from repro.circuits import comparator, comparator_subtract

        result = check_equivalence(comparator(4), comparator_subtract(4))
        compressed, _ = lower_units(result.proof)
        check_proof(compressed, axioms=result.cnf.clauses)

    def test_monolithic_proofs_compress(self):
        from repro.baselines import monolithic_check
        from repro.circuits import kogge_stone_adder, ripple_carry_adder

        result = monolithic_check(
            ripple_carry_adder(6), kogge_stone_adder(6)
        )
        compressed, _ = lower_units(result.proof)
        check_proof(compressed, axioms=result.cnf.clauses)
        check_rup_proof(compressed, axioms=result.cnf.clauses)
