"""Progress heartbeats: tracker units, spool files, trajectory identity.

The trajectory-identity half is the load-bearing contract: attaching a
:class:`ProgressTracker` (even one emitting on every conflict) must
leave the solver's statistics and the trimmed resolution proof
byte-identical to a run without one — progress observes, never
perturbs.
"""

import json

import pytest

from repro.aig.miter import build_miter
from repro.circuits import kogge_stone_adder, ripple_carry_adder
from repro.cnf.tseitin import tseitin_encode
from repro.core.cec import check_equivalence
from repro.core.fraig import SweepOptions
from repro.instrument import Budget, Recorder
from repro.instrument.progress import (
    DEFAULT_INTERVAL,
    PROGRESS_SCHEMA,
    ProgressTracker,
    estimate_eta_band,
    format_heartbeat,
    jsonl_sink,
    latest_heartbeat,
    progress_bar,
    read_heartbeats,
    remove_spool,
    validate_progress,
)
from repro.proof import ProofStore
from repro.proof.tracecheck import dumps_tracecheck
from repro.proof.trim import trim
from repro.sat.solver import UNSAT, Solver


class FakeStats:
    def __init__(self, conflicts=0, decisions=0, propagations=0,
                 restarts=0, learned=0):
        self.conflicts = conflicts
        self.decisions = decisions
        self.propagations = propagations
        self.restarts = restarts
        self.learned = learned


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start
        self.reads = 0

    def __call__(self):
        self.reads += 1
        return self.now


class TestEtaBand:
    def test_too_young_says_nothing(self):
        assert estimate_eta_band(0.01) is None
        assert estimate_eta_band(0.01, budget_fraction=0.5) is None

    def test_budget_fraction_extrapolates(self):
        low, high = estimate_eta_band(10.0, budget_fraction=0.5)
        # remaining = 10 * (1 - 0.5)/0.5 = 10; spread = 1 + 2*0.5 = 2.
        assert low == pytest.approx(5.0)
        assert high == pytest.approx(20.0)

    def test_band_tightens_as_budget_drains(self):
        low_a, high_a = estimate_eta_band(10.0, budget_fraction=0.2)
        low_b, high_b = estimate_eta_band(10.0, budget_fraction=0.9)
        assert (high_b - low_b) < (high_a - low_a)
        assert estimate_eta_band(10.0, budget_fraction=1.0) == (0.0, 0.0)

    def test_lindy_band_without_budget(self):
        low, high = estimate_eta_band(4.0)
        assert low == pytest.approx(2.0)
        assert high == pytest.approx(12.0)

    def test_decaying_rate_widens_the_band(self):
        _, steady = estimate_eta_band(4.0, rate_trend=1.0)
        _, slowing = estimate_eta_band(4.0, rate_trend=0.5)
        _, cliff = estimate_eta_band(4.0, rate_trend=0.01)
        assert slowing == pytest.approx(2.0 * steady)
        assert cliff == pytest.approx(4.0 * steady)  # capped at 4x


class TestProgressTracker:
    def test_countdown_skips_clock_reads(self):
        clock = FakeClock()
        tracker = ProgressTracker(
            lambda doc: None, clock=clock, ticks_per_check=8,
        )
        baseline = clock.reads  # constructor reads once
        stats = FakeStats()
        for _ in range(7):
            tracker.tick(stats)
        assert clock.reads == baseline
        tracker.tick(stats)
        assert clock.reads == baseline + 1

    def test_interval_gates_emission(self):
        clock = FakeClock()
        docs = []
        tracker = ProgressTracker(
            docs.append, interval_seconds=1.0, clock=clock,
            ticks_per_check=1,
        )
        stats = FakeStats(conflicts=5)
        tracker.tick(stats)
        assert docs == []  # no time has passed
        clock.now += 1.5
        tracker.tick(stats)
        assert len(docs) == 1
        tracker.tick(stats)
        assert len(docs) == 1  # interval not yet elapsed again

    def test_emitted_document_shape(self):
        clock = FakeClock()
        docs = []
        tracker = ProgressTracker(
            docs.append, interval_seconds=0.0, clock=clock,
            ticks_per_check=1, meta={"tool": "test"},
        )
        clock.now += 2.0
        tracker.tick(FakeStats(conflicts=10, decisions=20,
                               propagations=200, restarts=1, learned=9))
        clock.now += 2.0
        tracker.tick(FakeStats(conflicts=30, decisions=50,
                               propagations=700, restarts=2, learned=27))
        first, second = docs
        validate_progress(first)
        validate_progress(second)
        assert first["schema"] == PROGRESS_SCHEMA
        assert first["seq"] == 1 and second["seq"] == 2
        assert second["counters"]["conflicts"] == 30
        assert second["deltas"]["conflicts"] == 20
        assert second["rates"]["conflicts"] == pytest.approx(10.0)
        assert second["meta"] == {"tool": "test"}
        assert first["phase"] == "solve"

    def test_budget_fraction_takes_the_tightest_axis(self):
        budget = Budget(time_limit=1000.0, conflict_limit=100)
        budget.conflicts = 50
        tracker = ProgressTracker(lambda doc: None, budget=budget)
        assert tracker.budget_fraction() == pytest.approx(0.5, abs=0.01)
        budget.conflicts = 1000  # over the limit: capped
        assert tracker.budget_fraction() == 1.0
        assert ProgressTracker(lambda d: None).budget_fraction() is None

    def test_sweep_block_rides_heartbeats(self):
        clock = FakeClock()
        docs = []
        tracker = ProgressTracker(
            docs.append, interval_seconds=0.0, clock=clock,
            ticks_per_check=1,
        )
        tracker.phase = "sweep"
        tracker.update_sweep(
            wave=2, nodes_processed=10, nodes_total=40,
            classes=3, class_members=7,
        )
        clock.now += 1.0
        tracker.tick(FakeStats())
        (doc,) = docs
        assert doc["phase"] == "sweep"
        assert doc["sweep"] == {
            "wave": 2, "nodes_processed": 10, "nodes_total": 40,
            "classes": 3, "class_members": 7,
        }

    def test_broken_sink_is_swallowed(self):
        clock = FakeClock()

        def explode(document):
            raise OSError("disk full")

        tracker = ProgressTracker(
            explode, interval_seconds=0.0, clock=clock, ticks_per_check=1,
        )
        clock.now += 1.0
        tracker.tick(FakeStats())  # must not raise
        assert tracker.dropped == 1
        assert tracker.seq == 1  # the heartbeat was still built

    def test_default_interval_is_coarse(self):
        assert DEFAULT_INTERVAL >= 0.1


class TestValidateProgress:
    def _valid(self):
        clock = FakeClock()
        docs = []
        tracker = ProgressTracker(
            docs.append, interval_seconds=0.0, clock=clock,
            ticks_per_check=1,
        )
        clock.now += 1.0
        tracker.tick(FakeStats(conflicts=1))
        return docs[0]

    @pytest.mark.parametrize("mutate", [
        lambda d: d.__setitem__("schema", "nope"),
        lambda d: d.pop("seq"),
        lambda d: d.__setitem__("seq", 0),
        lambda d: d.__setitem__("counters", [1]),
        lambda d: d["counters"].__setitem__("conflicts", -1),
        lambda d: d.__setitem__("eta_seconds", [3.0, 1.0]),
        lambda d: d.__setitem__("eta_seconds", [1.0]),
    ])
    def test_rejects_malformed(self, mutate):
        document = self._valid()
        mutate(document)
        with pytest.raises(ValueError):
            validate_progress(document)

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError):
            validate_progress([])


class TestSpoolFiles:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "hb.jsonl")
        sink = jsonl_sink(path)
        for seq in (1, 2, 3):
            sink({"schema": PROGRESS_SCHEMA, "seq": seq})
        documents = read_heartbeats(path)
        assert [d["seq"] for d in documents] == [1, 2, 3]
        assert latest_heartbeat(path)["seq"] == 3
        assert [d["seq"] for d in read_heartbeats(path, limit=2)] == [2, 3]

    def test_torn_tail_line_is_skipped(self, tmp_path):
        path = str(tmp_path / "hb.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps({"seq": 1}) + "\n")
            handle.write('{"seq": 2, "tr')  # writer died mid-append
        assert [d["seq"] for d in read_heartbeats(path)] == [1]

    def test_missing_file_reads_empty(self, tmp_path):
        path = str(tmp_path / "nope.jsonl")
        assert read_heartbeats(path) == []
        assert latest_heartbeat(path) is None
        remove_spool(path)  # idempotent, no raise


class TestRendering:
    def test_progress_bar(self):
        assert progress_bar(None, width=4) == "----"
        assert progress_bar(0.0, width=4) == "...."
        assert progress_bar(0.5, width=4) == "##.."
        assert progress_bar(2.0, width=4) == "####"  # clamped

    def test_format_heartbeat_mentions_the_essentials(self):
        line = format_heartbeat({
            "schema": PROGRESS_SCHEMA, "seq": 3, "phase": "sweep",
            "elapsed_seconds": 1.5, "budget_fraction": 0.25,
            "counters": {"conflicts": 120, "decisions": 300,
                         "restarts": 2},
            "rates": {"conflicts": 80.0},
            "sweep": {"wave": 1, "classes": 4, "nodes_processed": 9,
                      "nodes_total": 40},
            "eta_seconds": [2.0, 8.0],
        })
        assert "sweep" in line
        assert "conflicts=120" in line
        assert "wave=1" in line
        assert "eta 2.0-8.0s" in line
        assert "#" in line and "." in line


# ---------------------------------------------------------------------------
# Trajectory identity: progress must never perturb the proof
# ---------------------------------------------------------------------------


def _miter_clauses(width=6):
    miter = build_miter(
        ripple_carry_adder(width), kogge_stone_adder(width)
    )
    enc = tseitin_encode(miter.aig)
    clauses = list(enc.cnf.clauses)
    clauses.append([enc.lit_to_cnf(miter.output)])
    return clauses


def _solve_with(recorder):
    store = ProofStore()
    solver = Solver(proof=store, recorder=recorder)
    for clause in clauses_fixture:
        solver.add_clause(clause)
    result = solver.solve()
    assert result.status is UNSAT
    trimmed, _ = trim(store)
    return dumps_tracecheck(trimmed), repr(solver.stats)


clauses_fixture = _miter_clauses()


class TestTrajectoryIdentity:
    def test_solver_proof_identical_with_progress(self):
        plain = Recorder()
        baseline_proof, baseline_stats = _solve_with(plain)

        watched = Recorder()
        docs = []
        # Maximal observation pressure: check the clock on every tick
        # and emit on every clock read.
        watched.progress = ProgressTracker(
            docs.append, interval_seconds=0.0, ticks_per_check=1,
        )
        watched_proof, watched_stats = _solve_with(watched)

        assert docs, "tracker never emitted despite zero interval"
        for document in docs:
            validate_progress(document)
        assert watched_stats == baseline_stats, "trajectory diverged"
        assert watched_proof == baseline_proof, \
            "trimmed proofs are not byte-identical under progress"

    def test_cec_sweep_proof_identical_with_progress(self):
        aig_a = ripple_carry_adder(4)
        aig_b = kogge_stone_adder(4)

        def run(attach_progress):
            recorder = Recorder()
            docs = []
            if attach_progress:
                recorder.progress = ProgressTracker(
                    docs.append, interval_seconds=0.0, ticks_per_check=1,
                )
            result = check_equivalence(
                aig_a, aig_b, SweepOptions(), recorder=recorder,
            )
            assert result.equivalent is True
            trimmed, _ = trim(result.proof)
            return dumps_tracecheck(trimmed), docs

        baseline_proof, _ = run(False)
        watched_proof, docs = run(True)
        assert docs, "sweep emitted no heartbeats"
        assert any(d.get("phase") == "sweep" for d in docs)
        assert any("sweep" in d for d in docs)
        assert watched_proof == baseline_proof
