"""Static schema-drift analysis against the declarative registry.

Every versioned document the tools emit (``repro-stats/1``,
``repro-service/1``, ...) is declared once in
:mod:`repro.analyze.schemas`. This pass diffs the source tree against
that registry, so a producer growing a new response field, a consumer
reading a key nobody writes, or a hand-typed version string can no
longer drift silently — the exact failure mode that multiplies once
multiple processes speak the protocol:

* ``schema.inline-version`` — a registered version tag spelled as a
  string literal outside the registry (import the constant instead).
* ``schema.unknown-version`` — a ``repro-*/N``-shaped literal that is
  not in the registry at all (typo or undeclared schema).
* ``schema.undeclared-key`` — a document literal (a dict with a
  ``"schema"`` key) or a service request/response carrying a key the
  registry does not declare.
* ``schema.missing-key`` — a fully-literal document (no ``**`` spread)
  missing one of its schema's required keys.
* ``schema.unknown-verb`` — a request literal or response builder
  naming a verb outside the registry's vocabulary.
* ``schema.dead-key`` — a declared key that no scanned module ever
  mentions (warning: likely registry rot or a dropped consumer).

The extraction is purely lexical (dict literals, ``x["key"]``
subscripts, ``.get("key")`` calls, string constants); keys built
dynamically or spread from ``**mapping`` are invisible to it, which is
why ``schema.missing-key`` only fires on spread-free literals and
``schema.dead-key`` is a warning. Inline
``# repro-lint: ignore[rule-id]`` pragmas waive site-anchored findings
(:mod:`repro.analyze.pragmas`).
"""

from __future__ import annotations

import ast
import os
import re
from typing import Dict, List, Optional, Sequence, Set, Tuple

from . import schemas as registry
from .findings import ERROR, WARNING, Finding
from .pragmas import apply_waivers
from .schemas import (
    FLEET_REQUEST_KEYS,
    FLEET_SCHEMA,
    SERVICE_REQUEST_KEYS,
    SERVICE_SCHEMA,
    SchemaSpec,
)

#: Exact shape of a version tag; prose mentioning a tag never matches.
_TAG = re.compile(r"^repro-[a-z0-9-]+/[0-9]+$")

#: Response-envelope builders, mapped to the schema whose keys and verb
#: vocabulary their keyword arguments / verb argument must honor.
_RESPONSE_BUILDERS = {
    "ok_response": SERVICE_SCHEMA,
    "error_response": SERVICE_SCHEMA,
    "fleet_response": FLEET_SCHEMA,
    "fleet_error": FLEET_SCHEMA,
}

#: The registry module itself — the one place tags are defined.
_REGISTRY_SUFFIX = os.path.join("analyze", "schemas.py")


def lint_sources(
    sources: Sequence[Tuple[str, str]],
    specs: Optional[Dict[str, SchemaSpec]] = None,
    dead_keys: bool = True,
) -> List[Finding]:
    """Run the drift rules over ``(filename, source)`` pairs.

    Per-file findings honor pragmas; the cross-file ``schema.dead-key``
    sweep runs over the whole batch when *dead_keys* is true (turn it
    off for single-file scans, where "never read anywhere" is
    meaningless). *specs* overrides the registry (tests inject
    synthetic schemas).
    """
    if specs is None:
        specs = registry.SCHEMAS
    findings: List[Finding] = []
    observed: Set[str] = set()
    registry_label: Optional[str] = None
    for filename, source in sources:
        if filename.endswith(_REGISTRY_SUFFIX):
            registry_label = filename
            continue
        findings.extend(_lint_one(filename, source, specs, observed))
    if not dead_keys:
        return findings
    for spec in sorted(specs.values(), key=lambda s: s.tag):
        for key in sorted(spec.keys):
            if key not in observed:
                findings.append(Finding(
                    "schema.dead-key", WARNING,
                    "key %r of %s is declared but never read or written "
                    "by any scanned module" % (key, spec.tag),
                    file=registry_label,
                    data={"schema": spec.tag, "key": key},
                ))
    return findings


def _lint_one(
    filename: str,
    source: str,
    specs: Dict[str, SchemaSpec],
    observed: Set[str],
) -> List[Finding]:
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [Finding(
            "code.syntax", ERROR, "cannot parse: %s" % exc,
            file=filename, line=exc.lineno or 0,
        )]
    findings: List[Finding] = []
    docstrings = _docstring_nodes(tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            observed.add(node.value)
            if node in docstrings:
                continue
            if _TAG.match(node.value):
                findings.append(_version_finding(node, filename, specs))
        elif isinstance(node, ast.Dict):
            findings.extend(
                _check_document_literal(node, filename, specs)
            )
            findings.extend(_check_request_literal(node, filename, specs))
        elif isinstance(node, ast.Call):
            _observe_reads(node, observed)
            findings.extend(
                _check_response_builder(node, filename, specs)
            )
        elif isinstance(node, ast.Subscript):
            index = node.slice
            if isinstance(index, ast.Constant) \
                    and isinstance(index.value, str):
                observed.add(index.value)
    kept, _ = apply_waivers(findings, source)
    return kept


def _docstring_nodes(tree: ast.Module) -> Set[ast.AST]:
    nodes: Set[ast.AST] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Module, ast.ClassDef,
                                 ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        body = node.body
        if (body and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)):
            nodes.add(body[0].value)
    return nodes


def _version_finding(
    node: ast.Constant, filename: str, specs: Dict[str, SchemaSpec],
) -> Finding:
    tag = node.value
    if tag in specs:
        return Finding(
            "schema.inline-version", ERROR,
            "version tag %r spelled inline — import the constant from "
            "repro.analyze.schemas" % tag,
            file=filename, line=node.lineno, data={"schema": tag},
        )
    return Finding(
        "schema.unknown-version", ERROR,
        "version tag %r matches no registered schema" % tag,
        file=filename, line=node.lineno, data={"schema": tag},
    )


def _resolve_tag(node: ast.expr) -> Optional[str]:
    """The schema tag an expression denotes, when statically known."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    name: Optional[str] = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name is not None:
        return registry.constant_tag(name)
    return None


def _literal_keys(node: ast.Dict) -> Tuple[Dict[str, ast.expr], bool]:
    """Literal string keys of a dict, and whether every key is literal
    (no ``**`` spread, no computed key)."""
    keys: Dict[str, ast.expr] = {}
    complete = True
    for key, value in zip(node.keys, node.values):
        if key is None:  # **spread
            complete = False
            continue
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys[key.value] = value
        else:
            complete = False
    return keys, complete


def _check_document_literal(
    node: ast.Dict, filename: str, specs: Dict[str, SchemaSpec],
) -> List[Finding]:
    keys, complete = _literal_keys(node)
    if "schema" not in keys:
        return []
    tag = _resolve_tag(keys["schema"])
    if tag is None or tag not in specs:
        # Unknown or unresolvable tags are the version rules' problem.
        return []
    spec = specs[tag]
    findings: List[Finding] = []
    for key in sorted(keys):
        if key not in spec.keys:
            findings.append(Finding(
                "schema.undeclared-key", ERROR,
                "key %r is not declared for %s" % (key, tag),
                file=filename, line=node.lineno,
                data={"schema": tag, "key": key},
            ))
    if complete:
        missing = sorted(spec.required - set(keys))
        if missing:
            findings.append(Finding(
                "schema.missing-key", ERROR,
                "document literal for %s is missing required %s"
                % (tag, ", ".join(repr(k) for k in missing)),
                file=filename, line=node.lineno,
                data={"schema": tag, "missing": missing},
            ))
    return findings


def _check_request_literal(
    node: ast.Dict, filename: str, specs: Dict[str, SchemaSpec],
) -> List[Finding]:
    service = specs.get(SERVICE_SCHEMA)
    fleet = specs.get(FLEET_SCHEMA)
    known_verbs: Set[str] = set()
    for spec in (service, fleet):
        if spec is not None:
            known_verbs |= spec.verbs
    if not known_verbs:
        return []
    keys, _ = _literal_keys(node)
    if "verb" not in keys or "schema" in keys:
        return []
    findings: List[Finding] = []
    # The two protocols share one transport and one dispatcher; a
    # literal verb selects which request-key vocabulary applies, an
    # unresolvable verb expression falls back to the union.
    allowed = SERVICE_REQUEST_KEYS | FLEET_REQUEST_KEYS
    tag = service.tag if service is not None else FLEET_SCHEMA
    verb = keys["verb"]
    if isinstance(verb, ast.Constant) and isinstance(verb.value, str):
        if verb.value not in known_verbs:
            findings.append(Finding(
                "schema.unknown-verb", ERROR,
                "verb %r is not in the %s vocabulary"
                % (verb.value, " or ".join(
                    spec.tag for spec in (service, fleet)
                    if spec is not None
                )),
                file=filename, line=node.lineno,
                data={"verb": verb.value},
            ))
            return findings
        if fleet is not None and verb.value in fleet.verbs:
            allowed = FLEET_REQUEST_KEYS
            tag = fleet.tag
        elif service is not None:
            allowed = SERVICE_REQUEST_KEYS
            tag = service.tag
    for key in sorted(keys):
        if key not in allowed:
            findings.append(Finding(
                "schema.undeclared-key", ERROR,
                "request key %r is not declared for %s" % (key, tag),
                file=filename, line=node.lineno,
                data={"schema": tag, "key": key},
            ))
    return findings


def _check_response_builder(
    node: ast.Call, filename: str, specs: Dict[str, SchemaSpec],
) -> List[Finding]:
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else None
    )
    if name is None or name not in _RESPONSE_BUILDERS:
        return []
    spec = specs.get(_RESPONSE_BUILDERS[name])
    if spec is None:
        return []
    findings: List[Finding] = []
    if name in ("ok_response", "fleet_response") and node.args:
        first = node.args[0]
        if isinstance(first, ast.Constant) \
                and isinstance(first.value, str) \
                and first.value not in spec.verbs:
            findings.append(Finding(
                "schema.unknown-verb", ERROR,
                "verb %r is not in the %s vocabulary"
                % (first.value, spec.tag),
                file=filename, line=node.lineno,
                data={"verb": first.value},
            ))
    for keyword in node.keywords:
        if keyword.arg is None:
            continue
        if keyword.arg not in spec.keys:
            findings.append(Finding(
                "schema.undeclared-key", ERROR,
                "response field %r is not declared for %s"
                % (keyword.arg, spec.tag),
                file=filename, line=node.lineno,
                data={"schema": spec.tag, "key": keyword.arg},
            ))
    return findings


def _observe_reads(node: ast.Call, observed: Set[str]) -> None:
    """Count ``.get("key")`` reads and builder keyword fields as key
    usage for the dead-key sweep."""
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "get" and node.args:
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            observed.add(first.value)
    for keyword in node.keywords:
        if keyword.arg is not None:
            observed.add(keyword.arg)


# ---------------------------------------------------------------------------
# Package walkers (mirroring repro.analyze.ast_rules)
# ---------------------------------------------------------------------------


def lint_file(path: str, label: Optional[str] = None) -> List[Finding]:
    """Run the per-file drift rules over one file (no dead-key sweep)."""
    with open(path) as handle:
        source = handle.read()
    return lint_sources([(label or path, source)], dead_keys=False)


def lint_package(root: Optional[str] = None) -> List[Finding]:
    """Run the drift rules (including the cross-file dead-key sweep)
    over every ``.py`` file under *root* (default: the installed
    ``repro`` package), with package-relative labels."""
    if root is None:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    sources: List[Tuple[str, str]] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            label = os.path.relpath(path, os.path.dirname(root))
            with open(path) as handle:
                sources.append((label, handle.read()))
    return lint_sources(sources)
