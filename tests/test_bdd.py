"""Tests for the ROBDD package."""

import itertools

import pytest

from repro.bdd import BddManager, BddOverflowError, build_output_bdds, \
    interleaved_order
from repro.circuits import majority, parity_tree, ripple_carry_adder


class TestManagerBasics:
    def test_terminals(self):
        manager = BddManager(2)
        assert manager.FALSE == 0
        assert manager.TRUE == 1
        assert manager.num_nodes == 2

    def test_var_nodes_shared(self):
        manager = BddManager(2)
        assert manager.var(0) == manager.var(0)

    def test_var_range_check(self):
        manager = BddManager(2)
        with pytest.raises(ValueError):
            manager.var(2)

    def test_reduction_rule(self):
        manager = BddManager(2)
        x = manager.var(0)
        # ite(x, TRUE, TRUE) must collapse to TRUE, allocating nothing.
        before = manager.num_nodes
        assert manager.ite(x, manager.TRUE, manager.TRUE) == manager.TRUE
        assert manager.num_nodes == before


class TestCanonicity:
    def test_equal_functions_equal_nodes(self):
        manager = BddManager(3)
        x, y, z = (manager.var(k) for k in range(3))
        lhs = manager.apply_and(x, manager.apply_or(y, z))
        rhs = manager.apply_or(
            manager.apply_and(x, y), manager.apply_and(x, z)
        )
        assert lhs == rhs

    def test_demorgan(self):
        manager = BddManager(2)
        x, y = manager.var(0), manager.var(1)
        lhs = manager.apply_not(manager.apply_and(x, y))
        rhs = manager.apply_or(manager.apply_not(x), manager.apply_not(y))
        assert lhs == rhs

    def test_xor_semantics(self):
        manager = BddManager(2)
        x, y = manager.var(0), manager.var(1)
        node = manager.apply_xor(x, y)
        for a, b in itertools.product([0, 1], repeat=2):
            assert manager.evaluate(node, [a, b]) == (a ^ b)

    def test_double_negation(self):
        manager = BddManager(2)
        x = manager.var(0)
        f = manager.apply_or(x, manager.var(1))
        assert manager.apply_not(manager.apply_not(f)) == f


class TestQueries:
    def test_any_sat_none_for_false(self):
        manager = BddManager(2)
        assert manager.any_sat(manager.FALSE) is None

    def test_any_sat_satisfies(self):
        manager = BddManager(3)
        f = manager.apply_and(
            manager.var(0), manager.apply_not(manager.var(2))
        )
        assignment = manager.any_sat(f)
        full = [assignment.get(v, 0) for v in range(3)]
        assert manager.evaluate(f, full) == 1

    def test_count_sat(self):
        manager = BddManager(3)
        f = manager.apply_or(manager.var(0), manager.var(1))
        assert manager.count_sat(f) == 6  # 2^3 * 3/4

    def test_count_sat_terminals(self):
        manager = BddManager(4)
        assert manager.count_sat(manager.TRUE) == 16
        assert manager.count_sat(manager.FALSE) == 0

    def test_size(self):
        manager = BddManager(3)
        f = manager.apply_xor(
            manager.var(0), manager.apply_xor(manager.var(1), manager.var(2))
        )
        # Parity of 3 variables: 2 nodes per level = 5 internal... for this
        # package (no complement edges): levels 0,1,2 hold 1,2,2 nodes.
        assert manager.size(f) == 5

    def test_overflow(self):
        manager = BddManager(8, max_nodes=10)
        with pytest.raises(BddOverflowError):
            f = manager.TRUE
            for k in range(8):
                f = manager.apply_xor(f, manager.var(k))


class TestBuildFromAig:
    def test_semantics_match_circuit(self):
        aig = majority(5)
        manager, outputs = build_output_bdds(aig)
        for bits in itertools.product([0, 1], repeat=5):
            expected = aig.evaluate(list(bits))[0]
            assert manager.evaluate(outputs[0], list(bits)) == expected

    def test_multi_output(self):
        aig = ripple_carry_adder(3)
        manager, outputs = build_output_bdds(aig)
        assert len(outputs) == 4
        for bits in itertools.product([0, 1], repeat=6):
            values = aig.evaluate(list(bits))
            got = [manager.evaluate(node, list(bits)) for node in outputs]
            assert got == values

    def test_custom_order(self):
        aig = ripple_carry_adder(4)
        order = interleaved_order(aig)
        manager, outputs = build_output_bdds(aig, order=order)
        for bits in itertools.product([0, 1], repeat=8):
            values = aig.evaluate(list(bits))
            bdd_assignment = [0] * 8
            for position, bit in enumerate(bits):
                bdd_assignment[order[position]] = bit
            got = [
                manager.evaluate(node, bdd_assignment) for node in outputs
            ]
            assert got == values

    def test_interleaving_shrinks_adder(self):
        aig = ripple_carry_adder(8)
        natural, outs_n = build_output_bdds(aig)
        inter, outs_i = build_output_bdds(
            aig, order=interleaved_order(aig)
        )
        assert inter.num_nodes < natural.num_nodes

    def test_parity_linear_size(self):
        aig = parity_tree(12)
        manager, outputs = build_output_bdds(aig)
        assert manager.size(outputs[0]) == 2 * 12 - 1
