"""And-Inverter Graph package: data structure, I/O, miters, simulation."""

from .aig import AIG
from .cuts import Cut, cut_function, enumerate_cuts
from .dot import write_dot
from .npn import cut_class_histogram, npn_canon, npn_classes
from .aiger import (
    AigerError,
    read_aag,
    read_aig,
    read_auto,
    write_aag,
    write_aig,
)
from .literal import (
    FALSE,
    TRUE,
    is_const,
    lit_not,
    lit_not_cond,
    lit_regular,
    lit_sign,
    lit_to_str,
    lit_var,
    make_lit,
)
from .miter import Miter, build_miter, match_interfaces_by_name
from .simulate import Simulator, random_equivalence_test, simulate_once
from .structhash import node_digests, pair_key, structural_hash

__all__ = [
    "AIG",
    "AigerError",
    "Cut",
    "cut_function",
    "cut_class_histogram",
    "enumerate_cuts",
    "npn_canon",
    "npn_classes",
    "write_dot",
    "FALSE",
    "TRUE",
    "Miter",
    "Simulator",
    "build_miter",
    "match_interfaces_by_name",
    "is_const",
    "lit_not",
    "lit_not_cond",
    "lit_regular",
    "lit_sign",
    "lit_to_str",
    "lit_var",
    "make_lit",
    "node_digests",
    "pair_key",
    "random_equivalence_test",
    "read_aag",
    "read_aig",
    "read_auto",
    "simulate_once",
    "structural_hash",
    "write_aag",
    "write_aig",
]
