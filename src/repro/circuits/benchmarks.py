"""Named benchmark pairs for the evaluation suite.

The paper evaluates on industrial original-vs-synthesized miters; those
netlists are unavailable, so (per DESIGN.md's substitution table) each
benchmark here pairs two *structurally different, functionally identical*
implementations — either two textbook architectures of the same word-level
function or a circuit against its randomized function-preserving
restructuring. Both kinds exhibit the abundant internal equivalences that
make SAT sweeping (and the paper's measurements) meaningful.

Every entry is constructed lazily and deterministically, so all benches
and tests agree on the exact circuits.
"""

from ..transforms.restructure import restructure
from ..transforms.rewrite import rewrite
from . import generators as gen


class BenchmarkPair:
    """A named equivalence-checking instance.

    Attributes:
        name: short unique identifier used in tables.
        category: ``"arch"`` (two architectures) or ``"synth"``
            (original vs. restructured).
        description: human-readable summary.
    """

    def __init__(self, name, category, description, factory):
        self.name = name
        self.category = category
        self.description = description
        self._factory = factory

    def build(self):
        """Construct and return the pair ``(aig_a, aig_b)``."""
        return self._factory()

    def __repr__(self):
        return "BenchmarkPair(%r)" % self.name


def _arch(name, description, factory):
    return BenchmarkPair(name, "arch", description, factory)


def _synth(name, description, make, seed=1, intensity=0.4, redundancy=0.15):
    def factory():
        original = make()
        variant = restructure(
            original, seed=seed, intensity=intensity, redundancy=redundancy
        )
        return original, variant

    return BenchmarkPair(name, "synth", description, factory)


def _rewritten(name, description, make, seed=1, selection=0.6, k=4):
    def factory():
        original = make()
        variant = rewrite(original, k=k, selection=selection, seed=seed)
        return original, variant

    return BenchmarkPair(name, "synth", description, factory)


SUITE = [
    _arch(
        "add08",
        "8-bit ripple-carry vs. carry-lookahead adder",
        lambda: (gen.ripple_carry_adder(8), gen.carry_lookahead_adder(8)),
    ),
    _arch(
        "add16",
        "16-bit ripple-carry vs. carry-lookahead adder",
        lambda: (gen.ripple_carry_adder(16), gen.carry_lookahead_adder(16)),
    ),
    _arch(
        "add16k",
        "16-bit ripple-carry vs. Kogge-Stone adder",
        lambda: (gen.ripple_carry_adder(16), gen.kogge_stone_adder(16)),
    ),
    _arch(
        "add16s",
        "16-bit ripple-carry vs. carry-select adder",
        lambda: (gen.ripple_carry_adder(16), gen.carry_select_adder(16)),
    ),
    _arch(
        "add24",
        "24-bit ripple-carry vs. Kogge-Stone adder",
        lambda: (gen.ripple_carry_adder(24), gen.kogge_stone_adder(24)),
    ),
    _arch(
        "mul03",
        "3x3 array vs. Wallace-tree multiplier",
        lambda: (gen.array_multiplier(3), gen.wallace_multiplier(3)),
    ),
    _arch(
        "mul04",
        "4x4 array vs. Wallace-tree multiplier",
        lambda: (gen.array_multiplier(4), gen.wallace_multiplier(4)),
    ),
    _arch(
        "mul05",
        "5x5 array vs. Wallace-tree multiplier",
        lambda: (gen.array_multiplier(5), gen.wallace_multiplier(5)),
    ),
    _arch(
        "cmp10",
        "10-bit priority comparator vs. subtractor-based comparator",
        lambda: (gen.comparator(10), gen.comparator_subtract(10)),
    ),
    _arch(
        "alu06",
        "6-bit four-function ALU, two mux organizations",
        lambda: (gen.alu(6), gen.alu_mux_first(6)),
    ),
    _arch(
        "par16",
        "16-input parity, balanced tree vs. linear chain",
        lambda: (gen.parity_tree(16), gen.parity_chain(16)),
    ),
    _synth(
        "sadd12",
        "12-bit carry-lookahead adder vs. its restructuring",
        lambda: gen.carry_lookahead_adder(12),
        seed=7,
    ),
    _synth(
        "smul04",
        "4x4 array multiplier vs. its restructuring",
        lambda: gen.array_multiplier(4),
        seed=11,
        intensity=0.5,
        redundancy=0.2,
    ),
    _synth(
        "sbsh08",
        "8-bit barrel shifter vs. its restructuring",
        lambda: gen.barrel_shifter(3),
        seed=3,
        intensity=0.5,
    ),
    _synth(
        "smaj09",
        "9-input majority vs. its restructuring",
        lambda: gen.majority(9),
        seed=5,
    ),
    _arch(
        "add20k",
        "20-bit ripple-carry vs. carry-skip adder",
        lambda: (gen.ripple_carry_adder(20), gen.carry_skip_adder(20)),
    ),
    _arch(
        "add12c",
        "12-bit carry-lookahead vs. conditional-sum adder",
        lambda: (
            gen.carry_lookahead_adder(12),
            gen.conditional_sum_adder(12),
        ),
    ),
    _arch(
        "mul04d",
        "4x4 Wallace vs. Dadda multiplier",
        lambda: (gen.wallace_multiplier(4), gen.dadda_multiplier(4)),
    ),
    _rewritten(
        "rcmp08",
        "8-bit comparator vs. its cut-rewritten form",
        lambda: gen.comparator(8),
        seed=2,
    ),
    _rewritten(
        "rpop12",
        "12-input popcount vs. its cut-rewritten form",
        lambda: gen.popcount(12),
        seed=4,
        selection=0.5,
    ),
]


def by_name(name):
    """Look up a suite entry by name."""
    for pair in SUITE:
        if pair.name == name:
            return pair
    raise KeyError("no benchmark named %r" % name)


def adder_scaling_series(widths=(2, 4, 6, 8, 10, 12, 14, 16)):
    """Ripple-carry vs. Kogge-Stone pairs across widths (Figure 1)."""
    return [
        BenchmarkPair(
            "add%02d" % width,
            "scaling",
            "%d-bit ripple-carry vs. Kogge-Stone" % width,
            (lambda w: lambda: (
                gen.ripple_carry_adder(w),
                gen.kogge_stone_adder(w),
            ))(width),
        )
        for width in widths
    ]


def multiplier_scaling_series(widths=(2, 3, 4, 5)):
    """Array vs. Wallace multiplier pairs across widths."""
    return [
        BenchmarkPair(
            "mul%02d" % width,
            "scaling",
            "%dx%d array vs. Wallace multiplier" % (width, width),
            (lambda w: lambda: (
                gen.array_multiplier(w),
                gen.wallace_multiplier(w),
            ))(width),
        )
        for width in widths
    ]
