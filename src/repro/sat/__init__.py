"""CDCL SAT solving with resolution-proof logging."""

from .reference import ReferenceSolver
from .solver import SAT, UNKNOWN, UNSAT, SolveResult, Solver, SolverStats, luby

__all__ = [
    "SAT",
    "UNKNOWN",
    "UNSAT",
    "ReferenceSolver",
    "SolveResult",
    "Solver",
    "SolverStats",
    "luby",
]
