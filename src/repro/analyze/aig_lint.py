"""Structural linting of AIGs, miters, and their Tseitin encodings.

Three entry points, one per artifact:

* :func:`lint_aig` — netlist well-formedness: fanin bounds and
  topological order (with genuine combinational-loop detection on
  corrupted graphs), constant-feeding and trivial AND nodes that
  :meth:`~repro.aig.aig.AIG.add_and` would have folded away, structural
  hashing misses, dangling-node accounting, output literal ranges, and
  an ``aig.structure-report`` info summary.
* :func:`lint_miter` — miter shape: exactly one output, non-empty
  aligned output-pair/XOR bookkeeping, literals in range; includes a
  full :func:`lint_aig` of the miter netlist.
* :func:`lint_encoding` — Tseitin CNF: var-map bijectivity, the
  constant unit clause, the three-clause AND definition schema per
  node, and clause-count accounting against the expected schema.

As in :mod:`repro.analyze.proof_lint`, error severity means the
artifact cannot be what it claims (a well-formed AIG / faithful
encoding); warnings flag constructs the package's own builders never
produce; info findings are accounting only.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..aig.literal import lit_var
from .findings import ERROR, INFO, WARNING, Finding

_NO_FANIN = -1


def lint_aig(aig: Any, name: str = "") -> List[Finding]:
    """Lint one :class:`~repro.aig.aig.AIG`; returns findings.

    Args:
        aig: the netlist to analyze.
        name: label used in messages (defaults to ``aig.name``).
    """
    findings: List[Finding] = []
    label = name or aig.name or "aig"
    num_vars = aig.num_vars
    bad_order: List[int] = []
    bad_refs = False
    const_fanin = 0
    trivial = 0
    strash_seen: Dict[Tuple[int, int], int] = {}
    strash_dups = 0
    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        ok = True
        for fanin in (f0, f1):
            fanin_var = fanin >> 1
            if not 0 <= fanin_var < num_vars:
                findings.append(Finding(
                    "aig.topology", ERROR,
                    "%s: AND %d has out-of-range fanin literal %d"
                    % (label, var, fanin),
                    data={"var": var, "fanin": fanin},
                ))
                ok = False
                bad_refs = True
            elif fanin_var >= var:
                bad_order.append(var)
                ok = False
        if not ok:
            continue
        if (f0 >> 1) == 0 or (f1 >> 1) == 0:
            const_fanin += 1
        if (f0 >> 1) == (f1 >> 1):
            trivial += 1
        key = (f0, f1) if f0 >= f1 else (f1, f0)
        first = strash_seen.setdefault(key, var)
        if first != var:
            strash_dups += 1
    if bad_order:
        # Variable order is no longer topological; decide whether the
        # graph is merely reordered or genuinely cyclic.
        cycle_var = _find_cycle(aig)
        if cycle_var is not None:
            findings.append(Finding(
                "aig.loop", ERROR,
                "%s: combinational loop through AND %d" % (label, cycle_var),
                data={"var": cycle_var},
            ))
        findings.append(Finding(
            "aig.topology", ERROR if cycle_var is not None else WARNING,
            "%s: %d AND nodes reference non-prior variables"
            % (label, len(bad_order)),
            data={"vars": bad_order[:16]},
        ))
    if const_fanin:
        findings.append(Finding(
            "aig.const-fanin", WARNING,
            "%s: %d AND nodes read the constant (add_and would fold them)"
            % (label, const_fanin),
            data={"count": const_fanin},
        ))
    if trivial:
        findings.append(Finding(
            "aig.trivial-and", WARNING,
            "%s: %d AND nodes combine a variable with itself"
            % (label, trivial),
            data={"count": trivial},
        ))
    if strash_dups:
        findings.append(Finding(
            "aig.strash-dup", WARNING,
            "%s: %d AND nodes duplicate an earlier fanin pair"
            " (structural hashing miss)" % (label, strash_dups),
            data={"count": strash_dups},
        ))
    for index, lit in enumerate(aig.outputs):
        if not 0 <= lit_var(lit) < num_vars:
            findings.append(Finding(
                "aig.output-range", ERROR,
                "%s: output %d is literal %d of an unknown variable"
                % (label, index, lit),
                data={"output": index, "lit": lit},
            ))
            bad_refs = True
    # fanout_counts()/levels() index by fanin variable, so skip the
    # structure summary when references are out of range.
    if not bad_refs:
        findings.extend(_structure_report(aig, label, bool(bad_order)))
    return findings


def _structure_report(aig: Any, label: str, skip_levels: bool) -> List[Finding]:
    """Dangling accounting plus the ``aig.structure-report`` summary."""
    findings: List[Finding] = []
    fanout = aig.fanout_counts()
    dangling = sum(
        1 for var in aig.and_vars()
        if 0 <= var < len(fanout) and fanout[var] == 0
    )
    if dangling:
        findings.append(Finding(
            "aig.dangling", WARNING,
            "%s: %d AND nodes have no fanout and feed no output"
            " (rebuild would drop them)" % (label, dangling),
            data={"count": dangling},
        ))
    # levels() assumes topological variable order; skip when violated.
    depth = None if skip_levels else (
        max(aig.levels()) if aig.num_vars > 1 else 0
    )
    findings.append(Finding(
        "aig.structure-report", INFO,
        "%s: %d inputs, %d outputs, %d ANDs, depth %s, %d dangling"
        % (label, aig.num_inputs, aig.num_outputs, aig.num_ands,
           "?" if depth is None else depth, dangling),
        data={
            "inputs": aig.num_inputs,
            "outputs": aig.num_outputs,
            "ands": aig.num_ands,
            "depth": depth,
            "dangling": dangling,
            "max_fanout": max(fanout) if fanout else 0,
        },
    ))
    return findings


def _find_cycle(aig: Any) -> Optional[int]:
    """First AND variable on a combinational cycle, or ``None``.

    Iterative three-color DFS over the fanin graph; tolerates arbitrary
    (corrupted) fanin references as long as they are in range.
    """
    num_vars = aig.num_vars
    state = bytearray(num_vars)  # 0 unvisited, 1 on stack, 2 done
    for root in aig.and_vars():
        if state[root]:
            continue
        stack: List[Tuple[int, int]] = [(root, 0)]
        state[root] = 1
        while stack:
            var, child = stack[-1]
            if not aig.is_and(var) or child == 2:
                state[var] = 2
                stack.pop()
                continue
            stack[-1] = (var, child + 1)
            fanin_var = aig.fanins(var)[child] >> 1
            if not 0 <= fanin_var < num_vars:
                continue
            if state[fanin_var] == 1:
                return fanin_var
            if state[fanin_var] == 0:
                state[fanin_var] = 1
                stack.append((fanin_var, 0))
    return None


def lint_miter(miter: Any) -> List[Finding]:
    """Lint a :class:`~repro.aig.miter.Miter`'s shape and its netlist."""
    findings: List[Finding] = []
    aig = miter.aig
    num_vars = aig.num_vars
    if aig.num_outputs != 1:
        findings.append(Finding(
            "miter.shape", ERROR,
            "miter has %d outputs, expected exactly 1" % aig.num_outputs,
        ))
    if not miter.output_pairs:
        findings.append(Finding(
            "miter.shape", ERROR,
            "miter tracks no output pairs — nothing to prove",
        ))
    if len(miter.xor_lits) != len(miter.output_pairs):
        findings.append(Finding(
            "miter.shape", ERROR,
            "miter tracks %d XOR literals for %d output pairs"
            % (len(miter.xor_lits), len(miter.output_pairs)),
        ))
    out_of_range = [
        lit
        for pair in miter.output_pairs for lit in pair
        if not 0 <= lit_var(lit) < num_vars
    ] + [
        lit for lit in miter.xor_lits
        if not 0 <= lit_var(lit) < num_vars
    ]
    if out_of_range:
        findings.append(Finding(
            "miter.shape", ERROR,
            "miter bookkeeping references literals of unknown variables: %r"
            % (out_of_range[:8],),
        ))
    identical = sum(1 for a, b in miter.output_pairs if a == b)
    if identical:
        findings.append(Finding(
            "miter.shape", INFO,
            "%d of %d output pairs are already structurally identical"
            % (identical, len(miter.output_pairs)),
            data={"identical_pairs": identical,
                  "pairs": len(miter.output_pairs)},
        ))
    findings.extend(lint_aig(aig, name="miter"))
    return findings


def lint_encoding(aig: Any, encoding: Any) -> List[Finding]:
    """Lint a :class:`~repro.cnf.tseitin.TseitinResult` against its AIG.

    Validates the AIG-variable-to-CNF-variable map (length, injectivity,
    range), the constant unit clause, every AND node's three defining
    clauses against the Tseitin schema, and the overall clause count
    (``1 + 3 * num_ands`` plus any caller-added constraint clauses,
    which are reported as info).
    """
    findings: List[Finding] = []
    cnf = encoding.cnf
    var_of = encoding.var_of
    if len(var_of) != aig.num_vars:
        findings.append(Finding(
            "cnf.var-map", ERROR,
            "var map covers %d variables, AIG has %d"
            % (len(var_of), aig.num_vars),
        ))
        return findings
    seen: Dict[int, int] = {}
    for aig_var, cnf_var in enumerate(var_of):
        if not 1 <= cnf_var <= cnf.num_vars:
            findings.append(Finding(
                "cnf.var-map", ERROR,
                "AIG variable %d maps to CNF variable %d outside 1..%d"
                % (aig_var, cnf_var, cnf.num_vars),
            ))
            continue
        first = seen.setdefault(cnf_var, aig_var)
        if first != aig_var:
            findings.append(Finding(
                "cnf.var-map", ERROR,
                "AIG variables %d and %d both map to CNF variable %d"
                % (first, aig_var, cnf_var),
            ))
    num_clauses = len(cnf.clauses)
    const_index = encoding.const_clause_index
    if not 0 <= const_index < num_clauses:
        findings.append(Finding(
            "cnf.const-unit", ERROR,
            "constant clause index %d is out of range" % const_index,
        ))
    elif cnf.clauses[const_index] != (-var_of[0],):
        findings.append(Finding(
            "cnf.const-unit", ERROR,
            "clause %d is %r, expected the constant unit %r"
            % (const_index, cnf.clauses[const_index], (-var_of[0],)),
        ))
    schema_clauses = 1
    for aig_var in aig.and_vars():
        triple = encoding.defining_clauses.get(aig_var)
        if triple is None:
            findings.append(Finding(
                "cnf.defining-shape", ERROR,
                "AND %d has no defining clauses" % aig_var,
            ))
            continue
        if any(not 0 <= index < num_clauses for index in triple):
            findings.append(Finding(
                "cnf.defining-shape", ERROR,
                "AND %d cites out-of-range clause indices %r"
                % (aig_var, triple),
            ))
            continue
        schema_clauses += 3
        f0, f1 = aig.fanins(aig_var)
        node = var_of[aig_var]
        lit1 = _cnf_lit(var_of, f0)
        lit2 = _cnf_lit(var_of, f1)
        expected = {
            tuple(sorted({-node, lit1})),
            tuple(sorted({-node, lit2})),
            tuple(sorted({node, -lit1, -lit2})),
        }
        actual = {cnf.clauses[index] for index in triple}
        if actual != expected:
            findings.append(Finding(
                "cnf.defining-shape", ERROR,
                "AND %d defining clauses %r do not match the Tseitin"
                " schema %r" % (aig_var, sorted(actual), sorted(expected)),
            ))
    if num_clauses < schema_clauses:
        findings.append(Finding(
            "cnf.clause-count", ERROR,
            "encoding has %d clauses, schema requires at least %d"
            % (num_clauses, schema_clauses),
        ))
    elif num_clauses > schema_clauses:
        findings.append(Finding(
            "cnf.clause-count", INFO,
            "%d clauses beyond the Tseitin schema (caller constraints)"
            % (num_clauses - schema_clauses),
            data={"extra": num_clauses - schema_clauses},
        ))
    return findings


def _cnf_lit(var_of: List[int], aig_lit: int) -> int:
    var = var_of[aig_lit >> 1]
    return -var if aig_lit & 1 else var
