"""Tests for fraig-based AIG reduction."""

import pytest

from repro.aig import AIG
from repro.circuits import (
    carry_lookahead_adder,
    comparator,
    parity_tree,
    ripple_carry_adder,
)
from repro.core import SweepOptions, certified_reduce, fraig_reduce
from repro.transforms import restructure

from conftest import assert_equivalent_exhaustive


def bloat(aig, seed=1):
    return restructure(aig, seed=seed, intensity=0.3, redundancy=0.4)


class TestFraigReduce:
    def test_function_preserved(self):
        original = comparator(4)
        result = fraig_reduce(bloat(original))
        assert_equivalent_exhaustive(original, result.aig)

    def test_removes_redundancy(self):
        original = carry_lookahead_adder(5)
        bloated = bloat(original)
        result = fraig_reduce(bloated)
        assert result.nodes_after < bloated.num_ands
        assert result.reduction > 0

    def test_merges_duplicated_logic(self):
        """Two structurally different XOR implementations collapse."""
        aig = AIG()
        a, b = aig.add_inputs(2)
        canonical = aig.add_xor(a, b)
        sop = aig.add_or(
            aig.add_and(a, b ^ 1), aig.add_and(a ^ 1, b)
        )
        aig.add_output(canonical)
        aig.add_output(sop)
        result = fraig_reduce(aig)
        out_a, out_b = result.aig.outputs
        assert out_a == out_b

    def test_constant_nodes_collapse(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        x1 = aig.add_xor(a, b)
        x2 = aig.add_or(
            aig.add_and(a, b ^ 1), aig.add_and(a ^ 1, b)
        )
        dead = aig.add_and(x1, x2 ^ 1)  # x1 & ~x1 = 0 semantically
        aig.add_output(dead)
        result = fraig_reduce(aig)
        assert result.aig.outputs[0] == 0  # constant FALSE literal
        assert result.nodes_after == 0

    def test_idempotent_on_reduced(self):
        original = ripple_carry_adder(4)
        first = fraig_reduce(bloat(original))
        second = fraig_reduce(first.aig)
        assert second.nodes_after == second.nodes_before

    def test_io_preserved(self):
        original = comparator(4)
        result = fraig_reduce(bloat(original))
        assert result.aig.num_inputs == original.num_inputs
        assert result.aig.output_names == original.output_names

    def test_no_proof_by_default(self):
        result = fraig_reduce(bloat(parity_tree(5)))
        assert result.engine.proof is None

    def test_repr(self):
        result = fraig_reduce(bloat(parity_tree(5)))
        assert "->" in repr(result)

    def test_reduction_fraction_empty_circuit(self):
        aig = AIG()
        aig.add_inputs(2)
        aig.add_output(2)
        result = fraig_reduce(aig)
        assert result.reduction == 0.0


class TestCertifiedReduce:
    def test_proof_checked(self):
        original = comparator(4)
        result, check = certified_reduce(bloat(original))
        assert_equivalent_exhaustive(original, result.aig)
        assert check.num_derived > 0

    def test_requires_proof_logging(self):
        with pytest.raises(ValueError):
            certified_reduce(parity_tree(4), SweepOptions(proof=False))

    def test_validated_options(self):
        original = parity_tree(5)
        result, check = certified_reduce(
            bloat(original), SweepOptions(validate_proof=True)
        )
        assert result.nodes_after <= result.nodes_before
