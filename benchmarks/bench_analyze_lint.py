"""Static lint vs. full replay — the pre-flight speedup.

The lint gate is only worth running unconditionally if it is much
cheaper than the replay it fronts. This bench times
:func:`repro.analyze.proof_lint.lint_proof` against
:func:`repro.proof.checker.check_proof` on the committed benchmark
proof (``examples/data/add24_miter.tc``, the largest in the repo) and
on freshly generated proofs across sizes.

The acceptance bar is a >= 5x speedup on the largest committed proof;
the test asserts a 3x floor so timer noise on loaded CI machines does
not flake the suite, and reports the measured ratio in the summary
table.
"""

import os
import time

import pytest

from repro.analyze.proof_lint import lint_proof
from repro.baselines.monolithic import monolithic_check
from repro.circuits import kogge_stone_adder, ripple_carry_adder
from repro.cnf.dimacs import read_dimacs
from repro.proof.checker import check_proof
from repro.proof.stats import proof_stats
from repro.proof.tracecheck import read_tracecheck
from repro.proof.trim import trim

from conftest import report_table

_DATA = os.path.join(os.path.dirname(__file__), "..", "examples", "data")
_ROWS = {}


def _best_of(fn, reps=9):
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure(name, proof, cnf):
    stats = proof_stats(proof)
    check_seconds = _best_of(
        lambda: check_proof(proof, axioms=cnf.clauses, require_empty=True)
    )
    lint_seconds = _best_of(lambda: lint_proof(proof, cnf=cnf))
    findings = lint_proof(proof, cnf=cnf)
    errors = [f for f in findings if f.severity == "error"]
    assert not errors, [f.render() for f in errors]
    ratio = check_seconds / lint_seconds
    _ROWS[name] = [
        name, stats.num_clauses, stats.num_resolutions,
        "%.1f" % (check_seconds * 1e3), "%.2f" % (lint_seconds * 1e3),
        "%.1fx" % ratio,
    ]
    report_table(
        "Static lint vs. replay (pre-flight speedup)",
        ["proof", "clauses", "resolutions", "replay ms", "lint ms",
         "speedup"],
        [_ROWS[key] for key in sorted(_ROWS)],
        notes=["acceptance bar: >=5x on the committed add24 proof; "
               "test floor 3x absorbs CI timer noise"],
    )
    return ratio


def test_committed_benchmark_proof():
    proof, _ = read_tracecheck(os.path.join(_DATA, "add24_miter.tc"))
    cnf = read_dimacs(os.path.join(_DATA, "add24_miter.cnf"))
    ratio = _measure("add24 (committed)", proof, cnf)
    assert ratio >= 3.0, "lint only %.1fx faster than replay" % ratio


@pytest.mark.parametrize("bits", [8, 16])
def test_generated_adder_proofs(bits):
    result = monolithic_check(
        ripple_carry_adder(bits), kogge_stone_adder(bits), proof=True
    )
    assert result.equivalent
    proof, _ = trim(result.proof)
    _measure("add%02d (generated)" % bits, proof, result.cnf)
