"""Resolution-proof compression: the *LowerUnits* transformation.

A unit clause used as an antecedent by many derivations eliminates the
same literal over and over. LowerUnits (Fontaine, Merz & Woltzenlogel
Paleo, 2011) factors such units out: their resolution steps are deleted
from every chain — the eliminated literal is simply carried along — and
the units are resolved exactly once against the final clause. On CDCL
proofs, where level-0 units feed hundreds of conflicts, this trades many
interior steps for a handful at the root.

Correctness hinges on one invariant: the *subproofs of the factored
units themselves* must stay exactly as they were (a weakened unit is no
longer a unit), so the whole antecedent cone of every factored unit is
rebuilt faithfully; only chains outside those cones have their unit
steps removed, with a skip-tolerant replay absorbing the literals that
now ride along. The result is a valid proof — verified by the same
independent checkers as every other proof in this package.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple, Union

from .store import Chain, Clause, ProofError, ProofStore, resolve
from .trim import needed_ids


def lower_units(
    store: ProofStore, root_id: Optional[int] = None
) -> Tuple[ProofStore, Dict[int, int]]:
    """Apply the LowerUnits transformation.

    Args:
        store: a proof store containing a refutation.
        root_id: id of the empty clause (defaults to the first).

    Returns:
        ``(compressed_store, id_map)`` — a new store deriving the empty
        clause, and the mapping from kept old ids to new ids. The new
        store is also trimmed (only the cone of the root survives).
    """
    if root_id is None:
        root_id = store.find_empty_clause()
        if root_id is None:
            raise ProofError(
                "store has no empty clause to compress",
                rule_id="proof.no-refutation",
            )
    keep = needed_ids(store, root_id)
    # Units referenced as antecedents anywhere in the cone.
    unit_ids: Set[int] = set()
    for clause_id in keep:
        if store.chain(clause_id) is None:
            continue
        for antecedent in store.antecedents(clause_id):
            if len(store.clause(antecedent)) == 1:
                unit_ids.add(antecedent)
    # The factored units' own derivations must be copied verbatim.
    protected: Set[int] = set()
    for unit_id in unit_ids:
        protected |= needed_ids(store, unit_id)
    compressed = ProofStore()
    id_map: Dict[int, int] = {}
    new_clauses: Dict[int, Clause] = {}
    for clause_id in sorted(keep):
        chain = store.chain(clause_id)
        if chain is None:
            new_id = compressed.add_axiom(store.clause(clause_id))
        elif clause_id in protected:
            new_chain: Chain = [id_map[chain[0]]]
            new_chain.extend(
                (pivot, id_map[ante]) for pivot, ante in chain[1:]
            )
            new_id = compressed.add_derived(
                store.clause(clause_id), new_chain
            )
        else:
            replay_chain, replay_clause = _replay(
                compressed, chain, id_map, unit_ids,
                {store.clause(u)[0]: u for u in unit_ids},
            )
            if replay_chain is None:
                assert isinstance(replay_clause, int)
                id_map[clause_id] = id_map[replay_clause]
                new_clauses[clause_id] = compressed.clause(
                    id_map[clause_id]
                )
                continue
            assert isinstance(replay_clause, tuple)
            new_id = compressed.add_derived(replay_clause, replay_chain)
        id_map[clause_id] = new_id
        new_clauses[clause_id] = compressed.clause(new_id)
    # Finish: resolve the (possibly non-empty) root against the units.
    root_clause = new_clauses[root_id]
    if root_clause:
        chain = [id_map[root_id]]
        current = root_clause
        progress = True
        while current and progress:
            progress = False
            for unit_id in sorted(unit_ids):
                (unit_lit,) = compressed.clause(id_map[unit_id])
                if -unit_lit in current:
                    current = resolve(
                        current,
                        compressed.clause(id_map[unit_id]),
                        abs(unit_lit),
                    )
                    chain.append((abs(unit_lit), id_map[unit_id]))
                    progress = True
        if current:
            raise ProofError(
                "LowerUnits left a non-empty root %r" % (current,)
            )
        compressed.add_derived((), chain)
    return compressed, id_map


def _replay(
    compressed: ProofStore,
    chain: Chain,
    id_map: Dict[int, int],
    skip_units: Set[int],
    unit_of_literal: Dict[int, int],
) -> Tuple[Optional[Chain], Union[Clause, int]]:
    """Replay *chain* with unit steps removed.

    Returns ``(new_chain, new_clause)`` or ``(None, surviving_old_id)``
    when every step was skipped.

    Carried unit literals can clash with a later antecedent (the
    antecedent contains the literal's complement, which would make the
    resolvent tautological). The replay repairs this on the fly by
    re-inserting the offending unit resolution — against the running
    resolvent when it carries the literal, or against the antecedent
    (materializing an intermediate clause) when the antecedent does.
    """
    first_old = chain[0]
    current = compressed.clause(id_map[first_old])
    new_chain: Chain = [id_map[first_old]]
    current_set = set(current)
    for pivot, antecedent_old in chain[1:]:
        other_id = id_map[antecedent_old]
        other = compressed.clause(other_id)
        applicable = (
            (pivot in current_set and -pivot in other)
            or (-pivot in current_set and pivot in other)
        )
        if not applicable:
            continue
        if antecedent_old in skip_units:
            continue
        conflicts = [
            lit
            for lit in current
            if -lit in other and abs(lit) != pivot
        ]
        for lit in conflicts:
            unit_old = unit_of_literal.get(-lit)
            if unit_old is not None:
                # current carries `lit`; the factored unit (-lit) removes it.
                unit_id = id_map[unit_old]
                current = resolve(
                    current, compressed.clause(unit_id), abs(lit)
                )
                current_set = set(current)
                new_chain.append((abs(lit), unit_id))
                continue
            unit_old = unit_of_literal.get(lit)
            if unit_old is not None:
                # The antecedent carries `-lit`; clean it with unit (lit).
                unit_id = id_map[unit_old]
                cleaned = resolve(
                    other, compressed.clause(unit_id), abs(lit)
                )
                other_id = compressed.add_derived(
                    cleaned, [other_id, (abs(lit), unit_id)]
                )
                other = cleaned
                continue
            raise ProofError(
                "irreparable clash on literal %d during LowerUnits" % lit
            )
        current = resolve(current, other, pivot)
        current_set = set(current)
        new_chain.append((pivot, other_id))
    if len(new_chain) == 1:
        return None, first_old
    return new_chain, current
