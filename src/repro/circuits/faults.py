"""Systematic fault injection.

Equivalence checkers are judged on both halves of their contract:
proving equal circuits equal *and* refuting unequal ones. This module
injects classical gate-level faults into AIGs — stuck-at nodes, edge
polarity flips, gate substitutions, wrong-wire hookups — producing
mutated circuits for the refutation half of the evaluation (and for the
test suite's soundness checks).

A fault may be *functionally redundant* (the mutated circuit still
computes the same function); callers decide semantically, e.g. by
running the checker itself. :func:`inject` reports enough metadata to
tell what was mutated where.
"""

import random

from ..aig.aig import AIG
from ..aig.literal import FALSE, TRUE, lit_not, lit_not_cond, lit_sign, lit_var

FAULT_KINDS = (
    "stuck_at_0",
    "stuck_at_1",
    "edge_flip",
    "and_to_or",
    "wrong_fanin",
    "output_flip",
)


class Fault:
    """Description of one injected fault.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        node: the AIG variable (or output index for ``output_flip``) hit.
        detail: human-readable specifics.
    """

    def __init__(self, kind, node, detail=""):
        if kind not in FAULT_KINDS:
            raise ValueError("unknown fault kind %r" % kind)
        self.kind = kind
        self.node = node
        self.detail = detail

    def __repr__(self):
        return "Fault(%s @ %d%s)" % (
            self.kind,
            self.node,
            ", %s" % self.detail if self.detail else "",
        )


def inject(aig, fault):
    """Return a copy of *aig* with *fault* applied.

    Raises:
        ValueError: when the fault's target does not exist.
    """
    if fault.kind == "output_flip":
        if not 0 <= fault.node < aig.num_outputs:
            raise ValueError("no output %d" % fault.node)
        mutated = aig.copy()
        mutated.set_output(fault.node, lit_not(mutated.outputs[fault.node]))
        return mutated
    if not aig.is_and(fault.node):
        raise ValueError("fault target %d is not an AND node" % fault.node)
    mutated = AIG((aig.name or "aig") + "~" + fault.kind)
    lit_map = [None] * aig.num_vars
    lit_map[0] = FALSE
    for var, name in zip(aig.inputs, aig.input_names):
        lit_map[var] = mutated.add_input(name)

    def mapped(lit):
        return lit_not_cond(lit_map[lit_var(lit)], lit_sign(lit))

    for var in aig.and_vars():
        f0, f1 = aig.fanins(var)
        m0, m1 = mapped(f0), mapped(f1)
        if var != fault.node:
            lit_map[var] = mutated.add_and(m0, m1)
            continue
        lit_map[var] = _apply_node_fault(mutated, fault, m0, m1, lit_map)
    for lit, name in zip(aig.outputs, aig.output_names):
        mutated.add_output(mapped(lit), name)
    return mutated


def _apply_node_fault(mutated, fault, m0, m1, lit_map):
    if fault.kind == "stuck_at_0":
        return FALSE
    if fault.kind == "stuck_at_1":
        return TRUE
    if fault.kind == "edge_flip":
        return mutated.add_and(lit_not(m0), m1)
    if fault.kind == "and_to_or":
        return mutated.add_or(m0, m1)
    if fault.kind == "wrong_fanin":
        # Replace the first fanin by another already-built signal.
        candidates = [
            lit for lit in lit_map
            if lit is not None and lit > TRUE and lit != m0
        ]
        if not candidates:
            raise ValueError("no replacement signal for wrong_fanin")
        replacement = candidates[fault.node % len(candidates)]
        return mutated.add_and(replacement, m1)
    raise AssertionError(fault.kind)


def enumerate_faults(aig, kinds=FAULT_KINDS, rng=None, per_kind=None):
    """Generate a deterministic fault list for *aig*.

    Args:
        aig: target circuit.
        kinds: fault kinds to include.
        rng: optional ``random.Random`` for sampling node targets; when
            None every AND node is targeted.
        per_kind: with *rng*, how many targets to sample per kind.

    Returns:
        List of :class:`Fault`.
    """
    and_vars = list(aig.and_vars())
    faults = []
    for kind in kinds:
        if kind == "output_flip":
            targets = list(range(aig.num_outputs))
        elif rng is not None and per_kind is not None:
            count = min(per_kind, len(and_vars))
            targets = rng.sample(and_vars, count) if count else []
        else:
            targets = and_vars
        for target in targets:
            faults.append(Fault(kind, target))
    return faults


def fault_campaign(aig, checker, kinds=FAULT_KINDS, seed=0, per_kind=3):
    """Inject sampled faults and classify each by *checker*.

    Args:
        aig: golden circuit.
        checker: callable ``(golden, mutated) -> True/False/None`` for
            equivalent / different / undecided (e.g. a wrapper around
            :func:`repro.core.cec.check_equivalence`).
        kinds: fault kinds to exercise.
        seed: sampling seed.
        per_kind: sampled targets per kind.

    Returns:
        List of ``(Fault, verdict)`` pairs. A verdict of False means the
        fault was *detected*; True means it was functionally redundant.
    """
    rng = random.Random(seed)
    results = []
    for fault in enumerate_faults(aig, kinds, rng=rng, per_kind=per_kind):
        mutated = inject(aig, fault)
        results.append((fault, checker(aig, mutated)))
    return results
