"""Unit tests for AIG literal arithmetic."""

import pytest

from repro.aig.literal import (
    FALSE,
    TRUE,
    is_const,
    lit_not,
    lit_not_cond,
    lit_regular,
    lit_sign,
    lit_to_str,
    lit_var,
    make_lit,
)


class TestMakeLit:
    def test_positive(self):
        assert make_lit(5) == 10

    def test_complemented(self):
        assert make_lit(5, True) == 11

    def test_constant_literals(self):
        assert make_lit(0) == FALSE
        assert make_lit(0, True) == TRUE

    def test_negative_var_rejected(self):
        with pytest.raises(ValueError):
            make_lit(-1)


class TestAccessors:
    def test_var(self):
        assert lit_var(10) == 5
        assert lit_var(11) == 5

    def test_sign(self):
        assert not lit_sign(10)
        assert lit_sign(11)

    def test_regular(self):
        assert lit_regular(11) == 10
        assert lit_regular(10) == 10


class TestNot:
    def test_not_involution(self):
        for lit in range(20):
            assert lit_not(lit_not(lit)) == lit

    def test_not_flips_sign(self):
        assert lit_not(10) == 11
        assert lit_not(TRUE) == FALSE

    def test_not_cond_true(self):
        assert lit_not_cond(10, True) == 11

    def test_not_cond_false(self):
        assert lit_not_cond(10, False) == 10


class TestConst:
    def test_const_literals(self):
        assert is_const(FALSE)
        assert is_const(TRUE)

    def test_non_const(self):
        assert not is_const(2)
        assert not is_const(3)


class TestToStr:
    def test_constants(self):
        assert lit_to_str(FALSE) == "0"
        assert lit_to_str(TRUE) == "1"

    def test_regular(self):
        assert lit_to_str(10) == "n5"

    def test_complemented(self):
        assert lit_to_str(11) == "~n5"
