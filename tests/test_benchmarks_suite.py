"""Tests for the named benchmark suite."""

import pytest

from repro.aig import random_equivalence_test
from repro.circuits import (
    SUITE,
    adder_scaling_series,
    by_name,
    multiplier_scaling_series,
)


class TestSuiteIntegrity:
    def test_names_unique(self):
        names = [pair.name for pair in SUITE]
        assert len(names) == len(set(names))

    def test_categories(self):
        assert {pair.category for pair in SUITE} == {"arch", "synth"}

    def test_by_name(self):
        assert by_name("add08").name == "add08"

    def test_by_name_missing(self):
        with pytest.raises(KeyError):
            by_name("nope")

    @pytest.mark.parametrize("pair", SUITE, ids=lambda p: p.name)
    def test_builds_and_interfaces_match(self, pair):
        aig_a, aig_b = pair.build()
        assert aig_a.num_inputs == aig_b.num_inputs
        assert aig_a.num_outputs == aig_b.num_outputs
        assert aig_a.num_ands > 0

    @pytest.mark.parametrize("pair", SUITE, ids=lambda p: p.name)
    def test_simulation_consistent(self, pair):
        """A cheap necessary condition: no pair may be refuted by random
        simulation (the full SAT verification runs in the benches)."""
        aig_a, aig_b = pair.build()
        assert random_equivalence_test(aig_a, aig_b, rounds=256) is None

    @pytest.mark.parametrize("pair", SUITE, ids=lambda p: p.name)
    def test_pairs_are_structurally_distinct(self, pair):
        """Pairs must not strash to identical circuits, or the benchmark
        measures nothing."""
        from repro.aig import build_miter

        aig_a, aig_b = pair.build()
        miter = build_miter(aig_a, aig_b)
        assert miter.aig.num_ands > max(aig_a.num_ands, aig_b.num_ands)

    def test_deterministic_construction(self):
        pair = by_name("sadd12")
        first_a, first_b = pair.build()
        second_a, second_b = pair.build()
        assert first_b.num_ands == second_b.num_ands


class TestScalingSeries:
    def test_adder_series_widths(self):
        series = adder_scaling_series(widths=(2, 4))
        assert [pair.name for pair in series] == ["add02", "add04"]
        for pair in series:
            aig_a, aig_b = pair.build()
            assert aig_a.num_inputs == aig_b.num_inputs

    def test_multiplier_series(self):
        series = multiplier_scaling_series(widths=(2, 3))
        for pair in series:
            aig_a, aig_b = pair.build()
            assert random_equivalence_test(aig_a, aig_b, rounds=128) is None

    def test_closure_captures_width_correctly(self):
        series = adder_scaling_series(widths=(3, 5))
        a3, _ = series[0].build()
        a5, _ = series[1].build()
        assert a3.num_inputs == 6
        assert a5.num_inputs == 10
