"""Core: the proof-producing combinational equivalence checking engine."""

from .cec import CecResult, check_equivalence
from .certify import CertificationError, certify
from .fraig import SweepEngine, SweepOptions, SweepStats
from .outputs import OutputVerdict, OutputsReport, check_outputs
from .reduce import ReduceResult, certified_reduce, fraig_reduce
from .serialize import RESULT_SCHEMA, ResultFormatError, result_from_dict, \
    result_to_dict, verdict_name
from .witness import MinimizedWitness, minimize_counterexample
from .stitch import EquivLemma, StitchError, StructuralStitcher, derive_subset

__all__ = [
    "CecResult",
    "CertificationError",
    "EquivLemma",
    "StitchError",
    "StructuralStitcher",
    "SweepEngine",
    "SweepOptions",
    "SweepStats",
    "OutputVerdict",
    "OutputsReport",
    "RESULT_SCHEMA",
    "ReduceResult",
    "ResultFormatError",
    "check_outputs",
    "MinimizedWitness",
    "minimize_counterexample",
    "certified_reduce",
    "fraig_reduce",
    "certify",
    "check_equivalence",
    "derive_subset",
    "result_from_dict",
    "result_to_dict",
    "verdict_name",
]
