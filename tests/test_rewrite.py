"""Tests for cut-based resynthesis."""

import pytest

from repro.aig import AIG
from repro.circuits import (
    alu,
    array_multiplier,
    comparator,
    majority,
    parity_tree,
    ripple_carry_adder,
)
from repro.transforms import rewrite, synthesize_table

from conftest import assert_equivalent_exhaustive


class TestSynthesizeTable:
    @pytest.mark.parametrize("table", range(16))
    def test_all_two_var_functions(self, table):
        aig = AIG()
        a, b = aig.add_inputs(2)
        lit = synthesize_table(aig, table, [a, b])
        for minterm in range(4):
            bits = [minterm & 1, minterm >> 1]
            values = aig.evaluate_all(bits)
            assert aig.lit_value(values, lit) == (table >> minterm) & 1

    def test_constants(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        assert synthesize_table(aig, 0, [a, b]) == 0
        assert synthesize_table(aig, 0xF, [a, b]) == 1

    def test_single_variable(self):
        aig = AIG()
        (a,) = aig.add_inputs(1)
        assert synthesize_table(aig, 0b10, [a]) == a
        assert synthesize_table(aig, 0b01, [a]) == a ^ 1

    def test_four_var_random_tables(self):
        aig = AIG()
        lits = aig.add_inputs(4)
        import random

        rng = random.Random(1)
        for _ in range(30):
            table = rng.randrange(1 << 16)
            lit = synthesize_table(aig, table, lits)
            for minterm in range(16):
                bits = [(minterm >> k) & 1 for k in range(4)]
                values = aig.evaluate_all(bits)
                assert aig.lit_value(values, lit) == (table >> minterm) & 1

    def test_sharing_through_strash(self):
        """Synthesizing the same function twice allocates nothing new."""
        aig = AIG()
        lits = aig.add_inputs(3)
        first = synthesize_table(aig, 0b10010110, lits)
        count = aig.num_ands
        second = synthesize_table(aig, 0b10010110, lits)
        assert first == second
        assert aig.num_ands == count

    def test_complemented_leaves(self):
        aig = AIG()
        a, b = aig.add_inputs(2)
        lit = synthesize_table(aig, 0b1000, [a ^ 1, b])
        # AND(~a, b): true when a=0, b=1.
        assert aig.evaluate_all([0, 1])[lit >> 1] ^ (lit & 1) == 1
        values = aig.evaluate_all([1, 1])
        assert aig.lit_value(values, lit) == 0


class TestRewrite:
    CIRCUITS = [
        ripple_carry_adder(3),
        comparator(3),
        array_multiplier(3),
        majority(5),
        alu(2),
        parity_tree(6),
    ]

    @pytest.mark.parametrize("aig", CIRCUITS, ids=lambda a: a.name)
    def test_function_preserved_full_selection(self, aig):
        assert_equivalent_exhaustive(aig, rewrite(aig, k=4, selection=1.0))

    @pytest.mark.parametrize("aig", CIRCUITS, ids=lambda a: a.name)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_function_preserved_random_selection(self, aig, seed):
        variant = rewrite(aig, k=4, selection=0.5, seed=seed)
        assert_equivalent_exhaustive(aig, variant)

    def test_k_validated(self):
        with pytest.raises(ValueError):
            rewrite(ripple_carry_adder(2), k=1)

    def test_deterministic(self):
        aig = comparator(4)
        first = rewrite(aig, selection=0.5, seed=9)
        second = rewrite(aig, selection=0.5, seed=9)
        assert first.num_ands == second.num_ands
        assert list(first.outputs) == list(second.outputs)

    def test_selection_zero_is_copy(self):
        aig = comparator(4)
        copy = rewrite(aig, selection=0.0)
        assert copy.num_ands == aig.num_ands

    def test_changes_structure(self):
        aig = array_multiplier(3)
        variant = rewrite(aig, k=4, selection=1.0)
        from repro.aig import build_miter

        miter = build_miter(aig, variant)
        assert miter.aig.num_ands > aig.num_ands

    def test_io_preserved(self):
        aig = alu(3)
        variant = rewrite(aig, selection=0.7, seed=2)
        assert variant.num_inputs == aig.num_inputs
        assert variant.output_names == aig.output_names

    def test_rewritten_pair_checkable(self):
        """Rewrite output works as an equivalence-checking benchmark."""
        from repro import certify, check_equivalence

        aig = comparator(5)
        variant = rewrite(aig, k=4, selection=0.8, seed=5)
        result = check_equivalence(aig, variant)
        assert result.equivalent is True
        certify(result)
