"""Histograms, the metrics registry, and the Prometheus renderer."""

import pytest

from repro.instrument import (
    Histogram,
    MetricsRegistry,
    validate_metrics_report,
    to_prometheus_text,
)
from repro.instrument.metrics import (
    COUNT_BUCKETS,
    METRICS_SCHEMA,
    TIME_BUCKETS,
    iter_histogram_names,
    observe_stats_workload,
    prometheus_name,
)


class TestHistogram:
    def test_observe_places_values_in_buckets(self):
        hist = Histogram("t", (1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1]
        assert hist.count == 3
        assert hist.sum == pytest.approx(55.5)

    def test_boundary_value_goes_to_its_bucket(self):
        # le-style buckets: an observation equal to a bound belongs to
        # that bound's bucket.
        hist = Histogram("t", (1.0, 10.0))
        hist.observe(1.0)
        assert hist.counts == [1, 0, 0]

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("t", (1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("t", ())

    def test_quantile_empty_histogram_is_zero(self):
        hist = Histogram("t", (1.0, 2.0))
        for q in (0.0, 0.5, 0.99, 1.0):
            assert hist.quantile(q) == 0.0

    def test_quantile_single_bucket_interpolates_from_zero(self):
        hist = Histogram("t", (4.0,))
        hist.observe(1.0)
        assert hist.quantile(0.5) == pytest.approx(2.0)
        assert hist.quantile(1.0) == pytest.approx(4.0)

    def test_quantile_single_bucket_overflow_answers_the_bound(self):
        hist = Histogram("t", (4.0,))
        hist.observe(10.0)  # lands in +Inf
        assert hist.quantile(0.5) == 4.0

    def test_quantiles_interpolate(self):
        hist = Histogram("t", (0.1, 0.25, 1.0, 5.0))
        for value in (0.01, 0.2, 0.2, 3.0):
            hist.observe(value)
        assert hist.quantile(0.5) == pytest.approx(0.175)
        assert hist.quantile(0.99) == pytest.approx(4.9, abs=0.2)
        assert Histogram("t", (1.0,)).quantile(0.5) == 0.0

    def test_infinite_bucket_answers_largest_bound(self):
        hist = Histogram("t", (1.0, 2.0))
        hist.observe(100.0)
        assert hist.quantile(0.5) == 2.0

    def test_merge_adds_counts(self):
        a = Histogram("t", (1.0, 10.0))
        b = Histogram("t", (1.0, 10.0))
        a.observe(0.5)
        b.observe(5.0)
        b.observe(50.0)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.count == 3

    def test_merge_rejects_different_bounds(self):
        a = Histogram("t", (1.0, 10.0))
        b = Histogram("t", (1.0, 20.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_as_dict_carries_quantiles(self):
        hist = Histogram("t", (1.0,), unit="seconds")
        hist.observe(0.5)
        block = hist.as_dict()
        assert block["unit"] == "seconds"
        assert set(block) >= {"buckets", "counts", "count", "sum",
                              "p50", "p90", "p99"}


class TestRegistry:
    def test_report_validates(self):
        registry = MetricsRegistry()
        registry.observe("service/job-seconds", 0.2)
        report = registry.report()
        assert validate_metrics_report(report) is report
        assert report["schema"] == METRICS_SCHEMA
        assert list(iter_histogram_names(report)) == [
            "service/job-seconds",
        ]

    def test_first_caller_fixes_buckets(self):
        registry = MetricsRegistry()
        registry.observe("x", 3.0, buckets=(1.0, 10.0))
        registry.observe("x", 5.0, buckets=(99.0,))  # ignored
        assert registry.histogram("x").buckets == (1.0, 10.0)

    def test_merge_report_round_trip(self):
        worker = MetricsRegistry()
        worker.observe("service/job-seconds", 0.2)
        worker.observe("service/job-seconds", 0.4)
        server = MetricsRegistry()
        server.observe("service/job-seconds", 0.1)
        server.merge_report(worker.report())
        hist = server.histogram("service/job-seconds")
        assert hist.count == 3
        assert hist.sum == pytest.approx(0.7)

    def test_merge_report_adopts_unknown_histograms(self):
        worker = MetricsRegistry()
        worker.observe("solver/conflicts", 12.0, buckets=COUNT_BUCKETS)
        server = MetricsRegistry()
        server.merge_report(worker.report())
        assert server.histogram("solver/conflicts").count == 1

    def test_merge_report_rejects_malformed(self):
        with pytest.raises(ValueError):
            MetricsRegistry().merge_report({"schema": "nope"})

    def test_merge_report_rejects_mismatched_buckets(self):
        server = MetricsRegistry()
        server.observe("x", 1.0, buckets=(1.0, 10.0))
        worker = MetricsRegistry()
        worker.observe("x", 1.0, buckets=(2.0, 20.0))
        with pytest.raises(ValueError):
            server.merge_report(worker.report())
        # The local histogram is untouched by the failed merge.
        assert server.histogram("x").count == 1

    def test_merge_report_adopts_unknown_layout_verbatim(self):
        worker = MetricsRegistry()
        worker.observe("weird", 3.0, buckets=(0.5, 3.5, 7.0),
                       unit="things")
        server = MetricsRegistry()
        server.merge_report(worker.report())
        hist = server.histogram("weird")
        assert hist.buckets == (0.5, 3.5, 7.0)
        assert hist.unit == "things"
        assert hist.count == 1
        # A second merge of the same layout folds by addition.
        server.merge_report(worker.report())
        assert server.histogram("weird").count == 2

    def test_quantile_gauges(self):
        registry = MetricsRegistry()
        registry.observe("service/job-seconds", 0.2)
        gauges = registry.quantile_gauges()
        assert set(gauges) == {
            "service/job-seconds/p50",
            "service/job-seconds/p90",
            "service/job-seconds/p99",
        }
        assert all(v > 0 for v in gauges.values())
        # Empty histograms publish nothing.
        empty = MetricsRegistry()
        empty.histogram("idle")
        assert empty.quantile_gauges() == {}


class TestValidation:
    def _valid(self):
        registry = MetricsRegistry()
        registry.observe("x", 1.0, buckets=(1.0, 2.0))
        return registry.report()

    @pytest.mark.parametrize("mutate", [
        lambda d: d.pop("schema"),
        lambda d: d.__setitem__("histograms", []),
        lambda d: d["histograms"]["x"].pop("counts"),
        lambda d: d["histograms"]["x"].__setitem__("buckets", []),
        lambda d: d["histograms"]["x"].__setitem__(
            "buckets", [2.0, 1.0]),
        lambda d: d["histograms"]["x"].__setitem__("counts", [1]),
        lambda d: d["histograms"]["x"].__setitem__("count", 99),
        lambda d: d["histograms"]["x"]["counts"].__setitem__(0, -1),
    ])
    def test_rejects_malformed(self, mutate):
        document = self._valid()
        mutate(document)
        with pytest.raises(ValueError):
            validate_metrics_report(document)


class TestPrometheus:
    def test_name_sanitization(self):
        assert prometheus_name("service/job-seconds") == \
            "repro_service_job_seconds"
        assert prometheus_name("cache/lookup-seconds", "bucket") == \
            "repro_cache_lookup_seconds_bucket"

    def test_histogram_rendering_is_cumulative(self):
        registry = MetricsRegistry()
        for value in (0.5, 5.0, 50.0):
            registry.observe("x", value, buckets=(1.0, 10.0))
        text = to_prometheus_text(registry.report())
        assert '# TYPE repro_x histogram' in text
        assert 'repro_x_bucket{le="1"} 1' in text
        assert 'repro_x_bucket{le="10"} 2' in text
        assert 'repro_x_bucket{le="+Inf"} 3' in text
        assert "repro_x_count 3" in text
        assert text.endswith("\n")

    def test_stats_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.observe("x", 1.0, buckets=(1.0,))
        stats = {
            "counters": {"service/jobs-completed": 7},
            "gauges": {
                "service/hit-rate": 0.5,
                "service/verdict": "equivalent",  # non-numeric: skipped
                "service/flag": True,             # bool: skipped
            },
        }
        text = to_prometheus_text(registry.report(), stats_report=stats)
        assert "repro_service_jobs_completed_total 7" in text
        assert "repro_service_hit_rate 0.5" in text
        assert "verdict" not in text
        assert "repro_service_flag" not in text

    def test_build_info_line(self):
        registry = MetricsRegistry()
        registry.observe("x", 1.0, buckets=(1.0,))
        text = to_prometheus_text(
            registry.report(),
            build_info={"component": "repro-serve", "version": "9.9.9"},
        )
        assert "# TYPE repro_build_info gauge" in text
        assert ('repro_build_info{component="repro-serve",'
                'version="9.9.9"} 1') in text
        # Omitted build info renders no such line.
        assert "build_info" not in to_prometheus_text(registry.report())

    def test_build_info_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.observe("x", 1.0, buckets=(1.0,))
        text = to_prometheus_text(
            registry.report(),
            build_info={"note": 'a"b\\c\nd'},
        )
        assert 'note="a\\"b\\\\c\\nd"' in text

    def test_workload_observation(self):
        registry = MetricsRegistry()
        observe_stats_workload(registry, {
            "counters": {"solver/conflicts": 42},
            "gauges": {"proof/clauses": 1000},
        })
        report = registry.report()
        assert report["histograms"]["solver/conflicts"]["count"] == 1
        assert report["histograms"]["proof/clauses"]["count"] == 1
        # A report without workload counters contributes nothing.
        observe_stats_workload(registry, {"counters": {}, "gauges": {}})
        assert registry.histogram("solver/conflicts").count == 1

    def test_default_bucket_tables_are_increasing(self):
        for table in (TIME_BUCKETS, COUNT_BUCKETS):
            assert all(a < b for a, b in zip(table, table[1:]))
