"""Tests for fault injection and checker soundness under faults."""

import random

import pytest

from repro import check_equivalence
from repro.circuits import comparator, parity_tree, ripple_carry_adder
from repro.circuits.faults import (
    FAULT_KINDS,
    Fault,
    enumerate_faults,
    fault_campaign,
    inject,
)

from conftest import exhaustive_counterexample


class TestFaultObject:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Fault("meltdown", 3)

    def test_repr(self):
        assert "stuck_at_0" in repr(Fault("stuck_at_0", 7))


class TestInject:
    def setup_method(self):
        self.aig = ripple_carry_adder(3)
        self.target = list(self.aig.and_vars())[4]

    def test_stuck_at_0_changes_or_preserves_function(self):
        mutated = inject(self.aig, Fault("stuck_at_0", self.target))
        assert mutated.num_inputs == self.aig.num_inputs
        # Semantics verified exhaustively against the checker below.

    def test_output_flip_always_detected(self):
        mutated = inject(self.aig, Fault("output_flip", 2))
        cex = exhaustive_counterexample(self.aig, mutated)
        assert cex is not None

    def test_output_flip_bad_index(self):
        with pytest.raises(ValueError):
            inject(self.aig, Fault("output_flip", 99))

    def test_non_and_target_rejected(self):
        with pytest.raises(ValueError):
            inject(self.aig, Fault("stuck_at_1", self.aig.inputs[0]))

    def test_edge_flip_changes_function_somewhere(self):
        # At least one edge flip in an adder must change the function.
        changed = 0
        for var in list(self.aig.and_vars())[:8]:
            mutated = inject(self.aig, Fault("edge_flip", var))
            if exhaustive_counterexample(self.aig, mutated) is not None:
                changed += 1
        assert changed > 0

    def test_io_preserved(self):
        mutated = inject(self.aig, Fault("and_to_or", self.target))
        assert mutated.num_outputs == self.aig.num_outputs
        assert mutated.input_names == self.aig.input_names


class TestEnumerate:
    def test_all_kinds_present(self):
        faults = enumerate_faults(parity_tree(4))
        assert {fault.kind for fault in faults} == set(FAULT_KINDS)

    def test_sampling_bounds(self):
        rng = random.Random(0)
        faults = enumerate_faults(
            parity_tree(6), rng=rng, per_kind=2
        )
        non_output = [f for f in faults if f.kind != "output_flip"]
        per_kind = {}
        for fault in non_output:
            per_kind.setdefault(fault.kind, []).append(fault)
        assert all(len(lst) <= 2 for lst in per_kind.values())


class TestCheckerAgainstFaults:
    """The central soundness property: the checker's verdict must agree
    with exhaustive evaluation on every injected fault."""

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_verdicts_match_exhaustive(self, kind):
        aig = comparator(3)
        rng = random.Random(7)
        for fault in enumerate_faults(
            aig, kinds=(kind,), rng=rng, per_kind=4
        ):
            mutated = inject(aig, fault)
            expected = exhaustive_counterexample(aig, mutated) is None
            result = check_equivalence(aig, mutated)
            assert result.equivalent is expected, fault
            if not expected:
                assert aig.evaluate(result.counterexample) != \
                    mutated.evaluate(result.counterexample)

    def test_campaign_classification(self):
        aig = parity_tree(5)

        def checker(golden, mutated):
            return check_equivalence(golden, mutated).equivalent

        results = fault_campaign(aig, checker, seed=1, per_kind=2)
        assert results
        for fault, verdict in results:
            assert verdict in (True, False)
        # Output flips on a parity tree are always detected.
        for fault, verdict in results:
            if fault.kind == "output_flip":
                assert verdict is False

    def test_campaign_against_baselines(self):
        from repro.baselines import bdd_check, monolithic_check

        aig = comparator(3)
        faults = enumerate_faults(
            aig, kinds=("stuck_at_0", "and_to_or"),
            rng=random.Random(3), per_kind=2,
        )
        for fault in faults:
            mutated = inject(aig, fault)
            sweep = check_equivalence(aig, mutated).equivalent
            mono = monolithic_check(aig, mutated, proof=False).equivalent
            bdd = bdd_check(aig, mutated).equivalent
            assert sweep == mono == bdd, fault
